#!/usr/bin/env bash
# Local CI gate: formatting, lints (best-effort), build and the tier-1
# test suite. Everything runs offline — the workspace has no registry
# dependencies (proptest/criterion are vendored path crates).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Clippy is best-effort: not every toolchain installation ships it, and
# the gate must stay runnable offline. When present, warnings are errors.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lints"
fi

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="--deny warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Cross-layer invariants + golden-trace conformance on the four fast
# canonical scenarios (three persistent-flow cases plus the open-loop
# traffic case), plus a 32-case scenario-fuzz smoke. Budget: the fast
# suite runs in well under a second and the fuzz cases a few seconds
# total in release; the whole step stays under ~10 s.
echo "==> mwn check --suite fast --fuzz 32"
cargo run --release -q -p mwn-cli -- check --suite fast --fuzz 32

# Open-loop traffic determinism: the same finite-flow workload must
# print byte-identical reports — journal and arrival digests included —
# for any worker count. Two replications, one vs four workers.
echo "==> mwn traffic determinism (--jobs 1 vs --jobs 4)"
t1=$(cargo run --release -q -p mwn-cli -- traffic --nodes 10 --flows 300 --profile web --reps 2 --jobs 1)
t4=$(cargo run --release -q -p mwn-cli -- traffic --nodes 10 --flows 300 --profile web --reps 2 --jobs 4)
if [ "$t1" != "$t4" ]; then
    echo "error: mwn traffic output differs across --jobs" >&2
    diff <(printf '%s\n' "$t1") <(printf '%s\n' "$t4") >&2 || true
    exit 1
fi

# Store analytics smoke: a tiny instrumented chain sweep must aggregate
# through `mwn report` in table, CSV and self-diff modes. Uses a temp
# store so reruns start clean.
echo "==> mwn report smoke (sweep --metrics -> report/--csv/--diff)"
report_store=$(mktemp -t mwn-report-XXXXXX.jsonl)
rm -f "$report_store"
cargo run --release -q -p mwn-cli -- sweep --suite chain --metrics --jobs 0 --out "$report_store" >/dev/null 2>&1
report_out=$(cargo run --release -q -p mwn-cli -- report --store "$report_store" 2>/dev/null)
grep -q "drop ledger by reason" <<<"$report_out" || {
    echo "error: mwn report did not render a drop ledger" >&2; exit 1; }
# Capture before grepping: under pipefail, `grep -q` closing the pipe
# early would kill the report process with SIGPIPE and fail the step.
report_csv=$(cargo run --release -q -p mwn-cli -- report --store "$report_store" --csv 2>/dev/null)
head -1 <<<"$report_csv" | grep -q "^scenario,variant,load,reps,goodput_kbps" || {
    echo "error: mwn report --csv header mismatch" >&2; exit 1; }
report_diff=$(cargo run --release -q -p mwn-cli -- report --store "$report_store" --diff "$report_store" 2>/dev/null)
grep -q "0.0" <<<"$report_diff" || {
    echo "error: mwn report --diff of a store against itself is not a zero delta" >&2; exit 1; }
rm -f "$report_store"

# Conservation audit + flight recorder: the planted leak/double-free
# faults must trip the `conservation` rule and the violation must carry
# the flight-recorder dump (crates/check/tests/conservation.rs).
echo "==> conservation audit fault-injection (flight-recorder dump check)"
cargo test --release -q -p mwn-check --test conservation

echo "==> observability overhead bench (trace disabled vs enabled)"
cargo bench -p mwn-bench --bench obs_overhead -- --quick

# Spatial-grid medium differential: the proptest oracle check (grid vs
# dense all-pairs ReferenceMedium, incremental moves included) and the
# random-waypoint trajectory differential, run explicitly and in release
# so the gate exercises the exact medium build CI benchmarks below.
echo "==> spatial-grid medium differential (proptest + mobility trajectories)"
cargo test --release -q -p mwn-phy --test grid_differential
cargo test --release -q -p mwn-check --test medium_mobility

# Lazy epoch-stamped medium: the lazy-vs-dense-oracle differential
# proptest (random-waypoint mobility, refreshed lists compared against
# ReferenceMedium) plus the lazy-vs-eager network digest A/B. Runs in
# release so the 5 000-node scale tier is enabled (debug builds cap the
# proptest at 500 nodes).
echo "==> lazy medium differential (oracle proptest + eager/lazy digest A/B)"
cargo test --release -q -p mwn-check --test lazy_medium

# Sharded parallel engine: the burst-batch engine must be byte-identical
# to the sequential oracle. Three angles: the random-scenario
# differential proptest, the fast canonical suite run entirely on 4
# shard workers against the *committed* sequential digests, and the full
# suite's determinism stress (every case re-run at shard counts 2 and 8
# plus a repeat, digests and traffic journals compared line by line).
echo "==> sharded engine differential (proptest + goldens at --shards 4 + full-suite stress)"
cargo test --release -q -p mwn-check --test sharded_differential
cargo run --release -q -p mwn-cli -- check --suite fast --shards 4
cargo run --release -q -p mwn-cli -- check --suite full --jobs 0

# Opt-in ThreadSanitizer pass over the sharded engine's concurrency
# primitives (worker pool, shared slices, burst batching). Needs a
# nightly toolchain with rust-src (-Zsanitizer=thread rebuilds std), so
# it is off by default and skips gracefully when nightly is missing.
if [ "${MWN_TSAN:-0}" = "1" ]; then
    host=$(rustc -vV | sed -n 's/^host: //p')
    if cargo +nightly --version >/dev/null 2>&1; then
        echo "==> thread sanitizer (nightly, ${host})"
        RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" -q \
            -p mwn-sim shard:: -- --test-threads=1 || {
            echo "error: thread sanitizer reported races in the shard engine" >&2
            exit 1
        }
        RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" -q \
            -p mwn batch:: -- --test-threads=1 || {
            echo "error: thread sanitizer reported races in the batch engine" >&2
            exit 1
        }
    else
        echo "==> MWN_TSAN=1 set but no nightly toolchain; skipping sanitizer"
    fi
fi

# Engine-throughput regression gate: the quick scenario subset against
# the committed BENCH_engine.json baseline, failing on a >20% events/sec
# drop. The quick subset includes random200-mobility, which doubles as
# the large-topology spatial-grid smoke (200 nodes, incremental
# move_nodes on every mobility tick). Wall-clock dependent: best-of-5
# absorbs transient host contention, and loaded or throttled machines
# can set MWN_BENCH_SKIP=1 to bypass the gate entirely.
if [ "${MWN_BENCH_SKIP:-0}" = "1" ]; then
    echo "==> mwn bench skipped (MWN_BENCH_SKIP=1)"
else
    echo "==> mwn bench --quick --check"
    cargo run --release -q -p mwn-cli -- bench --quick --check --repeat 5

    # City-scale smoke: one pass of the 5k-node mobility case (flat
    # per-node state + expanding-ring AODV). Single run, no --check —
    # the point is that the engine completes the city tier at all and
    # reports bytes/node, not a tight wall-clock gate.
    echo "==> mwn bench --case random5k (city-scale smoke)"
    cargo run --release -q -p mwn-cli -- bench --case random5k

    # Mobile city smoke: the 20k-node full-field mobility case, feasible
    # only with the lazy epoch-stamped medium (tick is O(moved nodes),
    # rebuilds deferred to transmission time). Single run, no --check.
    echo "==> mwn bench --case random20k-mobility (lazy-medium smoke)"
    cargo run --release -q -p mwn-cli -- bench --case random20k-mobility
fi

echo "CI gate passed."
