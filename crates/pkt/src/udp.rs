//! UDP datagrams for the paced-UDP (CBR) reference transport.

use crate::ids::FlowId;
use crate::sizes;

/// A UDP datagram carrying one CBR packet.
///
/// The paper's paced UDP uses 1460-byte packets, equal to the TCP payload,
/// so TCP and UDP goodputs are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpDatagram {
    /// Flow this datagram belongs to.
    pub flow: FlowId,
    /// Monotonically increasing per-flow packet number.
    pub seq: u64,
    /// Bytes of application payload.
    pub payload_bytes: u32,
}

impl UdpDatagram {
    /// Creates a full-size (1460-byte payload) CBR datagram.
    pub fn cbr(flow: FlowId, seq: u64) -> Self {
        UdpDatagram {
            flow,
            seq,
            payload_bytes: sizes::TCP_PAYLOAD,
        }
    }

    /// Size on the wire including the UDP header (but not IP).
    pub fn size_bytes(&self) -> u32 {
        sizes::UDP_HEADER + self.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_datagram_size() {
        assert_eq!(UdpDatagram::cbr(FlowId(0), 3).size_bytes(), 1468);
    }
}
