//! Node and flow identifiers.

use std::fmt;

/// Identifies a node in the network.
///
/// `NodeId::BROADCAST` is the link-layer broadcast address.
///
/// # Example
///
/// ```
/// use mwn_pkt::NodeId;
///
/// assert!(NodeId::BROADCAST.is_broadcast());
/// assert!(!NodeId(3).is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The link-layer broadcast address.
    pub const BROADCAST: NodeId = NodeId(u32::MAX);

    /// `true` if this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// The id as an array index.
    ///
    /// # Panics
    ///
    /// Panics if called on the broadcast address.
    pub fn index(self) -> usize {
        assert!(!self.is_broadcast(), "broadcast address has no index");
        self.0 as usize
    }

    /// The raw numeric id, for serialized results and job keys.
    ///
    /// Unlike [`index`](Self::index) this never panics; the broadcast
    /// address serializes as `u32::MAX`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "n*")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies an end-to-end transport flow (one FTP, CBR or finite
/// traffic connection).
///
/// The raw value packs a *slot* in the host's flow table (low
/// [`FlowId::SLOT_BITS`] bits) and a *generation* (high bits). Persistent
/// scenario flows always carry generation 0, so their raw value equals
/// their slot and nothing changes for the classic fixed-vector layout.
/// Open-loop traffic reuses freed slots; the generation is bumped on each
/// reuse so a packet or timer addressed to a dead flow can never be
/// mistaken for the slot's new occupant.
///
/// # Example
///
/// ```
/// use mwn_pkt::FlowId;
///
/// let classic = FlowId(3);
/// assert_eq!((classic.slot(), classic.generation()), (3, 0));
///
/// let reused = FlowId::from_parts(3, 2);
/// assert_eq!((reused.slot(), reused.generation()), (3, 2));
/// assert_ne!(classic, reused);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Bits of the raw id holding the flow-table slot (up to ~1M
    /// concurrently live flows); the remaining 12 high bits hold the
    /// slot's reuse generation.
    pub const SLOT_BITS: u32 = 20;

    /// Maximum slot count a host may address.
    pub const MAX_SLOTS: u32 = 1 << Self::SLOT_BITS;

    /// Generations wrap modulo this (4096). Only one flow per slot is
    /// ever live, so a wrapped generation can only collide with flows
    /// that died thousands of reuses ago.
    pub const GENERATIONS: u32 = 1 << (32 - Self::SLOT_BITS);

    /// Packs a slot and a reuse generation into a `FlowId`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MAX_SLOTS`. `generation` wraps modulo
    /// [`FlowId::GENERATIONS`].
    pub fn from_parts(slot: u32, generation: u32) -> Self {
        assert!(slot < Self::MAX_SLOTS, "flow slot out of range: {slot}");
        FlowId((generation % Self::GENERATIONS) << Self::SLOT_BITS | slot)
    }

    /// The flow-table slot this id addresses.
    pub const fn slot(self) -> u32 {
        self.0 & (Self::MAX_SLOTS - 1)
    }

    /// The slot's reuse generation (0 for persistent scenario flows).
    pub const fn generation(self) -> u32 {
        self.0 >> Self::SLOT_BITS
    }

    /// The id as an array index.
    ///
    /// Indexes by raw value, which equals the slot for generation-0 flows
    /// — the only ones stored in plain vectors. Hosts with churning flow
    /// tables index by [`slot`](Self::slot) and check the generation.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw numeric id, for serialized results and job keys.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u32> for FlowId {
    fn from(v: u32) -> Self {
        FlowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_is_distinct() {
        assert_ne!(NodeId::BROADCAST, NodeId(0));
        assert_eq!(format!("{}", NodeId::BROADCAST), "n*");
        assert_eq!(format!("{}", NodeId(12)), "n12");
    }

    #[test]
    #[should_panic(expected = "broadcast address has no index")]
    fn broadcast_index_panics() {
        NodeId::BROADCAST.index();
    }

    #[test]
    fn conversions() {
        assert_eq!(NodeId::from(4).index(), 4);
        assert_eq!(FlowId::from(2).index(), 2);
        assert_eq!(format!("{}", FlowId(2)), "f2");
    }

    #[test]
    fn flow_id_slot_generation_roundtrip() {
        // Generation 0 is the identity: raw value == slot, so the packing
        // is invisible to persistent-flow scenarios and their traces.
        for slot in [0u32, 1, 7, FlowId::MAX_SLOTS - 1] {
            let id = FlowId::from_parts(slot, 0);
            assert_eq!(id.raw(), slot);
            assert_eq!(id.slot(), slot);
            assert_eq!(id.generation(), 0);
        }
        let id = FlowId::from_parts(5, 3);
        assert_eq!(id.slot(), 5);
        assert_eq!(id.generation(), 3);
        assert_ne!(id, FlowId::from_parts(5, 2));
        // Generations wrap modulo GENERATIONS without touching the slot.
        let wrapped = FlowId::from_parts(5, FlowId::GENERATIONS + 3);
        assert_eq!(wrapped, id);
    }

    #[test]
    #[should_panic(expected = "flow slot out of range")]
    fn flow_slot_out_of_range_panics() {
        FlowId::from_parts(FlowId::MAX_SLOTS, 0);
    }
}
