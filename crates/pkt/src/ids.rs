//! Node and flow identifiers.

use std::fmt;

/// Identifies a node in the network.
///
/// `NodeId::BROADCAST` is the link-layer broadcast address.
///
/// # Example
///
/// ```
/// use mwn_pkt::NodeId;
///
/// assert!(NodeId::BROADCAST.is_broadcast());
/// assert!(!NodeId(3).is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The link-layer broadcast address.
    pub const BROADCAST: NodeId = NodeId(u32::MAX);

    /// `true` if this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// The id as an array index.
    ///
    /// # Panics
    ///
    /// Panics if called on the broadcast address.
    pub fn index(self) -> usize {
        assert!(!self.is_broadcast(), "broadcast address has no index");
        self.0 as usize
    }

    /// The raw numeric id, for serialized results and job keys.
    ///
    /// Unlike [`index`](Self::index) this never panics; the broadcast
    /// address serializes as `u32::MAX`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "n*")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies an end-to-end transport flow (one FTP or CBR connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw numeric id, for serialized results and job keys.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u32> for FlowId {
    fn from(v: u32) -> Self {
        FlowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_is_distinct() {
        assert_ne!(NodeId::BROADCAST, NodeId(0));
        assert_eq!(format!("{}", NodeId::BROADCAST), "n*");
        assert_eq!(format!("{}", NodeId(12)), "n12");
    }

    #[test]
    #[should_panic(expected = "broadcast address has no index")]
    fn broadcast_index_panics() {
        NodeId::BROADCAST.index();
    }

    #[test]
    fn conversions() {
        assert_eq!(NodeId::from(4).index(), 4);
        assert_eq!(FlowId::from(2).index(), 2);
        assert_eq!(format!("{}", FlowId(2)), "f2");
    }
}
