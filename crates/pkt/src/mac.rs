//! IEEE 802.11 link-layer frames.

use mwn_sim::SimDuration;

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::sizes;

/// Discriminates MAC frame types without the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacFrameKind {
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// Link-layer acknowledgement.
    Ack,
    /// Data frame (unicast or broadcast).
    Data,
}

/// An IEEE 802.11 frame on the air.
///
/// The `nav` field mirrors the standard's Duration field: the time the
/// medium will remain reserved *after* this frame ends. Overhearing nodes
/// use it for virtual carrier sensing.
#[derive(Debug, Clone, PartialEq)]
pub enum MacFrame {
    /// RTS from `src` to `dst`, reserving the medium for the whole
    /// CTS + DATA + ACK exchange.
    Rts {
        /// Transmitter address.
        src: NodeId,
        /// Receiver address.
        dst: NodeId,
        /// Medium reservation after this frame ends.
        nav: SimDuration,
    },
    /// CTS answering an RTS.
    Cts {
        /// Transmitter address (the data receiver).
        src: NodeId,
        /// Receiver address (the data sender).
        dst: NodeId,
        /// Medium reservation after this frame ends.
        nav: SimDuration,
    },
    /// Link-layer acknowledgement of a data frame.
    Ack {
        /// Transmitter address.
        src: NodeId,
        /// Receiver address (the data sender).
        dst: NodeId,
    },
    /// Data frame carrying a network-layer packet. `dst` may be
    /// [`NodeId::BROADCAST`], in which case no ACK is expected.
    Data {
        /// Transmitter address.
        src: NodeId,
        /// Receiver address or broadcast.
        dst: NodeId,
        /// Per-transmitter MAC sequence number for duplicate detection.
        seq: u16,
        /// `true` on MAC-level retransmissions.
        retry: bool,
        /// Medium reservation after this frame ends (time for the ACK).
        nav: SimDuration,
        /// Carried network-layer packet.
        packet: Packet,
    },
}

impl MacFrame {
    /// The frame's type discriminant.
    pub fn kind(&self) -> MacFrameKind {
        match self {
            MacFrame::Rts { .. } => MacFrameKind::Rts,
            MacFrame::Cts { .. } => MacFrameKind::Cts,
            MacFrame::Ack { .. } => MacFrameKind::Ack,
            MacFrame::Data { .. } => MacFrameKind::Data,
        }
    }

    /// Transmitter address.
    pub fn src(&self) -> NodeId {
        match self {
            MacFrame::Rts { src, .. }
            | MacFrame::Cts { src, .. }
            | MacFrame::Ack { src, .. }
            | MacFrame::Data { src, .. } => *src,
        }
    }

    /// Receiver address (possibly broadcast for data frames).
    pub fn dst(&self) -> NodeId {
        match self {
            MacFrame::Rts { dst, .. }
            | MacFrame::Cts { dst, .. }
            | MacFrame::Ack { dst, .. }
            | MacFrame::Data { dst, .. } => *dst,
        }
    }

    /// The Duration/NAV value carried by the frame (zero for ACKs).
    pub fn nav(&self) -> SimDuration {
        match self {
            MacFrame::Rts { nav, .. } | MacFrame::Cts { nav, .. } | MacFrame::Data { nav, .. } => {
                *nav
            }
            MacFrame::Ack { .. } => SimDuration::ZERO,
        }
    }

    /// Size on the air in bytes (MAC header/FCS included).
    pub fn size_bytes(&self) -> u32 {
        match self {
            MacFrame::Rts { .. } => sizes::RTS,
            MacFrame::Cts { .. } => sizes::CTS,
            MacFrame::Ack { .. } => sizes::MAC_ACK,
            MacFrame::Data { packet, .. } => sizes::MAC_DATA_OVERHEAD + packet.size_bytes(),
        }
    }

    /// `true` for broadcast data frames (no ACK expected).
    pub fn is_broadcast(&self) -> bool {
        self.dst().is_broadcast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use crate::packet::Body;
    use crate::tcp::TcpSegment;

    fn data_frame(dst: NodeId) -> MacFrame {
        MacFrame::Data {
            src: NodeId(0),
            dst,
            seq: 1,
            retry: false,
            nav: SimDuration::from_micros(314),
            packet: Packet::new(
                1,
                NodeId(0),
                NodeId(7),
                Body::Tcp(TcpSegment::data(FlowId(0), 0)),
            ),
        }
    }

    #[test]
    fn control_frame_sizes() {
        let rts = MacFrame::Rts {
            src: NodeId(0),
            dst: NodeId(1),
            nav: SimDuration::ZERO,
        };
        let cts = MacFrame::Cts {
            src: NodeId(1),
            dst: NodeId(0),
            nav: SimDuration::ZERO,
        };
        let ack = MacFrame::Ack {
            src: NodeId(1),
            dst: NodeId(0),
        };
        assert_eq!(rts.size_bytes(), 20);
        assert_eq!(cts.size_bytes(), 14);
        assert_eq!(ack.size_bytes(), 14);
        assert_eq!(ack.nav(), SimDuration::ZERO);
    }

    #[test]
    fn data_frame_size_includes_mac_overhead() {
        let f = data_frame(NodeId(1));
        assert_eq!(f.size_bytes(), 1528);
        assert_eq!(f.kind(), MacFrameKind::Data);
        assert!(!f.is_broadcast());
        assert_eq!(f.src(), NodeId(0));
        assert_eq!(f.dst(), NodeId(1));
    }

    #[test]
    fn broadcast_detection() {
        assert!(data_frame(NodeId::BROADCAST).is_broadcast());
    }
}
