//! Shared packet model for the multihop-wireless-network simulator.
//!
//! Defines the identifiers, network-layer packets and link-layer frames that
//! flow between the PHY (`mwn-phy`), MAC (`mwn-mac80211`), routing
//! (`mwn-aodv`) and transport (`mwn-tcp`) crates, together with the exact
//! wire sizes used to compute frame airtimes.
//!
//! The transport layer is *packet-granularity*, exactly like ns-2's TCP
//! agents (and therefore like the paper): a TCP sequence number counts
//! MSS-sized packets, not bytes, and the congestion window is measured in
//! packets.
//!
//! # Example
//!
//! ```
//! use mwn_pkt::{Body, NodeId, Packet, TcpSegment, FlowId, sizes};
//!
//! let seg = TcpSegment::data(FlowId(0), 5);
//! let pkt = Packet::new(7, NodeId(0), NodeId(3), Body::Tcp(seg));
//! // 20 (IP) + 20 (TCP) + 1460 (payload)
//! assert_eq!(pkt.size_bytes(), sizes::IP_HEADER + sizes::TCP_HEADER + sizes::TCP_PAYLOAD);
//! ```

mod aodv;
mod ids;
mod mac;
mod packet;
pub mod sizes;
mod tcp;
mod udp;

pub use aodv::AodvMessage;
pub use ids::{FlowId, NodeId};
pub use mac::{MacFrame, MacFrameKind};
pub use packet::{Body, Packet};
pub use tcp::TcpSegment;
pub use udp::UdpDatagram;
