//! Wire sizes (bytes) used to compute frame airtimes.
//!
//! Values follow the IEEE 802.11 standard and the paper's configuration:
//! 1460-byte TCP packets, so a data frame on air is
//! `1460 + 20 (TCP) + 20 (IP) + 28 (MAC header + FCS) = 1528` bytes.

/// TCP payload carried by every data packet (paper §4.1: 1460 bytes).
pub const TCP_PAYLOAD: u32 = 1460;

/// TCP header.
pub const TCP_HEADER: u32 = 20;

/// IP header.
pub const IP_HEADER: u32 = 20;

/// UDP header.
pub const UDP_HEADER: u32 = 8;

/// IEEE 802.11 data frame MAC overhead: 24-byte header + 4-byte FCS.
pub const MAC_DATA_OVERHEAD: u32 = 28;

/// IEEE 802.11 RTS frame (16 bytes + 4-byte FCS).
pub const RTS: u32 = 20;

/// IEEE 802.11 CTS frame (10 bytes + 4-byte FCS).
pub const CTS: u32 = 14;

/// IEEE 802.11 ACK frame (10 bytes + 4-byte FCS).
pub const MAC_ACK: u32 = 14;

/// AODV RREQ message body (RFC 3561 §5.1).
pub const AODV_RREQ: u32 = 24;

/// AODV RREP message body (RFC 3561 §5.2).
pub const AODV_RREP: u32 = 20;

/// AODV RERR fixed part (RFC 3561 §5.3); add [`AODV_RERR_PER_DEST`] per
/// unreachable destination.
pub const AODV_RERR_BASE: u32 = 4;

/// Per-destination part of an AODV RERR.
pub const AODV_RERR_PER_DEST: u32 = 8;

/// Default IP TTL for originated packets.
pub const DEFAULT_TTL: u8 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frame_is_1528_bytes_on_air() {
        assert_eq!(
            TCP_PAYLOAD + TCP_HEADER + IP_HEADER + MAC_DATA_OVERHEAD,
            1528
        );
    }
}
