//! Network-layer packets.

use crate::aodv::AodvMessage;
use crate::ids::NodeId;
use crate::sizes;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;

/// The payload of a network-layer packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Body {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram (paced-UDP reference transport).
    Udp(UdpDatagram),
    /// An AODV control message.
    Aodv(AodvMessage),
}

impl Body {
    /// Wire size of the body (transport header + payload, no IP header).
    pub fn size_bytes(&self) -> u32 {
        match self {
            Body::Tcp(seg) => seg.size_bytes(),
            Body::Udp(d) => d.size_bytes(),
            Body::Aodv(m) => m.size_bytes(),
        }
    }
}

/// A network-layer (IP) packet travelling end-to-end.
///
/// # Example
///
/// ```
/// use mwn_pkt::{Body, FlowId, NodeId, Packet, UdpDatagram};
///
/// let p = Packet::new(0, NodeId(0), NodeId(4), Body::Udp(UdpDatagram::cbr(FlowId(0), 0)));
/// assert_eq!(p.size_bytes(), 20 + 8 + 1460);
/// assert_eq!(p.src, NodeId(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Simulation-unique packet id, preserved across hops and MAC retries
    /// (a transport-layer retransmission is a *new* packet with a new uid).
    pub uid: u64,
    /// Originating node.
    pub src: NodeId,
    /// Final destination (may be [`NodeId::BROADCAST`] for flooded AODV
    /// messages).
    pub dst: NodeId,
    /// Remaining hop budget; decremented at each forward.
    pub ttl: u8,
    /// Transport payload.
    pub body: Body,
}

impl Packet {
    /// Creates a packet with the default TTL.
    pub fn new(uid: u64, src: NodeId, dst: NodeId, body: Body) -> Self {
        Packet {
            uid,
            src,
            dst,
            ttl: sizes::DEFAULT_TTL,
            body,
        }
    }

    /// Total wire size: IP header plus body.
    pub fn size_bytes(&self) -> u32 {
        sizes::IP_HEADER + self.body.size_bytes()
    }

    /// `true` if this packet carries a transport data payload relevant to
    /// goodput (TCP data or UDP CBR data), as opposed to ACKs and routing
    /// control traffic.
    pub fn is_transport_data(&self) -> bool {
        match &self.body {
            Body::Tcp(seg) => seg.is_data(),
            Body::Udp(_) => true,
            Body::Aodv(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;

    #[test]
    fn tcp_data_packet_is_1500_bytes() {
        let p = Packet::new(
            1,
            NodeId(0),
            NodeId(7),
            Body::Tcp(TcpSegment::data(FlowId(0), 0)),
        );
        assert_eq!(p.size_bytes(), 1500);
        assert!(p.is_transport_data());
    }

    #[test]
    fn tcp_ack_packet_is_40_bytes() {
        let p = Packet::new(
            2,
            NodeId(7),
            NodeId(0),
            Body::Tcp(TcpSegment::ack(FlowId(0), 0)),
        );
        assert_eq!(p.size_bytes(), 40);
        assert!(!p.is_transport_data());
    }

    #[test]
    fn aodv_packet_is_control() {
        let p = Packet::new(
            3,
            NodeId(0),
            NodeId::BROADCAST,
            Body::Aodv(AodvMessage::Rerr {
                unreachable: vec![(NodeId(1), 0)],
            }),
        );
        assert!(!p.is_transport_data());
        assert_eq!(p.ttl, sizes::DEFAULT_TTL);
    }
}
