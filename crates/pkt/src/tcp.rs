//! Packet-granularity TCP segments (ns-2 style).

use crate::ids::FlowId;
use crate::sizes;

/// A TCP segment at packet granularity.
///
/// As in ns-2, a sequence number identifies one MSS-sized packet; a data
/// segment with `seq = n` is "packet n" of the flow, and an ACK with
/// `ack = n` cumulatively acknowledges packets `0..=n`.
///
/// # Example
///
/// ```
/// use mwn_pkt::{FlowId, TcpSegment};
///
/// let d = TcpSegment::data(FlowId(1), 7);
/// assert!(d.is_data());
/// let a = TcpSegment::ack(FlowId(1), 7);
/// assert!(!a.is_data());
/// assert_eq!(a.ack, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpSegment {
    /// Flow this segment belongs to.
    pub flow: FlowId,
    /// Sequence number of the carried data packet (data segments only).
    pub seq: u64,
    /// Cumulative acknowledgement: highest in-order packet received
    /// (meaningful on ACK segments; `NO_ACK` before anything arrived).
    pub ack: u64,
    /// Bytes of application payload (0 for a pure ACK).
    pub payload_bytes: u32,
}

impl TcpSegment {
    /// Sentinel `ack` value meaning "nothing received yet".
    pub const NO_ACK: u64 = u64::MAX;

    /// Creates a full-size data segment carrying packet `seq`.
    pub fn data(flow: FlowId, seq: u64) -> Self {
        TcpSegment {
            flow,
            seq,
            ack: Self::NO_ACK,
            payload_bytes: sizes::TCP_PAYLOAD,
        }
    }

    /// Creates a pure cumulative ACK for packets `0..=ack`.
    pub fn ack(flow: FlowId, ack: u64) -> Self {
        TcpSegment {
            flow,
            seq: 0,
            ack,
            payload_bytes: 0,
        }
    }

    /// `true` if this segment carries data.
    pub fn is_data(&self) -> bool {
        self.payload_bytes > 0
    }

    /// Size on the wire including the TCP header (but not IP).
    pub fn size_bytes(&self) -> u32 {
        sizes::TCP_HEADER + self.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_segment_sizes() {
        let d = TcpSegment::data(FlowId(0), 0);
        assert_eq!(d.size_bytes(), 1480);
        assert!(d.is_data());
    }

    #[test]
    fn ack_segment_sizes() {
        let a = TcpSegment::ack(FlowId(0), 10);
        assert_eq!(a.size_bytes(), 20);
        assert!(!a.is_data());
    }
}
