//! AODV routing protocol messages (RFC 3561 subset used by ns-2).

use crate::ids::NodeId;
use crate::sizes;

/// An AODV control message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AodvMessage {
    /// Route request, flooded network-wide.
    Rreq {
        /// Per-originator RREQ identifier (with `orig`, uniquely identifies
        /// this discovery for duplicate suppression).
        rreq_id: u32,
        /// Node searching for a route.
        orig: NodeId,
        /// Originator's own sequence number.
        orig_seq: u32,
        /// Destination being sought.
        dst: NodeId,
        /// Last known destination sequence number, if any.
        dst_seq: Option<u32>,
        /// Hops traversed so far (incremented at each rebroadcast).
        hop_count: u8,
    },
    /// Route reply, unicast back along the reverse path.
    Rrep {
        /// Node the reply is travelling to (the RREQ originator).
        orig: NodeId,
        /// Destination the route leads to.
        dst: NodeId,
        /// Destination sequence number associated with the route.
        dst_seq: u32,
        /// Hops from the replying node to `dst` (incremented per hop).
        hop_count: u8,
    },
    /// Route error listing newly unreachable destinations.
    Rerr {
        /// `(destination, last known sequence number)` pairs.
        unreachable: Vec<(NodeId, u32)>,
    },
}

impl AodvMessage {
    /// Size on the wire including the UDP header AODV rides on.
    pub fn size_bytes(&self) -> u32 {
        let body = match self {
            AodvMessage::Rreq { .. } => sizes::AODV_RREQ,
            AodvMessage::Rrep { .. } => sizes::AODV_RREP,
            AodvMessage::Rerr { unreachable } => {
                sizes::AODV_RERR_BASE + sizes::AODV_RERR_PER_DEST * unreachable.len() as u32
            }
        };
        sizes::UDP_HEADER + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes() {
        let rreq = AodvMessage::Rreq {
            rreq_id: 1,
            orig: NodeId(0),
            orig_seq: 1,
            dst: NodeId(5),
            dst_seq: None,
            hop_count: 0,
        };
        assert_eq!(rreq.size_bytes(), 32);

        let rrep = AodvMessage::Rrep {
            orig: NodeId(0),
            dst: NodeId(5),
            dst_seq: 2,
            hop_count: 0,
        };
        assert_eq!(rrep.size_bytes(), 28);

        let rerr = AodvMessage::Rerr {
            unreachable: vec![(NodeId(5), 2), (NodeId(6), 1)],
        };
        assert_eq!(rerr.size_bytes(), 8 + 4 + 16);
    }
}
