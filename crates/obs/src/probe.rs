//! On-change time-series probes.
//!
//! A probe samples one scalar protocol signal — congestion window,
//! smoothed RTT, the Vegas `diff`, interface-queue depth — every time the
//! event loop touches it. The buffer stores a sample only when the value
//! actually changed, so a cwnd that sits at 4.0 for a thousand ACKs costs
//! one record, and Figs. 3–4-style cwnd-vs-time series come out exactly
//! as step functions.

use std::collections::VecDeque;

use mwn_sim::SimTime;

use crate::json::Obj;

/// Which signal a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Congestion window, packets (per flow).
    Cwnd,
    /// Coarse smoothed RTT, seconds (per flow).
    Srtt,
    /// Vegas `diff = W·(1 − baseRTT/RTT)`, packets (per flow).
    VegasDiff,
    /// Interface-queue depth, packets (per node).
    IfqDepth,
}

/// Number of [`ProbeKind`] variants (the change-detection array size).
const KIND_COUNT: usize = 4;

impl ProbeKind {
    /// Stable machine-readable name (the JSONL `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            ProbeKind::Cwnd => "cwnd",
            ProbeKind::Srtt => "srtt",
            ProbeKind::VegasDiff => "vegas_diff",
            ProbeKind::IfqDepth => "ifq_depth",
        }
    }

    fn index(self) -> usize {
        match self {
            ProbeKind::Cwnd => 0,
            ProbeKind::Srtt => 1,
            ProbeKind::VegasDiff => 2,
            ProbeKind::IfqDepth => 3,
        }
    }
}

/// One probe sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// When the signal changed to this value.
    pub time: SimTime,
    /// Which signal.
    pub kind: ProbeKind,
    /// Flow id for per-flow signals, node id for per-node signals.
    pub id: u32,
    /// The new value.
    pub value: f64,
}

impl ProbeSample {
    /// Serializes the sample as a compact JSON object.
    pub fn to_json(&self) -> String {
        Obj::new()
            .f64("t", self.time.as_secs_f64())
            .str("kind", self.kind.name())
            .u64("id", u64::from(self.id))
            .f64("v", self.value)
            .finish()
    }
}

/// Bounded ring buffer of probe samples with on-change deduplication.
#[derive(Debug, Default)]
pub struct ProbeBuffer {
    samples: VecDeque<ProbeSample>,
    capacity: usize,
    dropped: u64,
    /// Last stored value per series, for change detection — flat: one
    /// dense id-indexed `Vec` per kind (`NaN` = never recorded, which a
    /// `==` change check treats as always-changed, exactly what we
    /// want). Replaces a `(kind, id)`-keyed hash map whose bucket
    /// overhead dominated the probe footprint at city scale.
    last: [Vec<f64>; KIND_COUNT],
}

impl ProbeBuffer {
    /// Creates a buffer holding at most `capacity` samples (oldest
    /// evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "probe buffer needs capacity");
        ProbeBuffer {
            samples: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            last: Default::default(),
        }
    }

    /// Records `value` for the `(kind, id)` series at `time`, unless it
    /// equals the series' previous value.
    pub fn record(&mut self, time: SimTime, kind: ProbeKind, id: u32, value: f64) {
        let series = &mut self.last[kind.index()];
        let idx = id as usize;
        if series.len() <= idx {
            series.resize(idx + 1, f64::NAN);
        }
        if series[idx] == value {
            return;
        }
        series[idx] = value;
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(ProbeSample {
            time,
            kind,
            id,
            value,
        });
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &ProbeSample> {
        self.samples.iter()
    }

    /// Retained samples of one series, oldest first.
    pub fn series(&self, kind: ProbeKind, id: u32) -> impl Iterator<Item = &ProbeSample> {
        self.samples
            .iter()
            .filter(move |s| s.kind == kind && s.id == id)
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if nothing was recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the buffer into a vector, oldest first.
    pub fn into_samples(self) -> Vec<ProbeSample> {
        self.samples.into_iter().collect()
    }

    /// Heap bytes held by the buffer (ring plus change-detection state),
    /// for the engine's `bytes_per_node` accounting.
    pub fn memory_bytes(&self) -> usize {
        self.samples.capacity() * std::mem::size_of::<ProbeSample>()
            + self
                .last
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<f64>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn unchanged_values_are_not_stored() {
        let mut b = ProbeBuffer::new(16);
        b.record(t(1), ProbeKind::Cwnd, 0, 1.0);
        b.record(t(2), ProbeKind::Cwnd, 0, 1.0);
        b.record(t(3), ProbeKind::Cwnd, 0, 2.0);
        b.record(t(4), ProbeKind::Cwnd, 0, 2.0);
        let vals: Vec<f64> = b.samples().map(|s| s.value).collect();
        assert_eq!(vals, vec![1.0, 2.0]);
    }

    #[test]
    fn series_are_independent() {
        let mut b = ProbeBuffer::new(16);
        b.record(t(1), ProbeKind::Cwnd, 0, 1.0);
        b.record(t(2), ProbeKind::Cwnd, 1, 1.0); // other flow: stored
        b.record(t(3), ProbeKind::IfqDepth, 0, 1.0); // other kind: stored
        assert_eq!(b.len(), 3);
        assert_eq!(b.series(ProbeKind::Cwnd, 0).count(), 1);
        assert_eq!(b.series(ProbeKind::Cwnd, 1).count(), 1);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let mut b = ProbeBuffer::new(2);
        b.record(t(1), ProbeKind::Cwnd, 0, 1.0);
        b.record(t(2), ProbeKind::Cwnd, 0, 2.0);
        b.record(t(3), ProbeKind::Cwnd, 0, 3.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        let vals: Vec<f64> = b.samples().map(|s| s.value).collect();
        assert_eq!(vals, vec![2.0, 3.0]);
    }

    #[test]
    fn json_is_compact_and_stable() {
        let s = ProbeSample {
            time: t(1_500_000_000),
            kind: ProbeKind::Cwnd,
            id: 0,
            value: 3.5,
        };
        assert_eq!(s.to_json(), r#"{"t":1.5,"kind":"cwnd","id":0,"v":3.5}"#);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        ProbeBuffer::new(0);
    }
}
