//! Structured event tracing.
//!
//! The event loop records one [`TraceRecord`] per interesting protocol
//! event — frame transmissions, receptions, MAC outcomes, routing
//! decisions, transport milestones — into a bounded ring buffer. Each
//! record carries a typed [`TraceEvent`] instead of a pre-formatted
//! string, so traces can be machine-read (JSONL export, assertions on
//! variants) without parsing, and a disabled trace performs no formatting
//! or allocation at all.

use std::collections::VecDeque;
use std::fmt;

use mwn_aodv::AodvDropReason;
use mwn_pkt::{FlowId, MacFrameKind, NodeId};
use mwn_sim::{SimDuration, SimTime};

use crate::json::Obj;

/// Which protocol layer produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceLayer {
    /// Radio / medium events.
    Phy,
    /// 802.11 DCF events.
    Mac,
    /// AODV events.
    Route,
    /// TCP / UDP events.
    Transport,
}

impl fmt::Display for TraceLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLayer::Phy => "PHY",
            TraceLayer::Mac => "MAC",
            TraceLayer::Route => "RTR",
            TraceLayer::Transport => "TRN",
        };
        f.write_str(s)
    }
}

/// One traced protocol event, as typed data.
///
/// `Display` renders the same human-readable lines the simulator always
/// printed; [`TraceEvent::kind`] and [`TraceRecord::to_jsonl`] expose the
/// machine-readable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The radio finished decoding a frame intact (before any MAC-level
    /// address filtering — overheard frames count too).
    PhyRxOk,
    /// A reception ended undecodable: a collision, or a signal below the
    /// capture threshold. The MAC must use EIFS for its next deference.
    PhyCorrupt,
    /// The MAC put a frame on the air.
    MacTx {
        /// Frame type (RTS/CTS/ACK/DATA).
        kind: MacFrameKind,
        /// Link-layer destination.
        dst: NodeId,
        /// Frame size on the air.
        bytes: u32,
        /// Airtime including preamble.
        airtime: SimDuration,
        /// Duration/NAV value carried by the frame (zero for ACKs).
        nav: SimDuration,
    },
    /// The MAC armed its interframe deference timer (DIFS, or EIFS after
    /// a corrupted reception).
    MacDefer {
        /// The deference duration in nanoseconds.
        nanos: u64,
    },
    /// The MAC delivered a received packet up to the routing layer.
    MacRx {
        /// Packet uid.
        uid: u64,
        /// Link-layer sender.
        from: NodeId,
    },
    /// The MAC exhausted its retry limit and gave up on a packet.
    MacRetryExhausted {
        /// Packet uid.
        uid: u64,
        /// The unreachable next hop.
        next_hop: NodeId,
    },
    /// The interface queue was full; the packet was dropped.
    MacQueueDrop {
        /// Packet uid.
        uid: u64,
    },
    /// AODV delivered a packet to the local transport.
    RouteDeliver {
        /// Packet uid.
        uid: u64,
    },
    /// AODV installed or refreshed a sequence-numbered route (learned
    /// from an RREQ's reverse path or an RREP's forward path).
    RouteUpdate {
        /// Route destination.
        dst: NodeId,
        /// Neighbor the route forwards through.
        next_hop: NodeId,
        /// Hops to the destination.
        hop_count: u8,
        /// Destination sequence number the route was learned with.
        dst_seq: u32,
    },
    /// AODV invalidated a route (link failure or received RERR), bumping
    /// its destination sequence number.
    RouteInvalidate {
        /// Route destination.
        dst: NodeId,
        /// The sequence number after the invalidation bump.
        dst_seq: u32,
    },
    /// AODV reported a route failure to the transport (ELFN).
    RouteFailure {
        /// The destination whose route broke.
        dst: NodeId,
    },
    /// AODV dropped a packet.
    RouteDrop {
        /// Packet uid.
        uid: u64,
        /// Why it was dropped.
        reason: AodvDropReason,
    },
    /// A TCP sender emitted a data segment.
    TcpData {
        /// The flow.
        flow: FlowId,
        /// Sequence number (packet granularity).
        seq: u64,
    },
    /// A TCP sink emitted an acknowledgement.
    TcpAck {
        /// The flow.
        flow: FlowId,
        /// Cumulative ACK number (`u64::MAX` = nothing received yet,
        /// rendered as `-1`).
        ack: u64,
    },
    /// A paced-UDP source emitted a CBR packet.
    UdpData {
        /// The flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
    },
    /// A TCP sender's congestion window changed (sampled on every window
    /// update). Fixed-point milli-packets so the event stays `Eq`.
    TcpCwnd {
        /// The flow.
        flow: FlowId,
        /// `cwnd` in units of 1/1000 packet.
        cwnd_milli: u64,
    },
    /// A Vegas sender's `diff = cwnd · (1 − baseRTT/RTT)` signal.
    /// Fixed-point milli-packets, signed so negative excursions (which
    /// the checker flags) are representable.
    TcpVegasDiff {
        /// The flow.
        flow: FlowId,
        /// `diff` in units of 1/1000 packet.
        diff_milli: i64,
    },
    /// An open-loop traffic flow was admitted to the flow table (recorded
    /// at the source node).
    FlowOpen {
        /// The slot+generation flow id.
        flow: FlowId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Request size, data packets.
        packets: u64,
    },
    /// An open-loop traffic transaction completed: the last leg's final
    /// ACK arrived (recorded at the node that initiated the transaction).
    FlowClose {
        /// The slot+generation flow id of the finishing leg.
        flow: FlowId,
        /// Total packets moved across all legs of the transaction.
        packets: u64,
        /// Flow completion time (arrival to last ACK), nanoseconds.
        fct_nanos: u64,
    },
}

impl TraceEvent {
    /// The layer that produces this event.
    pub fn layer(&self) -> TraceLayer {
        match self {
            TraceEvent::PhyRxOk | TraceEvent::PhyCorrupt => TraceLayer::Phy,
            TraceEvent::MacTx { .. }
            | TraceEvent::MacDefer { .. }
            | TraceEvent::MacRx { .. }
            | TraceEvent::MacRetryExhausted { .. }
            | TraceEvent::MacQueueDrop { .. } => TraceLayer::Mac,
            TraceEvent::RouteDeliver { .. }
            | TraceEvent::RouteUpdate { .. }
            | TraceEvent::RouteInvalidate { .. }
            | TraceEvent::RouteFailure { .. }
            | TraceEvent::RouteDrop { .. } => TraceLayer::Route,
            TraceEvent::TcpData { .. }
            | TraceEvent::TcpAck { .. }
            | TraceEvent::UdpData { .. }
            | TraceEvent::TcpCwnd { .. }
            | TraceEvent::TcpVegasDiff { .. }
            | TraceEvent::FlowOpen { .. }
            | TraceEvent::FlowClose { .. } => TraceLayer::Transport,
        }
    }

    /// Stable machine-readable discriminant, used as the JSONL `event`
    /// field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PhyRxOk => "phy_rx_ok",
            TraceEvent::PhyCorrupt => "phy_corrupt",
            TraceEvent::MacTx { .. } => "mac_tx",
            TraceEvent::MacDefer { .. } => "mac_defer",
            TraceEvent::MacRx { .. } => "mac_rx",
            TraceEvent::MacRetryExhausted { .. } => "mac_retry_drop",
            TraceEvent::MacQueueDrop { .. } => "mac_queue_drop",
            TraceEvent::RouteDeliver { .. } => "route_deliver",
            TraceEvent::RouteUpdate { .. } => "route_update",
            TraceEvent::RouteInvalidate { .. } => "route_invalidate",
            TraceEvent::RouteFailure { .. } => "route_failure",
            TraceEvent::RouteDrop { .. } => "route_drop",
            TraceEvent::TcpData { .. } => "tcp_data",
            TraceEvent::TcpAck { .. } => "tcp_ack",
            TraceEvent::UdpData { .. } => "udp_data",
            TraceEvent::TcpCwnd { .. } => "tcp_cwnd",
            TraceEvent::TcpVegasDiff { .. } => "tcp_vegas_diff",
            TraceEvent::FlowOpen { .. } => "flow_open",
            TraceEvent::FlowClose { .. } => "flow_close",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::PhyRxOk => write!(f, "decoded a frame intact"),
            TraceEvent::PhyCorrupt => write!(f, "reception corrupted (EIFS next)"),
            TraceEvent::MacTx {
                kind,
                dst,
                bytes,
                airtime,
                ..
            } => write!(f, "TX {kind:?} -> {dst} ({bytes} B, {airtime})"),
            TraceEvent::MacDefer { nanos } => {
                write!(f, "defer {}", SimDuration::from_nanos(*nanos))
            }
            TraceEvent::MacRx { uid, from } => write!(f, "RX packet uid={uid} from {from}"),
            TraceEvent::MacRetryExhausted { uid, next_hop } => {
                write!(f, "retry limit: giving up uid={uid} -> {next_hop}")
            }
            TraceEvent::MacQueueDrop { uid } => write!(f, "queue full: dropped uid={uid}"),
            TraceEvent::RouteDeliver { uid } => write!(f, "deliver uid={uid} to transport"),
            TraceEvent::RouteUpdate {
                dst,
                next_hop,
                hop_count,
                dst_seq,
            } => write!(
                f,
                "route {dst} via {next_hop} hops={hop_count} seq={dst_seq}"
            ),
            TraceEvent::RouteInvalidate { dst, dst_seq } => {
                write!(f, "route {dst} invalidated seq={dst_seq}")
            }
            TraceEvent::RouteFailure { dst } => write!(f, "ELFN: route to {dst} failed"),
            TraceEvent::RouteDrop { uid, reason } => write!(f, "drop uid={uid}: {reason:?}"),
            TraceEvent::TcpData { flow, seq } => write!(f, "{flow} send seq={seq}"),
            TraceEvent::TcpAck { flow, ack } => write!(f, "{flow} send ack={}", *ack as i64),
            TraceEvent::TcpCwnd { flow, cwnd_milli } => {
                write!(
                    f,
                    "{flow} cwnd={}.{:03}",
                    cwnd_milli / 1000,
                    cwnd_milli % 1000
                )
            }
            TraceEvent::TcpVegasDiff { flow, diff_milli } => {
                let sign = if *diff_milli < 0 { "-" } else { "" };
                let mag = diff_milli.unsigned_abs();
                write!(
                    f,
                    "{flow} vegas diff={sign}{}.{:03}",
                    mag / 1000,
                    mag % 1000
                )
            }
            TraceEvent::UdpData { flow, seq } => write!(f, "{flow} send cbr seq={seq}"),
            TraceEvent::FlowOpen {
                flow,
                src,
                dst,
                packets,
            } => write!(f, "{flow} open {src} -> {dst} ({packets} pkts)"),
            TraceEvent::FlowClose {
                flow,
                packets,
                fct_nanos,
            } => write!(
                f,
                "{flow} close ({packets} pkts, fct {})",
                SimDuration::from_nanos(*fct_nanos)
            ),
        }
    }
}

/// One traced protocol event with its time and place.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When it happened.
    pub time: SimTime,
    /// The node it happened at.
    pub node: NodeId,
    /// What happened.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// The layer that produced this record.
    pub fn layer(&self) -> TraceLayer {
        self.event.layer()
    }

    /// Serializes the record as one JSON line (fixed field order: `t`,
    /// `node`, `layer`, `event`, then the event's own fields).
    pub fn to_jsonl(&self) -> String {
        let head = Obj::new()
            .f64("t", self.time.as_secs_f64())
            .u64("node", u64::from(self.node.raw()))
            .str("layer", &self.layer().to_string())
            .str("event", self.event.kind());
        match self.event {
            TraceEvent::PhyRxOk => head,
            TraceEvent::PhyCorrupt => head,
            TraceEvent::MacTx {
                kind,
                dst,
                bytes,
                airtime,
                nav,
            } => head
                .str("kind", &format!("{kind:?}"))
                .u64("dst", u64::from(dst.raw()))
                .u64("bytes", u64::from(bytes))
                .f64("airtime_s", airtime.as_secs_f64())
                .f64("nav_s", nav.as_secs_f64()),
            TraceEvent::MacDefer { nanos } => head.u64("nanos", nanos),
            TraceEvent::MacRx { uid, from } => {
                head.u64("uid", uid).u64("from", u64::from(from.raw()))
            }
            TraceEvent::MacRetryExhausted { uid, next_hop } => head
                .u64("uid", uid)
                .u64("next_hop", u64::from(next_hop.raw())),
            TraceEvent::MacQueueDrop { uid } => head.u64("uid", uid),
            TraceEvent::RouteDeliver { uid } => head.u64("uid", uid),
            TraceEvent::RouteUpdate {
                dst,
                next_hop,
                hop_count,
                dst_seq,
            } => head
                .u64("dst", u64::from(dst.raw()))
                .u64("next_hop", u64::from(next_hop.raw()))
                .u64("hops", u64::from(hop_count))
                .u64("seq", u64::from(dst_seq)),
            TraceEvent::RouteInvalidate { dst, dst_seq } => head
                .u64("dst", u64::from(dst.raw()))
                .u64("seq", u64::from(dst_seq)),
            TraceEvent::RouteFailure { dst } => head.u64("dst", u64::from(dst.raw())),
            TraceEvent::RouteDrop { uid, reason } => {
                head.u64("uid", uid).str("reason", &format!("{reason:?}"))
            }
            TraceEvent::TcpData { flow, seq } => {
                head.u64("flow", u64::from(flow.raw())).u64("seq", seq)
            }
            TraceEvent::TcpAck { flow, ack } => head
                .u64("flow", u64::from(flow.raw()))
                .raw("ack", &(ack as i64).to_string()),
            TraceEvent::TcpCwnd { flow, cwnd_milli } => head
                .u64("flow", u64::from(flow.raw()))
                .u64("cwnd_milli", cwnd_milli),
            TraceEvent::TcpVegasDiff { flow, diff_milli } => head
                .u64("flow", u64::from(flow.raw()))
                .raw("diff_milli", &diff_milli.to_string()),
            TraceEvent::UdpData { flow, seq } => {
                head.u64("flow", u64::from(flow.raw())).u64("seq", seq)
            }
            TraceEvent::FlowOpen {
                flow,
                src,
                dst,
                packets,
            } => head
                .u64("flow", u64::from(flow.raw()))
                .u64("src", u64::from(src.raw()))
                .u64("dst", u64::from(dst.raw()))
                .u64("packets", packets),
            TraceEvent::FlowClose {
                flow,
                packets,
                fct_nanos,
            } => head
                .u64("flow", u64::from(flow.raw()))
                .u64("packets", packets)
                .u64("fct_nanos", fct_nanos),
        }
        .finish()
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.6}s {:>5} {} {}",
            self.time.as_secs_f64(),
            self.node.to_string(),
            self.layer(),
            self.event
        )
    }
}

/// Bounded ring buffer of trace records.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` records (older records
    /// are evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs capacity");
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ns: u64, uid: u64) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(ns),
            node: NodeId(1),
            event: TraceEvent::MacRx {
                uid,
                from: NodeId(0),
            },
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut b = TraceBuffer::new(2);
        b.push(rec(1, 10));
        b.push(rec(2, 11));
        b.push(rec(3, 12));
        let uids: Vec<u64> = b
            .records()
            .map(|r| match r.event {
                TraceEvent::MacRx { uid, .. } => uid,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(uids, vec![11, 12]);
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn ring_buffer_never_exceeds_capacity() {
        let mut b = TraceBuffer::new(3);
        for i in 0..100 {
            b.push(rec(i, i));
            assert!(b.len() <= 3, "len {} exceeded capacity", b.len());
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 97);
        // The survivors are the newest three, in order.
        let times: Vec<u64> = b.records().map(|r| r.time.as_nanos()).collect();
        assert_eq!(times, vec![97, 98, 99]);
    }

    #[test]
    fn capacity_one_keeps_only_newest() {
        let mut b = TraceBuffer::new(1);
        b.push(rec(1, 1));
        b.push(rec(2, 2));
        assert_eq!(b.len(), 1);
        assert_eq!(b.records().next().unwrap().time.as_nanos(), 2);
        assert_eq!(b.dropped(), 1);
    }

    #[test]
    fn display_formats_layers() {
        let r = TraceRecord {
            time: SimTime::from_nanos(1_500_000),
            node: NodeId(1),
            event: TraceEvent::MacRetryExhausted {
                uid: 9,
                next_hop: NodeId(2),
            },
        };
        let s = r.to_string();
        assert!(s.contains("MAC"));
        assert!(s.contains("giving up uid=9 -> n2"));
        assert!(s.contains("0.001500s"));
    }

    #[test]
    fn events_map_to_layers() {
        let ev = TraceEvent::RouteFailure { dst: NodeId(3) };
        assert_eq!(ev.layer(), TraceLayer::Route);
        assert_eq!(ev.kind(), "route_failure");
        let ev = TraceEvent::TcpData {
            flow: FlowId(0),
            seq: 4,
        };
        assert_eq!(ev.layer(), TraceLayer::Transport);
    }

    #[test]
    fn jsonl_is_machine_readable() {
        let r = TraceRecord {
            time: SimTime::from_nanos(2_000_000_000),
            node: NodeId(4),
            event: TraceEvent::TcpAck {
                flow: FlowId(1),
                ack: u64::MAX,
            },
        };
        let line = r.to_jsonl();
        assert_eq!(
            line,
            r#"{"t":2,"node":4,"layer":"TRN","event":"tcp_ack","flow":1,"ack":-1}"#
        );
    }

    #[test]
    fn no_ack_sentinel_displays_as_minus_one() {
        let ev = TraceEvent::TcpAck {
            flow: FlowId(0),
            ack: u64::MAX,
        };
        assert_eq!(ev.to_string(), "f0 send ack=-1");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        TraceBuffer::new(0);
    }

    #[test]
    fn dropped_accounting_across_wrap_boundary() {
        let mut b = TraceBuffer::new(4);
        // Fill exactly to capacity: nothing dropped yet.
        for i in 0..4 {
            b.push(rec(i, i));
        }
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.len(), 4);
        // Each push past capacity evicts exactly one record, so after k
        // wraps len + dropped equals the total ever pushed.
        for i in 4..23 {
            b.push(rec(i, i));
            assert_eq!(b.dropped() + b.len() as u64, i + 1);
        }
        assert_eq!(b.dropped(), 19);
        let times: Vec<u64> = b.records().map(|r| r.time.as_nanos()).collect();
        assert_eq!(times, vec![19, 20, 21, 22]);
    }

    #[test]
    fn phy_events_map_and_serialize() {
        assert_eq!(TraceEvent::PhyRxOk.layer(), TraceLayer::Phy);
        assert_eq!(TraceEvent::PhyCorrupt.layer(), TraceLayer::Phy);
        let r = TraceRecord {
            time: SimTime::from_nanos(500),
            node: NodeId(2),
            event: TraceEvent::PhyCorrupt,
        };
        assert_eq!(
            r.to_jsonl(),
            r#"{"t":0.0000005,"node":2,"layer":"PHY","event":"phy_corrupt"}"#
        );
    }

    #[test]
    fn route_update_serializes_all_fields() {
        let r = TraceRecord {
            time: SimTime::from_nanos(1_000_000_000),
            node: NodeId(1),
            event: TraceEvent::RouteUpdate {
                dst: NodeId(4),
                next_hop: NodeId(2),
                hop_count: 3,
                dst_seq: 7,
            },
        };
        assert_eq!(
            r.to_jsonl(),
            r#"{"t":1,"node":1,"layer":"RTR","event":"route_update","dst":4,"next_hop":2,"hops":3,"seq":7}"#
        );
        assert_eq!(r.event.to_string(), "route n4 via n2 hops=3 seq=7");
    }

    #[test]
    fn milli_fixed_point_events_display_and_serialize() {
        let cwnd = TraceEvent::TcpCwnd {
            flow: FlowId(0),
            cwnd_milli: 2500,
        };
        assert_eq!(cwnd.to_string(), "f0 cwnd=2.500");
        let diff = TraceEvent::TcpVegasDiff {
            flow: FlowId(0),
            diff_milli: -250,
        };
        assert_eq!(diff.to_string(), "f0 vegas diff=-0.250");
        let r = TraceRecord {
            time: SimTime::from_nanos(0),
            node: NodeId(0),
            event: diff,
        };
        assert_eq!(
            r.to_jsonl(),
            r#"{"t":0,"node":0,"layer":"TRN","event":"tcp_vegas_diff","flow":0,"diff_milli":-250}"#
        );
    }

    #[test]
    fn flow_lifecycle_events_display_and_serialize() {
        let open = TraceEvent::FlowOpen {
            flow: FlowId::from_parts(3, 2),
            src: NodeId(1),
            dst: NodeId(4),
            packets: 8,
        };
        assert_eq!(open.layer(), TraceLayer::Transport);
        assert_eq!(open.kind(), "flow_open");
        let r = TraceRecord {
            time: SimTime::from_nanos(1_000_000_000),
            node: NodeId(1),
            event: open,
        };
        assert_eq!(
            r.to_jsonl(),
            format!(
                r#"{{"t":1,"node":1,"layer":"TRN","event":"flow_open","flow":{},"src":1,"dst":4,"packets":8}}"#,
                FlowId::from_parts(3, 2).raw()
            )
        );
        let close = TraceEvent::FlowClose {
            flow: FlowId::from_parts(3, 2),
            packets: 9,
            fct_nanos: 2_500_000,
        };
        assert_eq!(close.kind(), "flow_close");
        assert!(close.to_string().contains("close (9 pkts"));
    }

    #[test]
    fn mac_defer_roundtrips_duration() {
        let ev = TraceEvent::MacDefer { nanos: 364_000 };
        assert_eq!(ev.kind(), "mac_defer");
        assert_eq!(ev.layer(), TraceLayer::Mac);
        let r = TraceRecord {
            time: SimTime::from_nanos(10),
            node: NodeId(3),
            event: ev,
        };
        assert!(r.to_jsonl().contains(r#""nanos":364000"#));
    }
}
