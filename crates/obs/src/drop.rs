//! Packet-loss taxonomy, the per-run drop ledger, and the custody
//! conservation audit.
//!
//! The paper's argument rests on *where* packets die — hidden-terminal
//! collisions two hops upstream, interface-queue overflow at the window
//! optimum, false route failures after MAC retry exhaustion. Aggregate
//! counters cannot show that, so every layer reports losses through one
//! [`DropReason`] taxonomy into a [`DropLedger`] (per node and per traffic
//! class), and an opt-in [`ConservationAudit`] tracks packet custody so a
//! checker can prove `created = destroyed + residual` for every node and
//! every flow.
//!
//! # Custody model
//!
//! The simulator copies packets at layer boundaries, so conservation is
//! stated per *node* over custody events of transport-bodied packets
//! (AODV control traffic is excluded):
//!
//! * **created** — transport originations ([`ConservationAudit::originate`])
//!   plus MAC deliver-ups ([`ConservationAudit::deliver_up`]): each gives
//!   the node a fresh copy it is now responsible for;
//! * **destroyed** — successful MAC handoffs to the next hop
//!   ([`ConservationAudit::handoff`]), transport consumptions
//!   ([`ConservationAudit::consume`]), and terminal drops
//!   ([`ConservationAudit::terminal_drop`]);
//! * **residual** — copies still buffered when the audit is verified
//!   (interface queue, in-service MAC slot, AODV discovery buffers),
//!   enumerated by the caller of [`ConservationAudit::verify`].
//!
//! Frame-level losses ([`DropReason::is_terminal`]` == false`) are tallied
//! in the ledger but deliberately *not* counted as custody events: a
//! collision or retry exhaustion is always followed by either a retransmit
//! or a terminal routing drop, which is where custody actually ends.

use std::collections::HashMap;
use std::fmt;

use crate::json::{arr, Obj};

/// Why a packet (or frame) was lost, across every layer of the stack.
///
/// Variants are ordered by layer: PHY, MAC, routing, transport glue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DropReason {
    /// Frame overlapped a stronger or earlier transmission and no capture
    /// was possible (frame level; the MAC will retry).
    PhyCollision = 0,
    /// Frame lost to a capture decision that favored another transmission.
    PhyCaptureLoss = 1,
    /// Frame energy was detected but could not be decoded.
    PhyUndecodable = 2,
    /// Unicast frame abandoned after the MAC retry limit (the packet goes
    /// back to routing, which decides its terminal fate).
    MacRetryExhausted = 3,
    /// Interface queue was full on enqueue.
    IfqOverflow = 4,
    /// Link-RED early drop on queue admission.
    MacEarlyDrop = 5,
    /// Route discovery exhausted its retries with no route.
    NoRoute = 6,
    /// An active route failed (RERR / link failure) with the packet in
    /// custody.
    RouteError = 7,
    /// TTL reached zero while forwarding.
    TtlExpired = 8,
    /// The route-discovery packet buffer was full.
    RouteBufferFull = 9,
    /// Delivered to a node or agent that is not the packet's endpoint.
    SinkDiscard = 10,
    /// Arrived for a flow that has already been torn down (stale
    /// generation after open-loop slot reuse).
    FlowTeardown = 11,
}

impl DropReason {
    /// Number of reasons; array-table dimension.
    pub const COUNT: usize = 12;

    /// Every reason, in taxonomy (layer) order.
    pub const ALL: [DropReason; DropReason::COUNT] = [
        DropReason::PhyCollision,
        DropReason::PhyCaptureLoss,
        DropReason::PhyUndecodable,
        DropReason::MacRetryExhausted,
        DropReason::IfqOverflow,
        DropReason::MacEarlyDrop,
        DropReason::NoRoute,
        DropReason::RouteError,
        DropReason::TtlExpired,
        DropReason::RouteBufferFull,
        DropReason::SinkDiscard,
        DropReason::FlowTeardown,
    ];

    /// Dense index for counter tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a reason from [`DropReason::index`].
    pub fn from_index(index: usize) -> Option<DropReason> {
        DropReason::ALL.get(index).copied()
    }

    /// Stable snake_case slug used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::PhyCollision => "phy_collision",
            DropReason::PhyCaptureLoss => "phy_capture_loss",
            DropReason::PhyUndecodable => "phy_undecodable",
            DropReason::MacRetryExhausted => "mac_retry_exhausted",
            DropReason::IfqOverflow => "ifq_overflow",
            DropReason::MacEarlyDrop => "mac_early_drop",
            DropReason::NoRoute => "no_route",
            DropReason::RouteError => "route_error",
            DropReason::TtlExpired => "ttl_expired",
            DropReason::RouteBufferFull => "route_buffer_full",
            DropReason::SinkDiscard => "sink_discard",
            DropReason::FlowTeardown => "flow_teardown",
        }
    }

    /// The layer that reported the loss (same 3-letter tags as the trace).
    pub fn layer(self) -> &'static str {
        match self {
            DropReason::PhyCollision | DropReason::PhyCaptureLoss | DropReason::PhyUndecodable => {
                "PHY"
            }
            DropReason::MacRetryExhausted | DropReason::IfqOverflow | DropReason::MacEarlyDrop => {
                "MAC"
            }
            DropReason::NoRoute
            | DropReason::RouteError
            | DropReason::TtlExpired
            | DropReason::RouteBufferFull => "RTR",
            DropReason::SinkDiscard | DropReason::FlowTeardown => "TRN",
        }
    }

    /// `true` if the loss *ends custody* of a packet. Frame-level losses
    /// (collision, capture, undecodable, retry exhaustion) do not: the
    /// packet is still held by its sender, which retries or escalates to a
    /// routing drop.
    pub fn is_terminal(self) -> bool {
        !matches!(
            self,
            DropReason::PhyCollision
                | DropReason::PhyCaptureLoss
                | DropReason::PhyUndecodable
                | DropReason::MacRetryExhausted
        )
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

type ReasonCounts = [u64; DropReason::COUNT];

fn counts_to_json(counts: &ReasonCounts) -> String {
    let mut obj = Obj::new();
    for reason in DropReason::ALL {
        let n = counts[reason.index()];
        if n > 0 {
            obj = obj.u64(reason.label(), n);
        }
    }
    obj.finish()
}

/// Always-on loss ledger: drop counts per reason, per node, and per
/// traffic class.
///
/// Cost model: one array increment per *drop event*, so the ledger is free
/// on the packet fast path and safe to leave enabled in 100k-flow runs.
#[derive(Debug, Clone)]
pub struct DropLedger {
    per_node: Vec<ReasonCounts>,
    per_class: Vec<ReasonCounts>,
    class_names: Vec<String>,
}

impl DropLedger {
    /// A ledger for `nodes` nodes and the given traffic classes. Class
    /// names are fixed at construction; drops recorded with a class index
    /// out of range land in the last ("unattributed") class.
    pub fn new(nodes: usize, class_names: Vec<String>) -> Self {
        assert!(!class_names.is_empty(), "ledger needs at least one class");
        DropLedger {
            per_node: vec![[0; DropReason::COUNT]; nodes],
            per_class: vec![[0; DropReason::COUNT]; class_names.len()],
            class_names,
        }
    }

    /// Records `n` drops of `reason` at `node` attributed to `class`.
    pub fn add(&mut self, node: usize, class: usize, reason: DropReason, n: u64) {
        if n == 0 {
            return;
        }
        let r = reason.index();
        if let Some(row) = self.per_node.get_mut(node) {
            row[r] += n;
        }
        let c = class.min(self.per_class.len() - 1);
        self.per_class[c][r] += n;
    }

    /// Records one drop (the common case).
    pub fn record(&mut self, node: usize, class: usize, reason: DropReason) {
        self.add(node, class, reason, 1);
    }

    /// Class names, in class-index order.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of nodes the ledger was sized for.
    pub fn nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Per-reason counts for one node.
    pub fn node_counts(&self, node: usize) -> &ReasonCounts {
        &self.per_node[node]
    }

    /// Per-reason counts for one class.
    pub fn class_counts(&self, class: usize) -> &ReasonCounts {
        &self.per_class[class]
    }

    /// Per-reason totals over all nodes.
    pub fn totals(&self) -> ReasonCounts {
        let mut out = [0; DropReason::COUNT];
        for row in &self.per_node {
            for (acc, n) in out.iter_mut().zip(row) {
                *acc += n;
            }
        }
        out
    }

    /// Total drops of one reason across all nodes.
    pub fn total(&self, reason: DropReason) -> u64 {
        self.per_node.iter().map(|row| row[reason.index()]).sum()
    }

    /// Total custody-ending drops (the Σ in the conservation equation).
    pub fn terminal_total(&self) -> u64 {
        DropReason::ALL
            .iter()
            .filter(|r| r.is_terminal())
            .map(|&r| self.total(r))
            .sum()
    }

    /// Grand total across every reason, terminal or not.
    pub fn grand_total(&self) -> u64 {
        self.totals().iter().sum()
    }

    /// `true` if nothing was dropped anywhere.
    pub fn is_empty(&self) -> bool {
        self.grand_total() == 0
    }

    /// Deterministic JSON: totals per reason (zeros omitted), then
    /// per-class and per-node breakdowns (all classes; only nodes with at
    /// least one drop).
    pub fn to_json(&self) -> String {
        let totals = self.totals();
        let classes = arr(self
            .class_names
            .iter()
            .zip(&self.per_class)
            .map(|(name, counts)| {
                Obj::new()
                    .str("class", name)
                    .raw("drops", &counts_to_json(counts))
                    .finish()
            }));
        let nodes = arr(self
            .per_node
            .iter()
            .enumerate()
            .filter(|(_, counts)| counts.iter().any(|&n| n > 0))
            .map(|(i, counts)| {
                Obj::new()
                    .usize("node", i)
                    .raw("drops", &counts_to_json(counts))
                    .finish()
            }));
        Obj::new()
            .u64("total", self.grand_total())
            .u64("terminal", self.terminal_total())
            .raw("reasons", &counts_to_json(&totals))
            .raw("per_class", &classes)
            .raw("per_node", &nodes)
            .finish()
    }
}

/// Custody event counters for one node or one flow.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Custody {
    /// Transport-layer originations (data segments, ACKs, retransmits).
    pub originated: u64,
    /// Fresh copies created by MAC deliver-up from a neighbor.
    pub delivered_up: u64,
    /// Copies destroyed by a successful MAC handoff to the next hop.
    pub handed_off: u64,
    /// Copies consumed by the transport endpoint (data and ACK receipt,
    /// duplicates included).
    pub consumed: u64,
    /// Copies destroyed by a terminal drop.
    pub dropped: u64,
}

impl Custody {
    /// Copies this party became responsible for.
    pub fn created(&self) -> u64 {
        self.originated + self.delivered_up
    }

    /// Copies whose custody provably ended.
    pub fn destroyed(&self) -> u64 {
        self.handed_off + self.consumed + self.dropped
    }

    /// The conservation equation, given the copies still buffered.
    pub fn balanced(&self, residual: u64) -> bool {
        self.created() == self.destroyed() + residual
    }
}

/// One conservation imbalance found by [`ConservationAudit::verify`].
#[derive(Debug, Clone)]
pub struct Imbalance {
    /// Node id, or `FlowId::raw` for flow rows.
    pub id: u64,
    /// The custody counters in question.
    pub custody: Custody,
    /// Copies still buffered at verification time.
    pub residual: u64,
}

impl Imbalance {
    /// Signed difference `created − (destroyed + residual)`: positive means
    /// packets vanished (a leak); negative means packets were destroyed
    /// twice (a double free / duplication).
    pub fn delta(&self) -> i64 {
        self.custody.created() as i64 - (self.custody.destroyed() + self.residual) as i64
    }
}

impl fmt::Display for Imbalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "created={} (orig={} up={}) destroyed={} (handoff={} consumed={} dropped={}) residual={} delta={:+}",
            self.custody.created(),
            self.custody.originated,
            self.custody.delivered_up,
            self.custody.destroyed(),
            self.custody.handed_off,
            self.custody.consumed,
            self.custody.dropped,
            self.residual,
            self.delta(),
        )?;
        // Positive: copies created but never destroyed or found in a
        // queue. Negative: more destructions than creations.
        if self.delta() > 0 {
            write!(f, " (leaked)")
        } else {
            write!(f, " (double-freed)")
        }
    }
}

/// Result of a conservation audit: the per-node and per-flow equations
/// that failed, if any.
#[derive(Debug, Clone, Default)]
pub struct ConservationReport {
    /// Nodes whose equation failed.
    pub node_imbalances: Vec<Imbalance>,
    /// Flows whose equation failed.
    pub flow_imbalances: Vec<Imbalance>,
    /// Nodes checked.
    pub nodes_checked: usize,
    /// Flows checked.
    pub flows_checked: usize,
}

impl ConservationReport {
    /// `true` if every checked equation balanced.
    pub fn is_balanced(&self) -> bool {
        self.node_imbalances.is_empty() && self.flow_imbalances.is_empty()
    }
}

impl fmt::Display for ConservationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_balanced() {
            return write!(
                f,
                "conservation holds ({} nodes, {} flows)",
                self.nodes_checked, self.flows_checked
            );
        }
        writeln!(
            f,
            "conservation FAILED ({}/{} nodes, {}/{} flows imbalanced)",
            self.node_imbalances.len(),
            self.nodes_checked,
            self.flow_imbalances.len(),
            self.flows_checked,
        )?;
        for row in &self.node_imbalances {
            writeln!(f, "  node {}: {}", row.id, row)?;
        }
        for row in &self.flow_imbalances {
            writeln!(f, "  flow {}: {}", row.id, row)?;
        }
        Ok(())
    }
}

/// Opt-in custody tracking for the conservation audit.
///
/// Unlike the [`DropLedger`], this counts every custody event — one or two
/// increments per packet per hop plus a hash-map update for the flow row —
/// so it is off by default and enabled for checker runs, `mwn stats`, and
/// instrumented sweeps.
#[derive(Debug, Clone)]
pub struct ConservationAudit {
    per_node: Vec<Custody>,
    per_flow: HashMap<u32, Custody>,
}

impl ConservationAudit {
    /// An audit for `nodes` nodes; flow rows appear on first touch.
    pub fn new(nodes: usize) -> Self {
        ConservationAudit {
            per_node: vec![Custody::default(); nodes],
            per_flow: HashMap::new(),
        }
    }

    fn node_mut(&mut self, node: usize) -> &mut Custody {
        &mut self.per_node[node]
    }

    fn flow_mut(&mut self, flow: u32) -> &mut Custody {
        self.per_flow.entry(flow).or_default()
    }

    /// A transport layer at `node` originated a packet of `flow`.
    pub fn originate(&mut self, node: usize, flow: u32) {
        self.node_mut(node).originated += 1;
        self.flow_mut(flow).originated += 1;
    }

    /// The MAC at `node` delivered a received packet of `flow` up to
    /// routing: this node now holds a fresh copy.
    pub fn deliver_up(&mut self, node: usize, flow: u32) {
        self.node_mut(node).delivered_up += 1;
        self.flow_mut(flow).delivered_up += 1;
    }

    /// The MAC at `node` confirmed a successful unicast handoff: this
    /// node's copy is destroyed (the receiver created its own).
    pub fn handoff(&mut self, node: usize, flow: u32) {
        self.node_mut(node).handed_off += 1;
        self.flow_mut(flow).handed_off += 1;
    }

    /// A transport endpoint at `node` consumed a packet of `flow`.
    pub fn consume(&mut self, node: usize, flow: u32) {
        self.node_mut(node).consumed += 1;
        self.flow_mut(flow).consumed += 1;
    }

    /// A terminal drop destroyed `node`'s copy of a `flow` packet.
    pub fn terminal_drop(&mut self, node: usize, flow: u32) {
        self.node_mut(node).dropped += 1;
        self.flow_mut(flow).dropped += 1;
    }

    /// Custody counters for one node.
    pub fn node(&self, node: usize) -> Custody {
        self.per_node[node]
    }

    /// Custody counters for one flow, if any packet of it was seen.
    pub fn flow(&self, flow: u32) -> Option<Custody> {
        self.per_flow.get(&flow).copied()
    }

    /// Number of distinct flows observed.
    pub fn flows_seen(&self) -> usize {
        self.per_flow.len()
    }

    /// Checks every node and flow equation against the residual buffered
    /// copies the caller enumerated (missing map entries mean zero).
    pub fn verify(
        &self,
        node_residual: &[u64],
        flow_residual: &HashMap<u32, u64>,
    ) -> ConservationReport {
        let mut report = ConservationReport {
            nodes_checked: self.per_node.len(),
            flows_checked: self.per_flow.len(),
            ..ConservationReport::default()
        };
        for (i, custody) in self.per_node.iter().enumerate() {
            let residual = node_residual.get(i).copied().unwrap_or(0);
            if !custody.balanced(residual) {
                report.node_imbalances.push(Imbalance {
                    id: i as u64,
                    custody: *custody,
                    residual,
                });
            }
        }
        let mut flows: Vec<u32> = self.per_flow.keys().copied().collect();
        flows.sort_unstable();
        for flow in flows {
            let custody = self.per_flow[&flow];
            let residual = flow_residual.get(&flow).copied().unwrap_or(0);
            if !custody.balanced(residual) {
                report.flow_imbalances.push(Imbalance {
                    id: u64::from(flow),
                    custody,
                    residual,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_indices_roundtrip_and_split_by_custody() {
        for (i, reason) in DropReason::ALL.iter().enumerate() {
            assert_eq!(reason.index(), i);
            assert_eq!(DropReason::from_index(i), Some(*reason));
        }
        assert_eq!(DropReason::from_index(DropReason::COUNT), None);
        let terminal: Vec<_> = DropReason::ALL.iter().filter(|r| r.is_terminal()).collect();
        assert_eq!(terminal.len(), 8);
        assert!(!DropReason::PhyCollision.is_terminal());
        assert!(!DropReason::MacRetryExhausted.is_terminal());
        assert!(DropReason::IfqOverflow.is_terminal());
        assert!(DropReason::FlowTeardown.is_terminal());
    }

    #[test]
    fn ledger_tallies_per_node_and_class() {
        let mut ledger = DropLedger::new(3, vec!["web".into(), "other".into()]);
        ledger.record(0, 0, DropReason::IfqOverflow);
        ledger.record(0, 0, DropReason::IfqOverflow);
        ledger.record(2, 1, DropReason::NoRoute);
        ledger.add(1, 0, DropReason::PhyCollision, 5);
        assert_eq!(ledger.total(DropReason::IfqOverflow), 2);
        assert_eq!(ledger.grand_total(), 8);
        // Collisions are frame-level, not custody-ending.
        assert_eq!(ledger.terminal_total(), 3);
        assert_eq!(ledger.node_counts(0)[DropReason::IfqOverflow.index()], 2);
        assert_eq!(ledger.class_counts(1)[DropReason::NoRoute.index()], 1);
        // Out-of-range class indices land in the last class.
        ledger.record(1, 99, DropReason::TtlExpired);
        assert_eq!(ledger.class_counts(1)[DropReason::TtlExpired.index()], 1);
    }

    #[test]
    fn ledger_json_is_deterministic_and_omits_idle_nodes() {
        let mut ledger = DropLedger::new(3, vec!["all".into()]);
        ledger.record(1, 0, DropReason::RouteError);
        let json = ledger.to_json();
        assert_eq!(
            json,
            r#"{"total":1,"terminal":1,"reasons":{"route_error":1},"per_class":[{"class":"all","drops":{"route_error":1}}],"per_node":[{"node":1,"drops":{"route_error":1}}]}"#
        );
        assert_eq!(json, ledger.clone().to_json());
    }

    #[test]
    fn audit_balances_a_two_hop_relay() {
        // src(0) -> relay(1) -> dst(2), one data packet of flow 7.
        let mut audit = ConservationAudit::new(3);
        audit.originate(0, 7);
        audit.handoff(0, 7);
        audit.deliver_up(1, 7);
        audit.handoff(1, 7);
        audit.deliver_up(2, 7);
        audit.consume(2, 7);
        let report = audit.verify(&[0, 0, 0], &HashMap::new());
        assert!(report.is_balanced(), "{report}");
        assert_eq!(report.nodes_checked, 3);
        assert_eq!(report.flows_checked, 1);
    }

    #[test]
    fn audit_flags_leak_and_double_free() {
        let mut audit = ConservationAudit::new(2);
        // Leak: node 0 originated but never destroyed, nothing buffered.
        audit.originate(0, 1);
        // Double free: node 1 destroyed a copy it never created.
        audit.terminal_drop(1, 2);
        let report = audit.verify(&[0, 0], &HashMap::new());
        assert_eq!(report.node_imbalances.len(), 2);
        assert_eq!(report.node_imbalances[0].delta(), 1);
        assert_eq!(report.node_imbalances[1].delta(), -1);
        assert_eq!(report.flow_imbalances.len(), 2);
        let shown = report.to_string();
        assert!(shown.contains("FAILED"));
        assert!(shown.contains("delta=+1"));
        assert!(shown.contains("delta=-1"));
    }

    #[test]
    fn audit_accepts_residual_buffered_copies() {
        let mut audit = ConservationAudit::new(1);
        audit.originate(0, 3);
        audit.originate(0, 3);
        audit.handoff(0, 3);
        // One copy still queued at verification time.
        let mut flow_residual = HashMap::new();
        flow_residual.insert(3u32, 1u64);
        let report = audit.verify(&[1], &flow_residual);
        assert!(report.is_balanced(), "{report}");
        // …and without the residual the same counters fail.
        let report = audit.verify(&[0], &HashMap::new());
        assert!(!report.is_balanced());
    }

    #[test]
    fn duplicate_consumption_still_balances() {
        // A retransmitted segment is consumed twice at the sink: both the
        // origination and the consumption are counted per copy.
        let mut audit = ConservationAudit::new(2);
        for _ in 0..2 {
            audit.originate(0, 9);
            audit.handoff(0, 9);
            audit.deliver_up(1, 9);
            audit.consume(1, 9);
        }
        assert!(audit.verify(&[0, 0], &HashMap::new()).is_balanced());
        assert_eq!(audit.flow(9).unwrap().consumed, 2);
        assert_eq!(audit.flows_seen(), 1);
    }
}
