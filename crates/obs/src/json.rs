//! Hand-rolled JSON emission and field extraction, shared by the metrics
//! serializers here and the `mwn-runner` results store.
//!
//! The output format is JSON Lines with a *fixed field order*, so that two
//! runs producing the same results produce byte-identical files. A full
//! JSON parser is deliberately out of scope: the only reader is the store's
//! resume path, which needs two string fields out of lines this module
//! itself wrote, so a targeted scanner suffices.

use std::fmt::Write as _;

/// Builder for one JSON object with fields in insertion order.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
        }
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    fn key(&mut self, name: &str) {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(name);
        self.buf.push_str("\":");
    }

    /// A string field, escaped.
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        write_escaped(&mut self.buf, value);
        self
    }

    /// A pre-serialized JSON value (object, array, number).
    pub fn raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    pub fn u64(self, name: &str, value: u64) -> Self {
        let v = value.to_string();
        self.raw(name, &v)
    }

    pub fn usize(self, name: &str, value: usize) -> Self {
        let v = value.to_string();
        self.raw(name, &v)
    }

    /// A float field. JSON has no NaN/infinity; those serialize as `null`.
    pub fn f64(self, name: &str, value: f64) -> Self {
        let v = fmt_f64(value);
        self.raw(name, &v)
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Shortest-roundtrip float formatting (Rust's `Display`), `null` for
/// non-finite values. Deterministic for a given toolchain.
pub fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".into()
    }
}

/// A JSON array from pre-serialized element strings.
pub fn arr<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Extracts the string field `name` from a JSON line this module wrote.
///
/// Scans for the literal `"name":"` — safe on our own output because
/// string *values* are escaped, so an unescaped `":"` sequence can only
/// occur at a real key boundary.
pub fn extract_str_field(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_field_order_is_insertion_order() {
        let line = Obj::new()
            .str("type", "result")
            .u64("seed", 7)
            .f64("x", 1.5)
            .finish();
        assert_eq!(line, r#"{"type":"result","seed":7,"x":1.5}"#);
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let nasty = "quote \" slash \\ newline \n tab \t bell \u{7}";
        let line = Obj::new()
            .str("error", nasty)
            .str("status", "failed")
            .finish();
        assert_eq!(extract_str_field(&line, "error").as_deref(), Some(nasty));
        assert_eq!(
            extract_str_field(&line, "status").as_deref(),
            Some("failed")
        );
    }

    #[test]
    fn embedded_field_text_does_not_confuse_extraction() {
        // A value containing what looks like a status field: the quotes are
        // escaped on write, so the scanner cannot match inside it.
        let line = Obj::new()
            .str("error", r#"panic: "status":"done" is a lie"#)
            .str("status", "failed")
            .finish();
        assert_eq!(
            extract_str_field(&line, "status").as_deref(),
            Some("failed")
        );
    }

    #[test]
    fn floats_serialize_deterministically() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn arrays_join_elements() {
        assert_eq!(arr(vec!["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(arr(Vec::<String>::new()), "[]");
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(extract_str_field(r#"{"a":"b"}"#, "key"), None);
        assert_eq!(extract_str_field(r#"{"key":"unterminated"#, "key"), None);
    }
}
