//! `mwn-obs` — the observability layer of the multihop-wireless TCP study.
//!
//! The paper's evaluation hinges on *internal* protocol signals: the
//! congestion-window evolution of Figures 3–4, the link-layer dropping
//! probability of Figure 14, per-flow goodput fairness. This crate gives
//! every layer of the simulator one way to expose those signals, with
//! zero cost when disabled:
//!
//! * [`metrics`] — typed counter blocks ([`CounterBlock`]) unifying the
//!   PHY, MAC, AODV and TCP statistics structs, a [`MetricsRegistry`]
//!   that snapshots them per node per batch, and the bounded-reservoir
//!   [`Quantiles`] estimator;
//! * [`fct`] — streaming per-class flow-completion summaries (p50/p95/p99
//!   FCT and goodput) for open-loop traffic, no per-event retention;
//! * [`mod@drop`] — the cross-layer [`DropReason`] loss taxonomy, the always-on
//!   [`DropLedger`] (drops per reason × node × class), and the opt-in
//!   [`ConservationAudit`] proving `created = destroyed + residual` per
//!   node and per flow;
//! * [`flight`] — an always-on [`FlightRecorder`] ring of 24-byte records
//!   of the rare events, dumped when an invariant trips or a run panics;
//! * [`trace`] — a [`TraceEvent`] enum replacing pre-formatted strings,
//!   recorded into a bounded ring buffer and exportable as JSONL;
//! * [`probe`] — on-change time-series sampling of cwnd, srtt, the Vegas
//!   `diff` signal and interface-queue depth;
//! * [`json`] — the hand-rolled, byte-deterministic JSON emitter shared
//!   with the results store (no serde: the workspace builds offline).
//!
//! # Example
//!
//! ```
//! use mwn_obs::metrics::{MetricsRegistry, MetricsSnapshot};
//! use mwn_sim::SimTime;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.begin(MetricsSnapshot::empty(SimTime::ZERO));
//! reg.end_batch(MetricsSnapshot::empty(SimTime::from_nanos(1_000)));
//! assert_eq!(reg.batches().len(), 1);
//! ```

pub mod drop;
pub mod fct;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod probe;
pub mod trace;

pub use drop::{ConservationAudit, ConservationReport, Custody, DropLedger, DropReason, Imbalance};
pub use fct::{ClassFct, FctSummary};
pub use flight::{FlightKind, FlightRecord, FlightRecorder};
pub use metrics::{
    BatchMetrics, CounterBlock, FlowCounters, MetricsRegistry, MetricsReport, MetricsSnapshot,
    NodeCounters, Quantiles,
};
pub use probe::{ProbeBuffer, ProbeKind, ProbeSample};
pub use trace::{TraceBuffer, TraceEvent, TraceLayer, TraceRecord};
