//! `mwn-obs` — the observability layer of the multihop-wireless TCP study.
//!
//! The paper's evaluation hinges on *internal* protocol signals: the
//! congestion-window evolution of Figures 3–4, the link-layer dropping
//! probability of Figure 14, per-flow goodput fairness. This crate gives
//! every layer of the simulator one way to expose those signals, with
//! zero cost when disabled:
//!
//! * [`metrics`] — typed counter blocks ([`CounterBlock`]) unifying the
//!   PHY, MAC, AODV and TCP statistics structs, and a [`MetricsRegistry`]
//!   that snapshots them per node per batch;
//! * [`trace`] — a [`TraceEvent`] enum replacing pre-formatted strings,
//!   recorded into a bounded ring buffer and exportable as JSONL;
//! * [`probe`] — on-change time-series sampling of cwnd, srtt, the Vegas
//!   `diff` signal and interface-queue depth;
//! * [`json`] — the hand-rolled, byte-deterministic JSON emitter shared
//!   with the results store (no serde: the workspace builds offline).
//!
//! # Example
//!
//! ```
//! use mwn_obs::metrics::{MetricsRegistry, MetricsSnapshot};
//! use mwn_sim::SimTime;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.begin(MetricsSnapshot::empty(SimTime::ZERO));
//! reg.end_batch(MetricsSnapshot::empty(SimTime::from_nanos(1_000)));
//! assert_eq!(reg.batches().len(), 1);
//! ```

pub mod json;
pub mod metrics;
pub mod probe;
pub mod trace;

pub use metrics::{
    BatchMetrics, CounterBlock, FlowCounters, MetricsRegistry, MetricsReport, MetricsSnapshot,
    NodeCounters,
};
pub use probe::{ProbeBuffer, ProbeKind, ProbeSample};
pub use trace::{TraceBuffer, TraceEvent, TraceLayer, TraceRecord};
