//! Streaming per-class flow-completion summaries for open-loop traffic.
//!
//! An open-loop workload spawns hundreds of thousands of finite flows per
//! run, so per-event retention is off the table: each traffic class keeps
//! O(1) counters plus two bounded [`Quantiles`] reservoirs (completion
//! time and per-flow goodput), giving p50/p95/p99 SLO lines at constant
//! memory. Counters are cumulative and monotone, so callers can take
//! batch-means deltas across summaries the same way they do for
//! [`crate::metrics::MetricsSnapshot`] counter blocks.

use mwn_sim::{SimDuration, SimTime};

use crate::json::{arr, Obj};
use crate::metrics::Quantiles;

/// Payload bits per data packet (1460-byte MSS), matching the goodput
/// accounting used by the persistent-flow experiment pipeline.
const BITS_PER_PACKET: f64 = 1460.0 * 8.0;

/// Default reservoir size per class, per metric. 4096 samples keep the
/// p99 estimate stable for the flow counts this repo sweeps (1e5–1e6)
/// while bounding a class summary to a few tens of kilobytes.
const RESERVOIR: usize = 4096;

/// One traffic class's completion statistics.
#[derive(Debug, Clone)]
pub struct ClassFct {
    name: String,
    arrivals: u64,
    completions: u64,
    packets_completed: u64,
    sum_fct_secs: f64,
    fct_secs: Quantiles,
    goodput_kbps: Quantiles,
}

impl ClassFct {
    /// An empty summary for class `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ClassFct {
            name: name.into(),
            arrivals: 0,
            completions: 0,
            packets_completed: 0,
            sum_fct_secs: 0.0,
            fct_secs: Quantiles::new(RESERVOIR),
            goodput_kbps: Quantiles::new(RESERVOIR),
        }
    }

    /// Class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counts one flow arrival (spawn).
    pub fn record_arrival(&mut self) {
        self.arrivals += 1;
    }

    /// Counts one flow completion: `fct` is the time from spawn to the
    /// last ACK, `packets` the data packets the flow transferred.
    pub fn record_completion(&mut self, fct: SimDuration, packets: u64) {
        let secs = fct.as_secs_f64();
        self.completions += 1;
        self.packets_completed += packets;
        self.sum_fct_secs += secs;
        self.fct_secs.record(secs);
        if secs > 0.0 {
            self.goodput_kbps
                .record(packets as f64 * BITS_PER_PACKET / secs / 1_000.0);
        }
    }

    /// Flows spawned so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Flows completed so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Data packets transferred by completed flows.
    pub fn packets_completed(&self) -> u64 {
        self.packets_completed
    }

    /// Mean completion time over completed flows, seconds.
    pub fn mean_fct_secs(&self) -> Option<f64> {
        (self.completions > 0).then(|| self.sum_fct_secs / self.completions as f64)
    }

    /// Completion-time quantiles (seconds).
    pub fn fct(&self) -> &Quantiles {
        &self.fct_secs
    }

    /// Per-flow goodput quantiles (kbit/s of payload).
    pub fn goodput(&self) -> &Quantiles {
        &self.goodput_kbps
    }

    fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => crate::json::fmt_f64(x),
            None => "null".into(),
        };
        Obj::new()
            .str("class", &self.name)
            .u64("arrivals", self.arrivals)
            .u64("completions", self.completions)
            .u64("packets", self.packets_completed)
            .raw("fct_mean_secs", &opt(self.mean_fct_secs()))
            .raw("fct_p50_secs", &opt(self.fct_secs.p50()))
            .raw("fct_p95_secs", &opt(self.fct_secs.p95()))
            .raw("fct_p99_secs", &opt(self.fct_secs.p99()))
            .raw("goodput_p50_kbps", &opt(self.goodput_kbps.p50()))
            .raw("goodput_p99_kbps", &opt(self.goodput_kbps.p99()))
            .finish()
    }
}

/// Per-class completion summaries for one traffic run.
#[derive(Debug, Clone, Default)]
pub struct FctSummary {
    classes: Vec<ClassFct>,
}

impl FctSummary {
    /// A summary with one empty [`ClassFct`] per class name, in order.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Self {
        FctSummary {
            classes: names.iter().map(|n| ClassFct::new(n.as_ref())).collect(),
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The summaries, in class order.
    pub fn classes(&self) -> &[ClassFct] {
        &self.classes
    }

    /// Mutable access to class `idx` (panics if out of range — class
    /// indices come from the traffic model, which is fixed per run).
    pub fn class_mut(&mut self, idx: usize) -> &mut ClassFct {
        &mut self.classes[idx]
    }

    /// Total completions across classes.
    pub fn completions(&self) -> u64 {
        self.classes.iter().map(|c| c.completions).sum()
    }

    /// Total arrivals across classes.
    pub fn arrivals(&self) -> u64 {
        self.classes.iter().map(|c| c.arrivals).sum()
    }

    /// Serializes the summary as one deterministic JSON object. The shape
    /// is documented in EXPERIMENTS.md ("Traffic model"): reservoir-backed
    /// quantiles are a pure function of the completion sequence, so this
    /// string is byte-identical across worker counts and machines.
    pub fn to_json(&self, end: SimTime) -> String {
        Obj::new()
            .f64("t_secs", end.as_secs_f64())
            .u64("arrivals", self.arrivals())
            .u64("completions", self.completions())
            .raw("classes", &arr(self.classes.iter().map(|c| c.to_json())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_summary_counts_and_quantiles() {
        let mut s = FctSummary::new(&["web", "bulk"]);
        assert_eq!(s.class_count(), 2);
        s.class_mut(0).record_arrival();
        s.class_mut(0).record_arrival();
        s.class_mut(1).record_arrival();
        s.class_mut(0)
            .record_completion(SimDuration::from_millis(100), 4);
        s.class_mut(0)
            .record_completion(SimDuration::from_millis(300), 4);
        assert_eq!(s.arrivals(), 3);
        assert_eq!(s.completions(), 2);
        let web = &s.classes()[0];
        assert_eq!(web.packets_completed(), 8);
        assert!((web.mean_fct_secs().unwrap() - 0.2).abs() < 1e-12);
        assert!((web.fct().p50().unwrap() - 0.2).abs() < 1e-12);
        // 4 packets in 0.1 s = 4 * 11.68 kbit / 0.1 s = 467.2 kbit/s; the
        // p50 of {467.2, 155.73..} interpolates between the two.
        assert!(web.goodput().p50().unwrap() > 155.0);
        assert_eq!(s.classes()[1].completions(), 0);
        assert_eq!(s.classes()[1].mean_fct_secs(), None);
    }

    #[test]
    fn summary_json_shape_is_stable() {
        let mut s = FctSummary::new(&["web"]);
        s.class_mut(0).record_arrival();
        s.class_mut(0)
            .record_completion(SimDuration::from_secs(1), 10);
        assert_eq!(
            s.to_json(SimTime::from_nanos(2_000_000_000)),
            r#"{"t_secs":2,"arrivals":1,"completions":1,"classes":[{"class":"web","arrivals":1,"completions":1,"packets":10,"fct_mean_secs":1,"fct_p50_secs":1,"fct_p95_secs":1,"fct_p99_secs":1,"goodput_p50_kbps":116.8,"goodput_p99_kbps":116.8}]}"#
        );
    }

    #[test]
    fn zero_duration_completion_skips_goodput() {
        let mut c = ClassFct::new("x");
        c.record_completion(SimDuration::ZERO, 5);
        assert_eq!(c.completions(), 1);
        assert_eq!(c.fct().p50(), Some(0.0));
        assert_eq!(c.goodput().p50(), None);
    }
}
