//! Always-on flight recorder: a fixed-capacity ring of compact binary
//! records of the *rare* events (drops, handoff failures, flow lifecycle,
//! route failures), dumped when an invariant trips or the run panics.
//!
//! The full [`crate::trace::TraceBuffer`] records every event as an enum
//! with per-variant payloads and is too heavy to leave on in 100k-flow
//! runs. The flight recorder instead stores 24-byte [`FlightRecord`]s and
//! is written only at sparse events, so it stays enabled by default: when
//! a run fails at scale, the failure arrives with its last N events
//! attached instead of a bare panic message.
//!
//! A network registers its recorder for the current thread with
//! [`register`]; the first registration installs a chained panic hook that
//! dumps the registered ring to stderr. Registration holds a weak
//! reference, so a finished run's recorder is collected normally.
//!
//! The recorder is shared as `Arc<Mutex<_>>` (not `Rc<RefCell<_>>`) so a
//! network holding one stays `Send`: the sharded engine moves per-node
//! work across worker threads, and rare-event recording must not be the
//! one field pinning the whole simulation to a single thread. The panic
//! hook uses `try_lock`, so a panic while the lock is held degrades to
//! "no dump", never to a second panic.

use std::fmt;
use std::sync::{Arc, Mutex, Once, Weak};

use crate::drop::DropReason;

/// What kind of event a [`FlightRecord`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A packet or frame was dropped; `reason` holds the taxonomy index.
    Drop = 0,
    /// A unicast MAC handoff failed (retry exhaustion reported upward).
    TxFail = 1,
    /// An open-loop flow was spawned; `id` is `FlowId::raw`.
    FlowOpen = 2,
    /// An open-loop flow completed; `id` is `FlowId::raw`.
    FlowClose = 3,
    /// Routing declared a route to `id` (a node) lost.
    RouteFail = 4,
}

impl FlightKind {
    fn label(self) -> &'static str {
        match self {
            FlightKind::Drop => "drop",
            FlightKind::TxFail => "tx_fail",
            FlightKind::FlowOpen => "flow_open",
            FlightKind::FlowClose => "flow_close",
            FlightKind::RouteFail => "route_fail",
        }
    }
}

/// One compact record: 24 bytes, no heap data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Simulated time in nanoseconds.
    pub t_nanos: u64,
    /// Packet uid, `FlowId::raw`, or destination node, depending on kind.
    pub id: u64,
    /// Node the event happened at.
    pub node: u32,
    /// Event kind.
    pub kind: FlightKind,
    /// [`DropReason::index`] for drops, `NO_REASON` otherwise.
    pub reason: u8,
}

/// Sentinel for records that carry no drop reason.
pub const NO_REASON: u8 = u8::MAX;

impl FlightRecord {
    /// The drop reason, when the record carries one.
    pub fn drop_reason(&self) -> Option<DropReason> {
        DropReason::from_index(usize::from(self.reason))
    }
}

impl fmt::Display for FlightRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>14.6}s n{} {}",
            self.t_nanos as f64 / 1e9,
            self.node,
            self.kind.label()
        )?;
        if let Some(reason) = self.drop_reason() {
            write!(f, " reason={reason}")?;
        }
        match self.kind {
            FlightKind::FlowOpen | FlightKind::FlowClose => write!(f, " flow={}", self.id),
            FlightKind::RouteFail => write!(f, " dst=n{}", self.id),
            _ => write!(f, " uid={}", self.id),
        }
    }
}

/// Default ring capacity: 4096 records ≈ 96 KiB.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Fixed-capacity ring of [`FlightRecord`]s (capacity rounded up to a
/// power of two so the wrap is a mask, not a division).
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<FlightRecord>,
    mask: usize,
    /// Total records ever written; `head % capacity` is the next slot.
    written: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` records (rounded up
    /// to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity");
        let capacity = capacity.next_power_of_two();
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            mask: capacity - 1,
            written: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full.
    pub fn record(&mut self, record: FlightRecord) {
        let slot = (self.written as usize) & self.mask;
        if slot < self.buf.len() {
            self.buf[slot] = record;
        } else {
            self.buf.push(record);
        }
        self.written += 1;
    }

    /// Records retained (at most the capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured (rounded) capacity.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Total records ever written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Records overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.written - self.buf.len() as u64
    }

    /// Retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightRecord> {
        let start = if self.buf.len() < self.capacity() {
            0
        } else {
            (self.written as usize) & self.mask
        };
        let (tail, head) = self.buf.split_at(start);
        head.iter().chain(tail.iter())
    }

    /// Renders the ring as display lines, oldest first, with a header
    /// summarizing totals and evictions.
    pub fn dump_lines(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len() + 1);
        out.push(format!(
            "flight recorder: {} events recorded, {} evicted, showing last {}",
            self.written,
            self.dropped(),
            self.len()
        ));
        out.extend(self.iter().map(|r| format!("  {r}")));
        out
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Weak<Mutex<FlightRecorder>>> =
        const { std::cell::RefCell::new(Weak::new()) };
}

static HOOK: Once = Once::new();

/// Registers `recorder` as the current thread's flight recorder and
/// installs the process-wide panic hook on first use. The registration is
/// weak: dropping the owning `Arc` deactivates it.
pub fn register(recorder: &Arc<Mutex<FlightRecorder>>) {
    CURRENT.with(|slot| *slot.borrow_mut() = Arc::downgrade(recorder));
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            if let Some(lines) = dump_current() {
                eprintln!(
                    "--- flight recorder (thread {:?}) ---",
                    std::thread::current().id()
                );
                for line in lines {
                    eprintln!("{line}");
                }
            }
        }));
    });
}

/// Dumps the current thread's registered recorder, if one is alive and
/// not locked (the panic hook must never block or re-panic on the lock).
pub fn dump_current() -> Option<Vec<String>> {
    CURRENT.with(|slot| {
        let recorder = slot.borrow().upgrade()?;
        let recorder = recorder.try_lock().ok()?;
        Some(recorder.dump_lines())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ns: u64, uid: u64) -> FlightRecord {
        FlightRecord {
            t_nanos: ns,
            id: uid,
            node: 1,
            kind: FlightKind::Drop,
            reason: DropReason::IfqOverflow.index() as u8,
        }
    }

    #[test]
    fn record_is_compact() {
        assert!(std::mem::size_of::<FlightRecord>() <= 24);
    }

    #[test]
    fn ring_wraps_and_counts_evictions() {
        let mut r = FlightRecorder::new(4);
        for i in 0..11 {
            r.record(rec(i, i));
        }
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.written(), 11);
        assert_eq!(r.dropped(), 7);
        let times: Vec<u64> = r.iter().map(|x| x.t_nanos).collect();
        assert_eq!(times, vec![7, 8, 9, 10]);
    }

    #[test]
    fn partial_ring_iterates_in_order_with_no_drops() {
        let mut r = FlightRecorder::new(8);
        r.record(rec(1, 1));
        r.record(rec(2, 2));
        assert_eq!(r.dropped(), 0);
        let times: Vec<u64> = r.iter().map(|x| x.t_nanos).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::new(5).capacity(), 8);
        assert_eq!(FlightRecorder::new(1).capacity(), 1);
        let mut r = FlightRecorder::new(1);
        r.record(rec(1, 1));
        r.record(rec(2, 2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().t_nanos, 2);
    }

    #[test]
    fn display_carries_reason_and_id() {
        let line = rec(1_500_000, 42).to_string();
        assert!(line.contains("drop"), "{line}");
        assert!(line.contains("reason=ifq_overflow"), "{line}");
        assert!(line.contains("uid=42"), "{line}");
        let open = FlightRecord {
            t_nanos: 0,
            id: 7,
            node: 0,
            kind: FlightKind::FlowOpen,
            reason: NO_REASON,
        };
        assert!(open.to_string().contains("flow_open flow=7"));
        assert_eq!(open.drop_reason(), None);
    }

    #[test]
    fn dump_lines_header_reports_evictions() {
        let mut r = FlightRecorder::new(2);
        for i in 0..5 {
            r.record(rec(i, i));
        }
        let lines = r.dump_lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("5 events recorded, 3 evicted"));
    }

    #[test]
    fn registration_is_weak_and_dumpable() {
        let recorder = Arc::new(Mutex::new(FlightRecorder::new(8)));
        register(&recorder);
        recorder.lock().unwrap().record(rec(9, 9));
        let lines = dump_current().expect("registered recorder dumps");
        assert!(lines.iter().any(|l| l.contains("uid=9")));
        drop(recorder);
        assert!(dump_current().is_none(), "weak registration must expire");
    }

    #[test]
    fn dump_skips_a_held_lock_instead_of_blocking() {
        let recorder = Arc::new(Mutex::new(FlightRecorder::new(8)));
        register(&recorder);
        let guard = recorder.lock().unwrap();
        assert!(dump_current().is_none(), "held lock must not deadlock");
        drop(guard);
        assert!(dump_current().is_some());
    }
}
