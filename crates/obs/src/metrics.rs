//! Unified typed metrics: counter blocks per layer, per-node/per-flow
//! snapshots, and batch-boundary deltas.
//!
//! Every protocol layer already keeps a plain counter struct
//! ([`MacCounters`], [`AodvCounters`], [`PhyCounters`], the TCP stats).
//! [`CounterBlock`] gives them one shared shape — named `u64` fields with
//! element-wise `plus`/`minus` — so aggregation, batch deltas and JSON
//! serialization are written once instead of once per struct.
//!
//! A [`MetricsRegistry`] turns whole-network [`MetricsSnapshot`]s taken at
//! batch boundaries into per-batch deltas, reproducing the paper's
//! batch-means methodology for *internal* counters the same way
//! `mwn::experiment` does for goodput.

use mwn_aodv::AodvCounters;
use mwn_mac80211::MacCounters;
use mwn_phy::PhyCounters;
use mwn_sim::profile::EngineProfile;
use mwn_sim::{Pcg32, SimTime};
use mwn_tcp::{TcpSenderStats, TcpSinkStats};

use crate::json::{arr, Obj};
use crate::probe::ProbeSample;

/// Streaming p50/p95/p99 over a bounded sample reservoir.
///
/// Keeps at most `capacity` samples. While the input fits, quantiles are
/// exact; beyond that, Algorithm R reservoir sampling keeps a uniform
/// subsample, driven by a *fixed-stream* internal [`Pcg32`] so two
/// `Quantiles` fed the same value sequence retain byte-identical
/// reservoirs — quantile summaries stay a pure function of the input
/// stream, independent of wall clock, worker count or global RNG state.
///
/// Memory is `O(capacity)` regardless of how many values are recorded,
/// which is what lets per-class flow-completion summaries survive
/// million-flow open-loop runs without per-event retention.
///
/// # Example
///
/// ```
/// use mwn_obs::metrics::Quantiles;
///
/// let mut q = Quantiles::new(64);
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     q.record(v);
/// }
/// assert_eq!(q.quantile(0.5), Some(2.5));
/// assert!((q.p99().unwrap() - 3.97).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Quantiles {
    capacity: usize,
    samples: Vec<f64>,
    seen: u64,
    rng: Pcg32,
}

impl Quantiles {
    /// Reservoir stream constants: every `Quantiles` starts from the same
    /// RNG state, so reservoir contents depend only on the value sequence.
    const SEED: u64 = 0x005E_ED0F_9A17;
    const STREAM: u64 = 0x95EA;

    /// A reservoir holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "quantile reservoir needs capacity");
        Quantiles {
            capacity,
            samples: Vec::new(),
            seen: 0,
            rng: Pcg32::with_stream(Self::SEED, Self::STREAM),
        }
    }

    /// Records one sample. Non-finite values are counted but excluded
    /// from the reservoir (a NaN would poison the sort).
    pub fn record(&mut self, value: f64) {
        let index = self.seen;
        self.seen += 1;
        if !value.is_finite() {
            return;
        }
        if self.samples.len() < self.capacity {
            if self.samples.capacity() < self.capacity {
                // One up-front allocation; `record` never reallocates.
                self.samples.reserve_exact(self.capacity);
            }
            self.samples.push(value);
        } else {
            // Algorithm R: keep the i-th value with probability cap/(i+1).
            let j = self.rng.gen_range_u64(index + 1);
            if (j as usize) < self.capacity {
                self.samples[j as usize] = value;
            }
        }
    }

    /// Values recorded so far (including any discarded by the reservoir).
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// `true` while every recorded value is still retained, i.e. the
    /// quantiles are exact rather than sampled.
    pub fn is_exact(&self) -> bool {
        self.seen <= self.capacity as u64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) with linear interpolation between
    /// order statistics; `None` until a sample exists.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("reservoir holds no NaN"));
        let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
    }

    /// Median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// A block of named monotonic `u64` counters.
///
/// Implemented by each layer's statistics struct so that summation over
/// nodes, batch-boundary deltas and serialization are uniform.
pub trait CounterBlock: Copy {
    /// Short layer tag (`"phy"`, `"mac"`, ...), used as the JSON key.
    const KIND: &'static str;

    /// Field names, in declaration order.
    fn field_names() -> &'static [&'static str];

    /// Field values, in the same order as [`CounterBlock::field_names`].
    fn values(&self) -> Vec<u64>;

    /// Element-wise difference `self - earlier` (counters are monotonic;
    /// callers pass a snapshot taken earlier in the same run).
    fn minus(&self, earlier: &Self) -> Self;

    /// Element-wise sum.
    fn plus(&self, other: &Self) -> Self;

    /// The block as a JSON object with fields in declaration order.
    fn to_json(&self) -> String {
        let mut o = Obj::new();
        for (name, v) in Self::field_names().iter().zip(self.values()) {
            o = o.u64(name, v);
        }
        o.finish()
    }
}

macro_rules! counter_block {
    ($ty:ty, $kind:literal, [$($field:ident),+ $(,)?]) => {
        impl CounterBlock for $ty {
            const KIND: &'static str = $kind;

            fn field_names() -> &'static [&'static str] {
                &[$(stringify!($field)),+]
            }

            fn values(&self) -> Vec<u64> {
                vec![$(self.$field),+]
            }

            fn minus(&self, earlier: &Self) -> Self {
                // Saturating: under flow churn a slot can be re-occupied by
                // a younger flow whose counters restart from zero, making
                // "later minus earlier" briefly non-monotonic. Clamping to
                // zero beats a debug-build underflow panic there, and is
                // exact whenever counters are monotone (the steady case).
                Self { $($field: self.$field.saturating_sub(earlier.$field)),+ }
            }

            fn plus(&self, other: &Self) -> Self {
                Self { $($field: self.$field + other.$field),+ }
            }
        }
    };
}

counter_block!(PhyCounters, "phy", [captures, collisions, undecoded]);

counter_block!(
    MacCounters,
    "mac",
    [
        unicast_accepted,
        broadcast_accepted,
        queue_drops,
        rts_retry_drops,
        data_retry_drops,
        unicast_delivered,
        rts_sent,
        data_sent,
        cts_timeouts,
        ack_timeouts,
        duplicates_suppressed,
        early_drops,
    ]
);

counter_block!(
    AodvCounters,
    "aodv",
    [
        false_route_failures,
        rreqs_originated,
        rreqs_forwarded,
        rreps_generated,
        rerrs_sent,
        no_route_drops,
        link_failure_drops,
        rreq_rebroadcasts_suppressed,
        gratuitous_rreps,
    ]
);

counter_block!(
    TcpSenderStats,
    "tcp_tx",
    [
        data_packets_sent,
        retransmissions,
        timeouts,
        fast_retransmits,
        dup_acks,
    ]
);

counter_block!(
    TcpSinkStats,
    "tcp_rx",
    [
        delivered,
        acks_sent,
        duplicates,
        out_of_order,
        acks_suppressed
    ]
);

/// One node's counters (all layers) plus point-in-time gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Radio counters (capture, collision, EIFS).
    pub phy: PhyCounters,
    /// 802.11 DCF counters.
    pub mac: MacCounters,
    /// AODV counters (RREQ/RREP/RERR, route breaks, drops).
    pub aodv: AodvCounters,
    /// Gauge: routing-table entries at snapshot time.
    pub route_table_size: u64,
    /// Gauge: interface-queue depth at snapshot time.
    pub ifq_depth: u64,
}

impl NodeCounters {
    /// Counter deltas since `earlier`; gauges keep the *later* (current)
    /// value, since a gauge difference is meaningless.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        NodeCounters {
            phy: self.phy.minus(&earlier.phy),
            mac: self.mac.minus(&earlier.mac),
            aodv: self.aodv.minus(&earlier.aodv),
            route_table_size: self.route_table_size,
            ifq_depth: self.ifq_depth,
        }
    }

    /// Element-wise sum of counters; gauges add too (callers summing over
    /// nodes get totals: total table entries, total queued packets).
    pub fn plus(&self, other: &Self) -> Self {
        NodeCounters {
            phy: self.phy.plus(&other.phy),
            mac: self.mac.plus(&other.mac),
            aodv: self.aodv.plus(&other.aodv),
            route_table_size: self.route_table_size + other.route_table_size,
            ifq_depth: self.ifq_depth + other.ifq_depth,
        }
    }

    fn to_json(self) -> String {
        Obj::new()
            .raw("phy", &self.phy.to_json())
            .raw("mac", &self.mac.to_json())
            .raw("aodv", &self.aodv.to_json())
            .u64("route_table_size", self.route_table_size)
            .u64("ifq_depth", self.ifq_depth)
            .finish()
    }
}

/// One flow's transport counters (`None` at the non-TCP end of UDP flows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCounters {
    /// Sender-side TCP stats.
    pub sender: Option<TcpSenderStats>,
    /// Sink-side TCP stats.
    pub sink: Option<TcpSinkStats>,
}

impl FlowCounters {
    /// Counter deltas since `earlier`.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        FlowCounters {
            sender: match (&self.sender, &earlier.sender) {
                (Some(a), Some(b)) => Some(a.minus(b)),
                (s, _) => *s,
            },
            sink: match (&self.sink, &earlier.sink) {
                (Some(a), Some(b)) => Some(a.minus(b)),
                (s, _) => *s,
            },
        }
    }

    fn to_json(self) -> String {
        Obj::new()
            .raw(
                "sender",
                &self.sender.map_or("null".into(), |s| s.to_json()),
            )
            .raw("sink", &self.sink.map_or("null".into(), |s| s.to_json()))
            .finish()
    }
}

/// The whole network's counters at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken.
    pub time: SimTime,
    /// Per-node counters, indexed by node id.
    pub nodes: Vec<NodeCounters>,
    /// Per-flow transport counters, indexed by flow id.
    pub flows: Vec<FlowCounters>,
}

impl MetricsSnapshot {
    /// A snapshot with no nodes or flows (tests, placeholders).
    pub fn empty(time: SimTime) -> Self {
        MetricsSnapshot {
            time,
            nodes: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Sum of all nodes' counters (gauges sum too).
    pub fn node_totals(&self) -> NodeCounters {
        self.nodes
            .iter()
            .fold(NodeCounters::default(), |acc, n| acc.plus(n))
    }

    fn to_json(&self) -> String {
        Obj::new()
            .f64("t_secs", self.time.as_secs_f64())
            .raw("nodes", &arr(self.nodes.iter().map(|n| n.to_json())))
            .raw("flows", &arr(self.flows.iter().map(|f| f.to_json())))
            .finish()
    }
}

/// Per-node and per-flow counter deltas over one batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Batch start time.
    pub start: SimTime,
    /// Batch end time.
    pub end: SimTime,
    /// Per-node deltas (gauges: value at batch end).
    pub nodes: Vec<NodeCounters>,
    /// Per-flow deltas.
    pub flows: Vec<FlowCounters>,
}

impl BatchMetrics {
    /// Sum of all nodes' deltas.
    pub fn node_totals(&self) -> NodeCounters {
        self.nodes
            .iter()
            .fold(NodeCounters::default(), |acc, n| acc.plus(n))
    }

    /// The paper's link-layer dropping probability over this batch
    /// (Figure 14): contention drops per unicast packet entering service.
    pub fn drop_probability(&self) -> f64 {
        self.node_totals().mac.drop_probability()
    }

    fn to_json(&self) -> String {
        Obj::new()
            .f64("start_secs", self.start.as_secs_f64())
            .f64("end_secs", self.end.as_secs_f64())
            .raw("nodes", &arr(self.nodes.iter().map(|n| n.to_json())))
            .raw("flows", &arr(self.flows.iter().map(|f| f.to_json())))
            .finish()
    }
}

/// Accumulates batch-boundary snapshots into per-batch deltas.
///
/// Call [`MetricsRegistry::begin`] with the run's initial snapshot, then
/// [`MetricsRegistry::end_batch`] at each batch boundary; each call yields
/// one [`BatchMetrics`] covering the interval since the previous boundary.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    baseline: Option<MetricsSnapshot>,
    batches: Vec<BatchMetrics>,
}

impl MetricsRegistry {
    /// An empty registry; call [`MetricsRegistry::begin`] before the first
    /// batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the baseline snapshot the first batch is measured against.
    pub fn begin(&mut self, snapshot: MetricsSnapshot) {
        self.baseline = Some(snapshot);
    }

    /// Closes a batch: records the deltas since the previous boundary and
    /// makes `snapshot` the new baseline.
    ///
    /// The *node* population is fixed for the life of a run, but the flow
    /// table churns under open-loop traffic: a flow may appear (slot
    /// grown) or vanish (slot freed) between boundaries. A flow absent
    /// from one side is measured against [`FlowCounters::default`], so a
    /// flow born mid-batch contributes its whole lifetime-so-far and a
    /// flow that completed contributes nothing further.
    ///
    /// # Panics
    ///
    /// Panics if [`MetricsRegistry::begin`] was never called, or if the
    /// snapshot's node count changed mid-run.
    pub fn end_batch(&mut self, snapshot: MetricsSnapshot) {
        let base = self
            .baseline
            .as_ref()
            .expect("MetricsRegistry::begin before end_batch");
        assert_eq!(base.nodes.len(), snapshot.nodes.len(), "node count changed");
        let empty = FlowCounters::default();
        let flow_slots = base.flows.len().max(snapshot.flows.len());
        self.batches.push(BatchMetrics {
            start: base.time,
            end: snapshot.time,
            nodes: snapshot
                .nodes
                .iter()
                .zip(&base.nodes)
                .map(|(now, then)| now.delta_since(then))
                .collect(),
            flows: (0..flow_slots)
                .map(|i| {
                    let now = snapshot.flows.get(i).unwrap_or(&empty);
                    let then = base.flows.get(i).unwrap_or(&empty);
                    now.delta_since(then)
                })
                .collect(),
        });
        self.baseline = Some(snapshot);
    }

    /// The recorded batch deltas, oldest first.
    pub fn batches(&self) -> &[BatchMetrics] {
        &self.batches
    }

    /// Discards all recorded batches and the baseline.
    pub fn reset(&mut self) {
        self.baseline = None;
        self.batches.clear();
    }

    /// Consumes the registry into its batch list.
    pub fn into_batches(self) -> Vec<BatchMetrics> {
        self.batches
    }
}

/// Everything the observability layer collected over one experiment.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Per-batch counter deltas (index 0 is the discarded transient).
    pub batches: Vec<BatchMetrics>,
    /// Cumulative whole-run snapshot at the end.
    pub totals: MetricsSnapshot,
    /// Time-series probe samples (empty unless probes were enabled).
    pub probes: Vec<ProbeSample>,
    /// Engine self-profiling (zeroed unless profiling was enabled).
    pub profile: EngineProfile,
    /// The drop ledger (loss counts per reason, node and traffic
    /// class), when loss accounting was collected.
    pub drops: Option<crate::drop::DropLedger>,
    /// Pre-serialized per-class FCT summary JSON
    /// ([`crate::fct::FctSummary::to_json`]), for open-loop traffic runs.
    pub fct: Option<String>,
}

impl MetricsReport {
    /// Serializes the report as one deterministic JSON object (the
    /// optional `metrics` field of a sweep result row).
    ///
    /// Wall-clock rates are deliberately absent: everything here is a
    /// pure function of the job spec, preserving the store's
    /// byte-determinism across worker counts and machines.
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new()
            .raw("profile", &profile_json(&self.profile))
            .raw("totals", &self.totals.to_json())
            .raw(
                "batches",
                &arr(self.batches.iter().map(BatchMetrics::to_json)),
            )
            .raw("probes", &arr(self.probes.iter().map(ProbeSample::to_json)));
        // Optional sections append after the fixed prefix, so readers
        // pinned to the `profile`-first shape keep working.
        if let Some(drops) = &self.drops {
            obj = obj.raw("drops", &drops.to_json());
        }
        if let Some(fct) = &self.fct {
            obj = obj.raw("fct", fct);
        }
        obj.finish()
    }
}

/// Serializes an [`EngineProfile`] as a JSON object (histogram keys
/// sorted, so output is deterministic).
///
/// Timed sections (e.g. `medium_tick`, `medium_lazy`) are exported as invocation
/// *counts* only: their wall-clock seconds vary across machines, which
/// would break the sweep store's byte-determinism, so seconds stay
/// API-only (`EngineProfile::timed_secs`) for `mwn stats` / `mwn bench`.
pub fn profile_json(p: &EngineProfile) -> String {
    let mut hist = Obj::new();
    for (kind, count) in p.by_kind() {
        hist = hist.u64(kind, count);
    }
    let mut timed = Obj::new();
    for (kind, invocations, _secs) in p.timed() {
        timed = timed.u64(kind, invocations);
    }
    Obj::new()
        .u64("events", p.events_processed())
        .usize("peak_queue", p.peak_queue_depth())
        .raw("by_kind", &hist.finish())
        .raw("timed_counts", &timed.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_ns: u64, accepted: u64, drops: u64, table: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            time: SimTime::from_nanos(t_ns),
            nodes: vec![NodeCounters {
                mac: MacCounters {
                    unicast_accepted: accepted,
                    rts_retry_drops: drops,
                    ..Default::default()
                },
                route_table_size: table,
                ..Default::default()
            }],
            flows: vec![FlowCounters {
                sender: Some(TcpSenderStats {
                    data_packets_sent: accepted,
                    ..Default::default()
                }),
                sink: None,
            }],
        }
    }

    #[test]
    fn registry_deltas_across_batch_boundaries() {
        let mut reg = MetricsRegistry::new();
        reg.begin(snap(0, 10, 1, 3));
        reg.end_batch(snap(1_000, 110, 5, 4));
        reg.end_batch(snap(2_000, 310, 5, 2));

        let b = reg.batches();
        assert_eq!(b.len(), 2);
        // First batch: counters are deltas, gauges are end-of-batch values.
        assert_eq!(b[0].nodes[0].mac.unicast_accepted, 100);
        assert_eq!(b[0].nodes[0].mac.rts_retry_drops, 4);
        assert_eq!(b[0].nodes[0].route_table_size, 4);
        assert_eq!(b[0].flows[0].sender.unwrap().data_packets_sent, 100);
        assert_eq!(b[0].start, SimTime::from_nanos(0));
        assert_eq!(b[0].end, SimTime::from_nanos(1_000));
        // Second batch measures against the first boundary, not the start.
        assert_eq!(b[1].nodes[0].mac.unicast_accepted, 200);
        assert_eq!(b[1].nodes[0].mac.rts_retry_drops, 0);
        assert_eq!(b[1].nodes[0].route_table_size, 2);
        assert!((b[0].drop_probability() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn registry_reset_clears_batches_and_baseline() {
        let mut reg = MetricsRegistry::new();
        reg.begin(snap(0, 0, 0, 0));
        reg.end_batch(snap(1_000, 50, 0, 1));
        assert_eq!(reg.batches().len(), 1);
        reg.reset();
        assert!(reg.batches().is_empty());
        // A fresh begin/end cycle works and measures from the new baseline.
        reg.begin(snap(5_000, 100, 0, 1));
        reg.end_batch(snap(6_000, 160, 0, 1));
        assert_eq!(reg.batches().len(), 1);
        assert_eq!(reg.batches()[0].nodes[0].mac.unicast_accepted, 60);
        assert_eq!(reg.batches()[0].start, SimTime::from_nanos(5_000));
    }

    #[test]
    #[should_panic(expected = "begin before end_batch")]
    fn end_batch_without_begin_panics() {
        MetricsRegistry::new().end_batch(snap(0, 0, 0, 0));
    }

    #[test]
    fn counter_block_roundtrip_sum_and_difference() {
        let a = MacCounters {
            unicast_accepted: 7,
            data_sent: 9,
            ..Default::default()
        };
        let b = MacCounters {
            unicast_accepted: 3,
            data_sent: 4,
            ..Default::default()
        };
        let sum = a.plus(&b);
        assert_eq!(sum.unicast_accepted, 10);
        assert_eq!(sum.minus(&b), a);
        assert_eq!(MacCounters::field_names().len(), sum.values().len());
    }

    #[test]
    fn node_totals_sum_over_nodes() {
        let mut s = snap(0, 5, 0, 2);
        s.nodes.push(NodeCounters {
            mac: MacCounters {
                unicast_accepted: 7,
                ..Default::default()
            },
            route_table_size: 3,
            ..Default::default()
        });
        let t = s.node_totals();
        assert_eq!(t.mac.unicast_accepted, 12);
        assert_eq!(t.route_table_size, 5);
    }

    #[test]
    fn end_batch_tolerates_flow_churn() {
        // Two flows at the baseline, three at the boundary (one born
        // mid-batch), then back to one (two completed and freed).
        let flow = |sent| FlowCounters {
            sender: Some(TcpSenderStats {
                data_packets_sent: sent,
                ..Default::default()
            }),
            sink: None,
        };
        let mut reg = MetricsRegistry::new();
        reg.begin(MetricsSnapshot {
            time: SimTime::ZERO,
            nodes: vec![],
            flows: vec![flow(10), flow(20)],
        });
        reg.end_batch(MetricsSnapshot {
            time: SimTime::from_nanos(1_000),
            nodes: vec![],
            flows: vec![flow(15), flow(26), flow(4)],
        });
        reg.end_batch(MetricsSnapshot {
            time: SimTime::from_nanos(2_000),
            nodes: vec![],
            flows: vec![flow(18)],
        });

        let b = reg.batches();
        assert_eq!(b[0].flows.len(), 3);
        assert_eq!(b[0].flows[0].sender.unwrap().data_packets_sent, 5);
        // Born mid-batch: measured against an empty baseline.
        assert_eq!(b[0].flows[2].sender.unwrap().data_packets_sent, 4);
        assert_eq!(b[1].flows.len(), 3);
        assert_eq!(b[1].flows[0].sender.unwrap().data_packets_sent, 3);
        // Completed mid-batch: no further contribution.
        assert_eq!(b[1].flows[1].sender, None);
    }

    #[test]
    fn minus_saturates_on_slot_reuse() {
        // A freed slot re-occupied by a younger flow makes counters go
        // backwards; the delta clamps to zero instead of underflowing.
        let older = TcpSenderStats {
            data_packets_sent: 100,
            retransmissions: 7,
            ..Default::default()
        };
        let younger = TcpSenderStats {
            data_packets_sent: 3,
            ..Default::default()
        };
        let d = younger.minus(&older);
        assert_eq!(d.data_packets_sent, 0);
        assert_eq!(d.retransmissions, 0);
    }

    #[test]
    fn quantiles_exact_small_n() {
        let mut q = Quantiles::new(16);
        assert_eq!(q.quantile(0.5), None);
        q.record(42.0);
        assert_eq!(q.p50(), Some(42.0));
        assert_eq!(q.p99(), Some(42.0));

        let mut q = Quantiles::new(16);
        for v in [4.0, 1.0, 3.0, 2.0] {
            q.record(v);
        }
        assert!(q.is_exact());
        assert_eq!(q.count(), 4);
        // Linear interpolation between order statistics (type-7):
        // positions 0..3, p50 at 1.5 → 2.5, p95 at 2.85 → 3.85.
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(4.0));
        assert_eq!(q.p50(), Some(2.5));
        assert!((q.p95().unwrap() - 3.85).abs() < 1e-12);
        assert!((q.p99().unwrap() - 3.97).abs() < 1e-12);
    }

    #[test]
    fn quantiles_reservoir_is_deterministic_and_bounded() {
        let feed = |n: u64| {
            let mut q = Quantiles::new(32);
            for i in 0..n {
                // A fixed pseudo-arbitrary sequence, not sorted.
                q.record(((i * 2_654_435_761) % 1_000) as f64);
            }
            q
        };
        let a = feed(10_000);
        let b = feed(10_000);
        assert_eq!(a.count(), 10_000);
        assert!(!a.is_exact());
        assert_eq!(a.samples, b.samples, "same input stream, same reservoir");
        assert!(a.samples.len() <= 32);
        assert!(a.samples.capacity() <= 32, "reservoir never outgrows cap");
        // The subsample still spans the population: quantiles land inside
        // the recorded value range and are ordered.
        let (p50, p95, p99) = (a.p50().unwrap(), a.p95().unwrap(), a.p99().unwrap());
        assert!((0.0..1000.0).contains(&p50));
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn quantiles_skip_non_finite() {
        let mut q = Quantiles::new(8);
        q.record(1.0);
        q.record(f64::NAN);
        q.record(f64::INFINITY);
        q.record(3.0);
        assert_eq!(q.count(), 4);
        assert_eq!(q.p50(), Some(2.0));
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = MetricsReport {
            batches: vec![],
            totals: MetricsSnapshot::empty(SimTime::from_nanos(1_000_000_000)),
            probes: vec![],
            profile: EngineProfile::default(),
            drops: None,
            fct: None,
        };
        assert_eq!(
            report.to_json(),
            r#"{"profile":{"events":0,"peak_queue":0,"by_kind":{},"timed_counts":{}},"totals":{"t_secs":1,"nodes":[],"flows":[]},"batches":[],"probes":[]}"#
        );
    }

    #[test]
    fn report_json_appends_optional_sections_after_fixed_prefix() {
        let report = MetricsReport {
            batches: vec![],
            totals: MetricsSnapshot::empty(SimTime::ZERO),
            probes: vec![],
            profile: EngineProfile::default(),
            drops: Some(crate::drop::DropLedger::new(1, vec!["all".into()])),
            fct: Some(r#"{"classes":[]}"#.into()),
        };
        let json = report.to_json();
        assert!(json.starts_with(r#"{"profile":{"events":0"#));
        assert!(json.contains(r#","drops":{"total":0,"#));
        assert!(json.ends_with(r#""fct":{"classes":[]}}"#));
    }

    #[test]
    fn quantiles_empty_and_single_sample_edges() {
        let q = Quantiles::new(4);
        assert_eq!(q.count(), 0);
        assert!(q.is_exact());
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(q.quantile(p), None);
        }
        let mut q = Quantiles::new(4);
        q.record(7.5);
        // With one sample every quantile is that sample, clamp included.
        for p in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(q.quantile(p), Some(7.5));
        }
    }

    #[test]
    fn quantiles_capacity_boundary_is_exact_then_sampled() {
        let mut q = Quantiles::new(3);
        q.record(1.0);
        q.record(2.0);
        q.record(3.0);
        // Exactly at capacity: still exact, nothing discarded.
        assert!(q.is_exact());
        assert_eq!(q.samples.len(), 3);
        assert_eq!(q.p50(), Some(2.0));
        // One past capacity: the estimator turns sampled, the reservoir
        // stays at capacity, and the count keeps the true total.
        q.record(4.0);
        assert!(!q.is_exact());
        assert_eq!(q.samples.len(), 3);
        assert_eq!(q.count(), 4);
        // Every retained sample came from the input stream.
        for s in &q.samples {
            assert!([1.0, 2.0, 3.0, 4.0].contains(s));
        }
    }

    #[test]
    fn quantiles_all_non_finite_stream_has_no_quantiles() {
        let mut q = Quantiles::new(2);
        q.record(f64::NAN);
        q.record(f64::NEG_INFINITY);
        assert_eq!(q.count(), 2);
        assert_eq!(q.p50(), None);
    }
}
