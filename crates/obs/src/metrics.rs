//! Unified typed metrics: counter blocks per layer, per-node/per-flow
//! snapshots, and batch-boundary deltas.
//!
//! Every protocol layer already keeps a plain counter struct
//! ([`MacCounters`], [`AodvCounters`], [`PhyCounters`], the TCP stats).
//! [`CounterBlock`] gives them one shared shape — named `u64` fields with
//! element-wise `plus`/`minus` — so aggregation, batch deltas and JSON
//! serialization are written once instead of once per struct.
//!
//! A [`MetricsRegistry`] turns whole-network [`MetricsSnapshot`]s taken at
//! batch boundaries into per-batch deltas, reproducing the paper's
//! batch-means methodology for *internal* counters the same way
//! `mwn::experiment` does for goodput.

use mwn_aodv::AodvCounters;
use mwn_mac80211::MacCounters;
use mwn_phy::PhyCounters;
use mwn_sim::profile::EngineProfile;
use mwn_sim::SimTime;
use mwn_tcp::{TcpSenderStats, TcpSinkStats};

use crate::json::{arr, Obj};
use crate::probe::ProbeSample;

/// A block of named monotonic `u64` counters.
///
/// Implemented by each layer's statistics struct so that summation over
/// nodes, batch-boundary deltas and serialization are uniform.
pub trait CounterBlock: Copy {
    /// Short layer tag (`"phy"`, `"mac"`, ...), used as the JSON key.
    const KIND: &'static str;

    /// Field names, in declaration order.
    fn field_names() -> &'static [&'static str];

    /// Field values, in the same order as [`CounterBlock::field_names`].
    fn values(&self) -> Vec<u64>;

    /// Element-wise difference `self - earlier` (counters are monotonic;
    /// callers pass a snapshot taken earlier in the same run).
    fn minus(&self, earlier: &Self) -> Self;

    /// Element-wise sum.
    fn plus(&self, other: &Self) -> Self;

    /// The block as a JSON object with fields in declaration order.
    fn to_json(&self) -> String {
        let mut o = Obj::new();
        for (name, v) in Self::field_names().iter().zip(self.values()) {
            o = o.u64(name, v);
        }
        o.finish()
    }
}

macro_rules! counter_block {
    ($ty:ty, $kind:literal, [$($field:ident),+ $(,)?]) => {
        impl CounterBlock for $ty {
            const KIND: &'static str = $kind;

            fn field_names() -> &'static [&'static str] {
                &[$(stringify!($field)),+]
            }

            fn values(&self) -> Vec<u64> {
                vec![$(self.$field),+]
            }

            fn minus(&self, earlier: &Self) -> Self {
                Self { $($field: self.$field - earlier.$field),+ }
            }

            fn plus(&self, other: &Self) -> Self {
                Self { $($field: self.$field + other.$field),+ }
            }
        }
    };
}

counter_block!(PhyCounters, "phy", [captures, collisions, undecoded]);

counter_block!(
    MacCounters,
    "mac",
    [
        unicast_accepted,
        broadcast_accepted,
        queue_drops,
        rts_retry_drops,
        data_retry_drops,
        unicast_delivered,
        rts_sent,
        data_sent,
        cts_timeouts,
        ack_timeouts,
        duplicates_suppressed,
        early_drops,
    ]
);

counter_block!(
    AodvCounters,
    "aodv",
    [
        false_route_failures,
        rreqs_originated,
        rreqs_forwarded,
        rreps_generated,
        rerrs_sent,
        no_route_drops,
        link_failure_drops,
    ]
);

counter_block!(
    TcpSenderStats,
    "tcp_tx",
    [
        data_packets_sent,
        retransmissions,
        timeouts,
        fast_retransmits,
        dup_acks,
    ]
);

counter_block!(
    TcpSinkStats,
    "tcp_rx",
    [
        delivered,
        acks_sent,
        duplicates,
        out_of_order,
        acks_suppressed
    ]
);

/// One node's counters (all layers) plus point-in-time gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Radio counters (capture, collision, EIFS).
    pub phy: PhyCounters,
    /// 802.11 DCF counters.
    pub mac: MacCounters,
    /// AODV counters (RREQ/RREP/RERR, route breaks, drops).
    pub aodv: AodvCounters,
    /// Gauge: routing-table entries at snapshot time.
    pub route_table_size: u64,
    /// Gauge: interface-queue depth at snapshot time.
    pub ifq_depth: u64,
}

impl NodeCounters {
    /// Counter deltas since `earlier`; gauges keep the *later* (current)
    /// value, since a gauge difference is meaningless.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        NodeCounters {
            phy: self.phy.minus(&earlier.phy),
            mac: self.mac.minus(&earlier.mac),
            aodv: self.aodv.minus(&earlier.aodv),
            route_table_size: self.route_table_size,
            ifq_depth: self.ifq_depth,
        }
    }

    /// Element-wise sum of counters; gauges add too (callers summing over
    /// nodes get totals: total table entries, total queued packets).
    pub fn plus(&self, other: &Self) -> Self {
        NodeCounters {
            phy: self.phy.plus(&other.phy),
            mac: self.mac.plus(&other.mac),
            aodv: self.aodv.plus(&other.aodv),
            route_table_size: self.route_table_size + other.route_table_size,
            ifq_depth: self.ifq_depth + other.ifq_depth,
        }
    }

    fn to_json(self) -> String {
        Obj::new()
            .raw("phy", &self.phy.to_json())
            .raw("mac", &self.mac.to_json())
            .raw("aodv", &self.aodv.to_json())
            .u64("route_table_size", self.route_table_size)
            .u64("ifq_depth", self.ifq_depth)
            .finish()
    }
}

/// One flow's transport counters (`None` at the non-TCP end of UDP flows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCounters {
    /// Sender-side TCP stats.
    pub sender: Option<TcpSenderStats>,
    /// Sink-side TCP stats.
    pub sink: Option<TcpSinkStats>,
}

impl FlowCounters {
    /// Counter deltas since `earlier`.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        FlowCounters {
            sender: match (&self.sender, &earlier.sender) {
                (Some(a), Some(b)) => Some(a.minus(b)),
                (s, _) => *s,
            },
            sink: match (&self.sink, &earlier.sink) {
                (Some(a), Some(b)) => Some(a.minus(b)),
                (s, _) => *s,
            },
        }
    }

    fn to_json(self) -> String {
        Obj::new()
            .raw(
                "sender",
                &self.sender.map_or("null".into(), |s| s.to_json()),
            )
            .raw("sink", &self.sink.map_or("null".into(), |s| s.to_json()))
            .finish()
    }
}

/// The whole network's counters at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken.
    pub time: SimTime,
    /// Per-node counters, indexed by node id.
    pub nodes: Vec<NodeCounters>,
    /// Per-flow transport counters, indexed by flow id.
    pub flows: Vec<FlowCounters>,
}

impl MetricsSnapshot {
    /// A snapshot with no nodes or flows (tests, placeholders).
    pub fn empty(time: SimTime) -> Self {
        MetricsSnapshot {
            time,
            nodes: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Sum of all nodes' counters (gauges sum too).
    pub fn node_totals(&self) -> NodeCounters {
        self.nodes
            .iter()
            .fold(NodeCounters::default(), |acc, n| acc.plus(n))
    }

    fn to_json(&self) -> String {
        Obj::new()
            .f64("t_secs", self.time.as_secs_f64())
            .raw("nodes", &arr(self.nodes.iter().map(|n| n.to_json())))
            .raw("flows", &arr(self.flows.iter().map(|f| f.to_json())))
            .finish()
    }
}

/// Per-node and per-flow counter deltas over one batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Batch start time.
    pub start: SimTime,
    /// Batch end time.
    pub end: SimTime,
    /// Per-node deltas (gauges: value at batch end).
    pub nodes: Vec<NodeCounters>,
    /// Per-flow deltas.
    pub flows: Vec<FlowCounters>,
}

impl BatchMetrics {
    /// Sum of all nodes' deltas.
    pub fn node_totals(&self) -> NodeCounters {
        self.nodes
            .iter()
            .fold(NodeCounters::default(), |acc, n| acc.plus(n))
    }

    /// The paper's link-layer dropping probability over this batch
    /// (Figure 14): contention drops per unicast packet entering service.
    pub fn drop_probability(&self) -> f64 {
        self.node_totals().mac.drop_probability()
    }

    fn to_json(&self) -> String {
        Obj::new()
            .f64("start_secs", self.start.as_secs_f64())
            .f64("end_secs", self.end.as_secs_f64())
            .raw("nodes", &arr(self.nodes.iter().map(|n| n.to_json())))
            .raw("flows", &arr(self.flows.iter().map(|f| f.to_json())))
            .finish()
    }
}

/// Accumulates batch-boundary snapshots into per-batch deltas.
///
/// Call [`MetricsRegistry::begin`] with the run's initial snapshot, then
/// [`MetricsRegistry::end_batch`] at each batch boundary; each call yields
/// one [`BatchMetrics`] covering the interval since the previous boundary.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    baseline: Option<MetricsSnapshot>,
    batches: Vec<BatchMetrics>,
}

impl MetricsRegistry {
    /// An empty registry; call [`MetricsRegistry::begin`] before the first
    /// batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the baseline snapshot the first batch is measured against.
    pub fn begin(&mut self, snapshot: MetricsSnapshot) {
        self.baseline = Some(snapshot);
    }

    /// Closes a batch: records the deltas since the previous boundary and
    /// makes `snapshot` the new baseline.
    ///
    /// # Panics
    ///
    /// Panics if [`MetricsRegistry::begin`] was never called, or if the
    /// snapshot's node/flow shape changed mid-run.
    pub fn end_batch(&mut self, snapshot: MetricsSnapshot) {
        let base = self
            .baseline
            .as_ref()
            .expect("MetricsRegistry::begin before end_batch");
        assert_eq!(base.nodes.len(), snapshot.nodes.len(), "node count changed");
        assert_eq!(base.flows.len(), snapshot.flows.len(), "flow count changed");
        self.batches.push(BatchMetrics {
            start: base.time,
            end: snapshot.time,
            nodes: snapshot
                .nodes
                .iter()
                .zip(&base.nodes)
                .map(|(now, then)| now.delta_since(then))
                .collect(),
            flows: snapshot
                .flows
                .iter()
                .zip(&base.flows)
                .map(|(now, then)| now.delta_since(then))
                .collect(),
        });
        self.baseline = Some(snapshot);
    }

    /// The recorded batch deltas, oldest first.
    pub fn batches(&self) -> &[BatchMetrics] {
        &self.batches
    }

    /// Discards all recorded batches and the baseline.
    pub fn reset(&mut self) {
        self.baseline = None;
        self.batches.clear();
    }

    /// Consumes the registry into its batch list.
    pub fn into_batches(self) -> Vec<BatchMetrics> {
        self.batches
    }
}

/// Everything the observability layer collected over one experiment.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Per-batch counter deltas (index 0 is the discarded transient).
    pub batches: Vec<BatchMetrics>,
    /// Cumulative whole-run snapshot at the end.
    pub totals: MetricsSnapshot,
    /// Time-series probe samples (empty unless probes were enabled).
    pub probes: Vec<ProbeSample>,
    /// Engine self-profiling (zeroed unless profiling was enabled).
    pub profile: EngineProfile,
}

impl MetricsReport {
    /// Serializes the report as one deterministic JSON object (the
    /// optional `metrics` field of a sweep result row).
    ///
    /// Wall-clock rates are deliberately absent: everything here is a
    /// pure function of the job spec, preserving the store's
    /// byte-determinism across worker counts and machines.
    pub fn to_json(&self) -> String {
        Obj::new()
            .raw("profile", &profile_json(&self.profile))
            .raw("totals", &self.totals.to_json())
            .raw(
                "batches",
                &arr(self.batches.iter().map(BatchMetrics::to_json)),
            )
            .raw("probes", &arr(self.probes.iter().map(ProbeSample::to_json)))
            .finish()
    }
}

/// Serializes an [`EngineProfile`] as a JSON object (histogram keys
/// sorted, so output is deterministic).
///
/// Timed sections (e.g. `medium_recompute`) are exported as invocation
/// *counts* only: their wall-clock seconds vary across machines, which
/// would break the sweep store's byte-determinism, so seconds stay
/// API-only (`EngineProfile::timed_secs`) for `mwn stats` / `mwn bench`.
pub fn profile_json(p: &EngineProfile) -> String {
    let mut hist = Obj::new();
    for (kind, count) in p.by_kind() {
        hist = hist.u64(kind, count);
    }
    let mut timed = Obj::new();
    for (kind, invocations, _secs) in p.timed() {
        timed = timed.u64(kind, invocations);
    }
    Obj::new()
        .u64("events", p.events_processed())
        .usize("peak_queue", p.peak_queue_depth())
        .raw("by_kind", &hist.finish())
        .raw("timed_counts", &timed.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_ns: u64, accepted: u64, drops: u64, table: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            time: SimTime::from_nanos(t_ns),
            nodes: vec![NodeCounters {
                mac: MacCounters {
                    unicast_accepted: accepted,
                    rts_retry_drops: drops,
                    ..Default::default()
                },
                route_table_size: table,
                ..Default::default()
            }],
            flows: vec![FlowCounters {
                sender: Some(TcpSenderStats {
                    data_packets_sent: accepted,
                    ..Default::default()
                }),
                sink: None,
            }],
        }
    }

    #[test]
    fn registry_deltas_across_batch_boundaries() {
        let mut reg = MetricsRegistry::new();
        reg.begin(snap(0, 10, 1, 3));
        reg.end_batch(snap(1_000, 110, 5, 4));
        reg.end_batch(snap(2_000, 310, 5, 2));

        let b = reg.batches();
        assert_eq!(b.len(), 2);
        // First batch: counters are deltas, gauges are end-of-batch values.
        assert_eq!(b[0].nodes[0].mac.unicast_accepted, 100);
        assert_eq!(b[0].nodes[0].mac.rts_retry_drops, 4);
        assert_eq!(b[0].nodes[0].route_table_size, 4);
        assert_eq!(b[0].flows[0].sender.unwrap().data_packets_sent, 100);
        assert_eq!(b[0].start, SimTime::from_nanos(0));
        assert_eq!(b[0].end, SimTime::from_nanos(1_000));
        // Second batch measures against the first boundary, not the start.
        assert_eq!(b[1].nodes[0].mac.unicast_accepted, 200);
        assert_eq!(b[1].nodes[0].mac.rts_retry_drops, 0);
        assert_eq!(b[1].nodes[0].route_table_size, 2);
        assert!((b[0].drop_probability() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn registry_reset_clears_batches_and_baseline() {
        let mut reg = MetricsRegistry::new();
        reg.begin(snap(0, 0, 0, 0));
        reg.end_batch(snap(1_000, 50, 0, 1));
        assert_eq!(reg.batches().len(), 1);
        reg.reset();
        assert!(reg.batches().is_empty());
        // A fresh begin/end cycle works and measures from the new baseline.
        reg.begin(snap(5_000, 100, 0, 1));
        reg.end_batch(snap(6_000, 160, 0, 1));
        assert_eq!(reg.batches().len(), 1);
        assert_eq!(reg.batches()[0].nodes[0].mac.unicast_accepted, 60);
        assert_eq!(reg.batches()[0].start, SimTime::from_nanos(5_000));
    }

    #[test]
    #[should_panic(expected = "begin before end_batch")]
    fn end_batch_without_begin_panics() {
        MetricsRegistry::new().end_batch(snap(0, 0, 0, 0));
    }

    #[test]
    fn counter_block_roundtrip_sum_and_difference() {
        let a = MacCounters {
            unicast_accepted: 7,
            data_sent: 9,
            ..Default::default()
        };
        let b = MacCounters {
            unicast_accepted: 3,
            data_sent: 4,
            ..Default::default()
        };
        let sum = a.plus(&b);
        assert_eq!(sum.unicast_accepted, 10);
        assert_eq!(sum.minus(&b), a);
        assert_eq!(MacCounters::field_names().len(), sum.values().len());
    }

    #[test]
    fn node_totals_sum_over_nodes() {
        let mut s = snap(0, 5, 0, 2);
        s.nodes.push(NodeCounters {
            mac: MacCounters {
                unicast_accepted: 7,
                ..Default::default()
            },
            route_table_size: 3,
            ..Default::default()
        });
        let t = s.node_totals();
        assert_eq!(t.mac.unicast_accepted, 12);
        assert_eq!(t.route_table_size, 5);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = MetricsReport {
            batches: vec![],
            totals: MetricsSnapshot::empty(SimTime::from_nanos(1_000_000_000)),
            probes: vec![],
            profile: EngineProfile::default(),
        };
        assert_eq!(
            report.to_json(),
            r#"{"profile":{"events":0,"peak_queue":0,"by_kind":{},"timed_counts":{}},"totals":{"t_secs":1,"nodes":[],"flows":[]},"batches":[],"probes":[]}"#
        );
    }
}
