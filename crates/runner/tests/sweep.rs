//! Tier-1 integration tests for the sweep engine: deterministic output
//! across worker counts, resume semantics, and panic isolation.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use mwn::jobs::{chain_study, JobSpec};
use mwn::{ExperimentScale, RunResults, SimDuration};
use mwn_runner::{run_sweep, simulate, Manifest, SweepOptions};

/// A scale small enough that a 12-job sweep finishes in seconds.
fn tiny() -> ExperimentScale {
    ExperimentScale {
        batch_packets: 60,
        batches: 3,
        deadline: SimDuration::from_secs(600),
    }
}

/// A fixed manifest: wall-clock time is the store's single
/// nondeterministic field, so byte-comparison tests pin it.
fn fixed_manifest(jobs: &[JobSpec], workers: usize) -> Manifest {
    let mut m = Manifest::for_jobs(jobs, workers, "test".into());
    m.wall_clock_secs = 0.0;
    m
}

fn temp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwn-sweep-{}-{name}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("results.jsonl")
}

fn opts(out: &Path, workers: usize, jobs: &[JobSpec]) -> SweepOptions {
    let mut o = SweepOptions::new(out).workers(workers).quiet(true);
    // Same manifest regardless of worker count: determinism tests compare
    // whole files, and `workers` would otherwise differ.
    o.manifest = Some(fixed_manifest(jobs, 1));
    o
}

fn cleanup(out: &Path) {
    if let Some(dir) = out.parent() {
        fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn one_and_four_workers_write_byte_identical_stores() {
    let jobs = chain_study(tiny());
    let out1 = temp_out("det1");
    let out4 = temp_out("det4");

    let s1 = run_sweep(&jobs, &opts(&out1, 1, &jobs), &simulate).expect("1-worker sweep");
    let s4 = run_sweep(&jobs, &opts(&out4, 4, &jobs), &simulate).expect("4-worker sweep");
    assert_eq!(s1.ran, jobs.len());
    assert_eq!(s4.ran, jobs.len());
    assert_eq!(s1.failed, 0);
    assert_eq!(s4.failed, 0);

    let b1 = fs::read(&out1).expect("read 1-worker store");
    let b4 = fs::read(&out4).expect("read 4-worker store");
    assert!(!b1.is_empty());
    assert_eq!(
        b1, b4,
        "results must not depend on worker count or scheduling"
    );

    cleanup(&out1);
    cleanup(&out4);
}

#[test]
fn resume_skips_completed_jobs_and_reuses_their_lines() {
    let jobs = chain_study(tiny());
    let (first_half, rest) = jobs.split_at(jobs.len() / 2);
    let out = temp_out("resume");

    let s = run_sweep(first_half, &opts(&out, 2, &jobs), &simulate).expect("first sweep");
    assert_eq!(s.ran, first_half.len());
    let after_first = fs::read_to_string(&out).expect("read store");

    // Re-running the full suite must execute only the remaining jobs; the
    // executor aborts the test if a completed job is ever re-run.
    let done_keys: Vec<String> = first_half.iter().map(JobSpec::key).collect();
    let must_not_rerun = |spec: &JobSpec| -> RunResults {
        assert!(
            !done_keys.contains(&spec.key()),
            "completed job {} was re-executed on resume",
            spec.canonical()
        );
        simulate(spec)
    };
    let s = run_sweep(&jobs, &opts(&out, 2, &jobs), &must_not_rerun).expect("resumed sweep");
    assert_eq!(s.total, jobs.len());
    assert_eq!(s.skipped, first_half.len());
    assert_eq!(s.ran, rest.len());

    // The carried-over lines are verbatim: every result line of the first
    // store reappears in the final one.
    let finished = fs::read_to_string(&out).expect("read final store");
    for line in after_first
        .lines()
        .filter(|l| l.contains("\"type\":\"result\""))
    {
        assert!(
            finished.contains(line),
            "resume rewrote a completed line:\n{line}"
        );
    }

    // A second full re-run does nothing at all.
    let noop = |spec: &JobSpec| -> RunResults {
        panic!("nothing should run, but {} did", spec.canonical())
    };
    let s = run_sweep(&jobs, &opts(&out, 2, &jobs), &noop).expect("no-op sweep");
    assert_eq!(s.skipped, jobs.len());
    assert_eq!(s.ran, 0);
    assert_eq!(
        fs::read_to_string(&out).expect("read unchanged store"),
        finished
    );

    cleanup(&out);
}

#[test]
fn panicking_job_is_recorded_failed_while_others_complete() {
    let jobs = chain_study(tiny());
    let poison = jobs[2].key();
    let out = temp_out("panic");

    let exec = |spec: &JobSpec| -> RunResults {
        assert!(spec.key() != poison, "injected fault");
        simulate(spec)
    };
    let s = run_sweep(&jobs, &opts(&out, 4, &jobs), &exec).expect("sweep with fault");
    assert_eq!(s.failed, 1);
    assert_eq!(s.ran, jobs.len());

    let text = fs::read_to_string(&out).expect("read store");
    let failed: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"status\":\"failed\""))
        .collect();
    assert_eq!(failed.len(), 1);
    assert!(
        failed[0].contains(&poison),
        "failed line must carry the job key"
    );
    assert!(
        failed[0].contains("injected fault"),
        "failed line must carry the panic message"
    );
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"status\":\"done\""))
            .count(),
        jobs.len() - 1,
        "the other jobs must complete"
    );

    // Resume retries only the failed job.
    let retried = AtomicUsize::new(0);
    let retry = |spec: &JobSpec| -> RunResults {
        retried.fetch_add(1, Ordering::Relaxed);
        assert_eq!(spec.key(), poison, "only the failed job may re-run");
        simulate(spec)
    };
    let s = run_sweep(&jobs, &opts(&out, 2, &jobs), &retry).expect("retry sweep");
    assert_eq!(retried.load(Ordering::Relaxed), 1);
    assert_eq!(s.skipped, jobs.len() - 1);
    assert_eq!(s.failed, 0);
    let text = fs::read_to_string(&out).expect("read retried store");
    assert!(!text.contains("\"status\":\"failed\""));

    cleanup(&out);
}
