//! Live sweep progress on stderr: done/total counts, a wall-clock ETA
//! from the mean completed-job duration, and what every worker is doing.

use std::time::Instant;

/// Tracks and prints sweep progress. All output goes to stderr so result
/// pipelines on stdout stay clean; `quiet` disables printing entirely
/// (used by tests and library callers).
pub struct Progress {
    total: usize,
    skipped: usize,
    done: usize,
    failed: usize,
    start: Instant,
    /// What each worker is running right now (`None` = idle).
    current: Vec<Option<String>>,
    quiet: bool,
}

impl Progress {
    pub fn new(total: usize, skipped: usize, workers: usize, quiet: bool) -> Self {
        let p = Progress {
            total,
            skipped,
            done: 0,
            failed: 0,
            start: Instant::now(),
            current: vec![None; workers.max(1)],
            quiet,
        };
        if !p.quiet {
            eprintln!(
                "sweep: {} job(s), {} already done (resumed), {} worker(s)",
                p.total,
                p.skipped,
                p.current.len()
            );
        }
        p
    }

    pub fn on_start(&mut self, worker: usize, label: &str) {
        if let Some(slot) = self.current.get_mut(worker) {
            *slot = Some(label.to_string());
        }
        if !self.quiet {
            eprintln!("  w{worker} -> {label}");
        }
    }

    pub fn on_finish(&mut self, worker: usize, label: &str, failed: bool) {
        self.done += 1;
        if failed {
            self.failed += 1;
        }
        if let Some(slot) = self.current.get_mut(worker) {
            *slot = None;
        }
        if self.quiet {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let status = if failed { "FAILED" } else { "done" };
        eprintln!(
            "[{}/{}] {label} {status} ({:.1}s elapsed{})",
            self.done,
            self.total,
            elapsed,
            self.eta_note(elapsed),
        );
    }

    fn eta_note(&self, elapsed: f64) -> String {
        if self.done == 0 || self.done >= self.total {
            return String::new();
        }
        let remaining = (self.total - self.done) as f64 * elapsed / self.done as f64;
        format!(", ETA {remaining:.0}s")
    }

    /// One line per busy worker — printed at the end of a run that still
    /// has stragglers, or on demand.
    pub fn worker_state(&self) -> Vec<String> {
        self.current
            .iter()
            .enumerate()
            .map(|(w, job)| match job {
                Some(label) => format!("w{w}: {label}"),
                None => format!("w{w}: idle"),
            })
            .collect()
    }

    pub fn done(&self) -> usize {
        self.done
    }

    pub fn failed(&self) -> usize {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_worker_state_track_events() {
        let mut p = Progress::new(3, 1, 2, true);
        p.on_start(0, "job-a");
        p.on_start(1, "job-b");
        assert_eq!(p.worker_state(), vec!["w0: job-a", "w1: job-b"]);
        p.on_finish(0, "job-a", false);
        p.on_finish(1, "job-b", true);
        assert_eq!(p.done(), 2);
        assert_eq!(p.failed(), 1);
        assert_eq!(p.worker_state(), vec!["w0: idle", "w1: idle"]);
    }

    #[test]
    fn eta_is_empty_at_the_edges() {
        let mut p = Progress::new(2, 0, 1, true);
        assert_eq!(p.eta_note(10.0), "");
        p.on_finish(0, "a", false);
        assert!(p.eta_note(10.0).starts_with(", ETA "));
        p.on_finish(0, "b", false);
        assert_eq!(p.eta_note(10.0), "");
    }
}
