//! A shared-queue worker pool over `std::thread` with panic isolation.
//!
//! Workers pull items off a mutex-guarded queue until it drains, so a
//! slow job never blocks the others behind a static partition. Each item
//! runs under `catch_unwind`: a panicking job is reported as an error
//! string while the worker moves on to the next item, so one crashing
//! simulation cannot take down a sweep.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Mutex;
use std::thread;

/// Progress events emitted while a pool runs, in wall-clock order.
pub enum Event<R> {
    /// Worker `worker` picked up item `index`.
    Started { worker: usize, index: usize },
    /// Worker `worker` finished item `index`. `Err` holds the panic
    /// message if the item's closure panicked.
    Finished {
        worker: usize,
        index: usize,
        result: Result<R, String>,
    },
}

/// Renders a `catch_unwind` payload as a message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `work` over `items` on `workers` threads, streaming [`Event`]s to
/// `on_event` from the calling thread as they arrive.
///
/// `on_event` runs on the caller's thread, so it may do I/O (journal
/// writes, progress printing) without synchronization.
pub fn run<T, R, F, E>(items: Vec<T>, workers: usize, work: F, mut on_event: E)
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
    E: FnMut(Event<R>),
{
    let workers = workers.max(1).min(items.len().max(1));
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = channel::<Event<R>>();

    thread::scope(|s| {
        for worker in 0..workers {
            let tx: Sender<Event<R>> = tx.clone();
            let queue = &queue;
            let work = &work;
            s.spawn(move || loop {
                let item = queue.lock().expect("queue poisoned").pop_front();
                let Some((index, item)) = item else { break };
                if tx.send(Event::Started { worker, index }).is_err() {
                    break;
                }
                let result = catch_unwind(AssertUnwindSafe(|| work(&item))).map_err(panic_message);
                if tx
                    .send(Event::Finished {
                        worker,
                        index,
                        result,
                    })
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);
        for event in rx {
            on_event(event);
        }
    });
}

/// Applies `work` to every item on `workers` threads and returns results
/// in input order. A panicking item yields `Err(message)`.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, work: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut results: Vec<Option<Result<R, String>>> = Vec::new();
    results.resize_with(items.len(), || None);
    run(items, workers, work, |event| {
        if let Event::Finished { index, result, .. } = event {
            results[index] = Some(result);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("pool finished every item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order_across_workers() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 8, |&x| x * x);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &((i as u64) * (i as u64)));
        }
    }

    #[test]
    fn panics_are_isolated_per_item() {
        let out = parallel_map(vec![1u32, 2, 3, 4], 2, |&x| {
            assert!(x != 3, "item three exploded");
            x * 10
        });
        assert_eq!(out[0].as_ref().unwrap(), &10);
        assert_eq!(out[1].as_ref().unwrap(), &20);
        let err = out[2].as_ref().unwrap_err();
        assert!(err.contains("item three exploded"), "got {err:?}");
        assert_eq!(out[3].as_ref().unwrap(), &40);
    }

    #[test]
    fn event_stream_pairs_start_and_finish() {
        let mut started = [false; 10];
        let mut finished = [false; 10];
        run(
            (0..10u32).collect(),
            3,
            |&x| x,
            |event| match event {
                Event::Started { index, .. } => started[index] = true,
                Event::Finished { index, result, .. } => {
                    assert!(started[index], "finish before start for {index}");
                    assert_eq!(result.unwrap() as usize, index);
                    finished[index] = true;
                }
            },
        );
        assert!(finished.iter().all(|&f| f));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let out = parallel_map(vec![5u8], 0, |&x| x + 1);
        assert_eq!(out[0].as_ref().unwrap(), &6);
    }
}
