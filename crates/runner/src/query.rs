//! Read-side of the results store: parse the JSONL rows back into
//! values, filter them, and aggregate replications into report groups.
//!
//! The write side ([`crate::store`]) emits deterministic hand-rolled
//! JSON; this module is the matching hand-rolled reader — a minimal
//! recursive-descent parser over the full JSON grammar, so `mwn report`
//! needs no external dependency and tolerates rows written by older
//! builds (missing `metrics`, `drops` or `fct` sections are simply
//! absent, not errors).

use std::collections::BTreeMap;
use std::path::Path;

/// A parsed JSON value. Object keys keep insertion order (the store
/// writes deterministically, and `mwn report` only looks keys up).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `v.path(&["metrics", "drops", "total"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, empty for non-objects.
    pub fn fields(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(fields) => fields,
            _ => &[],
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Store strings never contain surrogate
                            // pairs; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate at
                    // most 4 bytes — validating the whole remaining
                    // buffer per character would make parsing O(n²).
                    let end = self.bytes.len().min(self.pos + 4);
                    let rest = &self.bytes[self.pos..end];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated prefix")
                        }
                        Err(_) => return Err("invalid UTF-8 in string".into()),
                    };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

/// One `"type":"result"` store row, with the commonly-queried fields
/// lifted out of the parsed value.
#[derive(Debug, Clone)]
pub struct Row {
    /// Content key.
    pub key: String,
    /// Figure-family label.
    pub group: String,
    /// Grid-point label.
    pub point: String,
    /// Canonical spec string (`kind|bw=..|transport|seed=..|scale=..`).
    pub spec: String,
    /// Root seed.
    pub seed: u64,
    /// `"done"` or `"failed"`.
    pub status: String,
    /// The whole parsed row.
    pub json: Json,
}

impl Row {
    /// The scenario token (the spec's first `|` segment), e.g.
    /// `"chain:7"` or `"traffic:20:web:180:l1500"`.
    pub fn scenario(&self) -> &str {
        self.spec.split('|').next().unwrap_or("")
    }

    /// The transport token (the spec's third `|` segment), e.g.
    /// `"newreno"` or `"vegas:2+thin"`.
    pub fn variant(&self) -> &str {
        self.spec.split('|').nth(2).unwrap_or("")
    }

    /// The spec with the seed segment removed: the identity of a
    /// replication group (same cell, different seeds).
    pub fn cell(&self) -> String {
        self.spec
            .split('|')
            .filter(|s| !s.starts_with("seed="))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// Offered-load factor for traffic scenarios (`:lNNN` per-mille
    /// token suffix; 1.0 when absent). `None` for closed-loop kinds.
    pub fn load(&self) -> Option<f64> {
        let token = self.scenario();
        if !token.starts_with("traffic:") {
            return None;
        }
        let per_mille: u32 = token
            .rsplit(':')
            .next()
            .and_then(|last| last.strip_prefix('l'))
            .and_then(|n| n.parse().ok())
            .unwrap_or(1000);
        Some(f64::from(per_mille) / 1000.0)
    }

    /// Mean aggregate goodput over the measured batches, kbit/s.
    pub fn goodput_kbps(&self) -> Option<f64> {
        self.json
            .path(&["aggregate_goodput_kbps", "mean"])?
            .as_f64()
    }

    /// The drop-ledger section, if this row was swept with metrics on a
    /// build that records it.
    pub fn drops(&self) -> Option<&Json> {
        self.json.path(&["metrics", "drops"])
    }

    /// The per-class FCT section (open-loop rows only).
    pub fn fct(&self) -> Option<&Json> {
        self.json.path(&["metrics", "fct"])
    }
}

/// A loaded results store.
#[derive(Debug, Clone, Default)]
pub struct StoreView {
    /// The manifest line, if present.
    pub manifest: Option<Json>,
    /// All intact result rows, in file order.
    pub rows: Vec<Row>,
}

impl StoreView {
    /// Loads a results file (and an interrupted run's journal, if one is
    /// lying next to it), skipping torn lines like the sweep's resume
    /// path does.
    pub fn load(path: &Path) -> Result<StoreView, String> {
        let mut view = StoreView::default();
        let mut seen = std::collections::HashSet::new();
        for p in [path.to_path_buf(), crate::store::journal_path(path)] {
            let text = match std::fs::read_to_string(&p) {
                Ok(t) => t,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(format!("{}: {e}", p.display())),
            };
            for line in text.lines() {
                if !line.ends_with('}') {
                    continue; // torn journal write
                }
                let v = Json::parse(line).map_err(|e| format!("{}: {e}", p.display()))?;
                match v.get("type").and_then(Json::as_str) {
                    Some("manifest") => view.manifest = Some(v),
                    Some("result") => {
                        let field =
                            |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("").to_string();
                        let row = Row {
                            key: field("key"),
                            group: field("group"),
                            point: field("point"),
                            spec: field("spec"),
                            seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
                            status: field("status"),
                            json: v,
                        };
                        if seen.insert(row.key.clone()) {
                            view.rows.push(row);
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(view)
    }

    /// `"status":"done"` rows matching the filter.
    pub fn select(&self, filter: &RowFilter) -> Vec<&Row> {
        self.rows
            .iter()
            .filter(|r| r.status == "done" && filter.matches(r))
            .collect()
    }
}

/// Substring/exact filters for `mwn report`.
#[derive(Debug, Clone, Default)]
pub struct RowFilter {
    /// Substring of the scenario token (e.g. `"chain"`, `"traffic"`).
    pub scenario: Option<String>,
    /// Substring of the transport token (e.g. `"vegas"`, `"+thin"`).
    pub variant: Option<String>,
    /// Exact root seed.
    pub seed: Option<u64>,
}

impl RowFilter {
    pub fn matches(&self, row: &Row) -> bool {
        self.scenario
            .as_deref()
            .is_none_or(|s| row.scenario().contains(s))
            && self
                .variant
                .as_deref()
                .is_none_or(|v| row.variant().contains(v))
            && self.seed.is_none_or(|s| row.seed == s)
    }
}

/// Averaged FCT measures for one traffic class within a group.
#[derive(Debug, Clone, Default)]
pub struct ClassAgg {
    /// Class name.
    pub class: String,
    /// Summed arrivals across replications.
    pub arrivals: u64,
    /// Summed completions across replications.
    pub completions: u64,
    /// Percentiles averaged over the replications that report them
    /// (an approximation — exact pooling would need raw samples, which
    /// the store deliberately does not keep).
    pub fct_mean_secs: Option<f64>,
    pub fct_p50_secs: Option<f64>,
    pub fct_p95_secs: Option<f64>,
    pub fct_p99_secs: Option<f64>,
    pub goodput_p50_kbps: Option<f64>,
}

/// One report group: all replications of one sweep cell.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Replication-group identity (spec minus seed).
    pub cell: String,
    /// Scenario token.
    pub scenario: String,
    /// Transport token.
    pub variant: String,
    /// Offered-load factor (traffic cells only).
    pub load: Option<f64>,
    /// Replications aggregated.
    pub reps: usize,
    /// Aggregate goodput, kbit/s, averaged over replications.
    pub goodput_kbps: Option<f64>,
    /// Drop counts by reason label, summed over replications (empty
    /// when no row carries a ledger).
    pub drop_reasons: BTreeMap<String, u64>,
    /// Total drops summed over replications.
    pub drop_total: u64,
    /// Terminal (custody-ending) drops summed over replications.
    pub drop_terminal: u64,
    /// Per-class drop counts by reason, summed over replications, in
    /// ledger class order; classes that dropped nothing are omitted.
    pub drop_classes: Vec<(String, BTreeMap<String, u64>)>,
    /// Per-class FCT aggregates (empty for closed-loop cells).
    pub fct: Vec<ClassAgg>,
}

/// Groups rows by cell (spec minus seed) and aggregates each group:
/// ledgers are summed, goodput and FCT percentiles averaged. Groups
/// come back sorted by cell string, so output order is deterministic.
pub fn aggregate(rows: &[&Row]) -> Vec<GroupSummary> {
    let mut cells: BTreeMap<String, Vec<&Row>> = BTreeMap::new();
    for row in rows {
        cells.entry(row.cell()).or_default().push(row);
    }
    cells
        .into_iter()
        .map(|(cell, members)| summarize(cell, &members))
        .collect()
}

fn summarize(cell: String, members: &[&Row]) -> GroupSummary {
    let first = members[0];
    let mut drop_reasons = BTreeMap::new();
    let mut drop_classes: Vec<(String, BTreeMap<String, u64>)> = Vec::new();
    let mut drop_total = 0;
    let mut drop_terminal = 0;
    let mut goodputs = Vec::new();
    // class name -> (agg, per-field (sum, count) for averaged options)
    let mut classes: Vec<ClassAgg> = Vec::new();
    let mut class_samples: Vec<[(f64, u32); 5]> = Vec::new();

    for row in members {
        if let Some(g) = row.goodput_kbps() {
            goodputs.push(g);
        }
        if let Some(drops) = row.drops() {
            drop_total += drops.get("total").and_then(Json::as_u64).unwrap_or(0);
            drop_terminal += drops.get("terminal").and_then(Json::as_u64).unwrap_or(0);
            for (reason, n) in drops.get("reasons").map(Json::fields).unwrap_or(&[]) {
                *drop_reasons.entry(reason.clone()).or_insert(0) += n.as_u64().unwrap_or(0);
            }
            for pc in drops.get("per_class").and_then(Json::as_arr).unwrap_or(&[]) {
                let name = pc.get("class").and_then(Json::as_str).unwrap_or("");
                let counts = pc.get("drops").map(Json::fields).unwrap_or(&[]);
                if counts.is_empty() {
                    continue;
                }
                let idx = match drop_classes.iter().position(|(n, _)| n == name) {
                    Some(i) => i,
                    None => {
                        drop_classes.push((name.to_string(), BTreeMap::new()));
                        drop_classes.len() - 1
                    }
                };
                for (reason, n) in counts {
                    *drop_classes[idx].1.entry(reason.clone()).or_insert(0) +=
                        n.as_u64().unwrap_or(0);
                }
            }
        }
        let class_rows = row
            .fct()
            .and_then(|f| f.get("classes"))
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        for c in class_rows {
            let name = c.get("class").and_then(Json::as_str).unwrap_or("");
            let idx = match classes.iter().position(|a| a.class == name) {
                Some(i) => i,
                None => {
                    classes.push(ClassAgg {
                        class: name.to_string(),
                        ..ClassAgg::default()
                    });
                    class_samples.push([(0.0, 0); 5]);
                    classes.len() - 1
                }
            };
            classes[idx].arrivals += c.get("arrivals").and_then(Json::as_u64).unwrap_or(0);
            classes[idx].completions += c.get("completions").and_then(Json::as_u64).unwrap_or(0);
            const FIELDS: [&str; 5] = [
                "fct_mean_secs",
                "fct_p50_secs",
                "fct_p95_secs",
                "fct_p99_secs",
                "goodput_p50_kbps",
            ];
            for (slot, field) in FIELDS.iter().enumerate() {
                if let Some(x) = c.get(field).and_then(Json::as_f64) {
                    class_samples[idx][slot].0 += x;
                    class_samples[idx][slot].1 += 1;
                }
            }
        }
    }

    for (agg, samples) in classes.iter_mut().zip(&class_samples) {
        let avg = |slot: usize| {
            let (sum, n) = samples[slot];
            (n > 0).then(|| sum / f64::from(n))
        };
        agg.fct_mean_secs = avg(0);
        agg.fct_p50_secs = avg(1);
        agg.fct_p95_secs = avg(2);
        agg.fct_p99_secs = avg(3);
        agg.goodput_p50_kbps = avg(4);
    }

    GroupSummary {
        scenario: first.scenario().to_string(),
        variant: first.variant().to_string(),
        load: first.load(),
        cell,
        reps: members.len(),
        goodput_kbps: (!goodputs.is_empty())
            .then(|| goodputs.iter().sum::<f64>() / goodputs.len() as f64),
        drop_reasons,
        drop_classes,
        drop_total,
        drop_terminal,
        fct: classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_store_shapes() {
        let v = Json::parse(
            r#"{"type":"result","key":"ab12","seed":7,"n":-1.5e3,"ok":true,"none":null,
                "arr":[1,2,{"x":"yA\n"}],"empty":{},"earr":[]}"#,
        )
        .unwrap();
        assert_eq!(v.get("key").and_then(Json::as_str), Some("ab12"));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(
            v.path(&["arr"]).and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("arr").unwrap().as_arr().unwrap()[2]
                .get("x")
                .and_then(Json::as_str),
            Some("yA\n")
        );
        assert!(v.get("empty").unwrap().fields().is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":1}{"#).is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
    }

    fn row(spec: &str, seed: u64, extra: &str) -> Row {
        let line = format!(
            r#"{{"type":"result","key":"k{seed}-{spec}","group":"g","point":"p","spec":"{spec}","seed":{seed},"status":"done"{extra}}}"#
        );
        let json = Json::parse(&line).unwrap();
        Row {
            key: format!("k{seed}-{spec}"),
            group: "g".into(),
            point: "p".into(),
            spec: spec.into(),
            seed,
            status: "done".into(),
            json,
        }
    }

    #[test]
    fn cell_strips_seed_and_load_parses() {
        let r = row(
            "traffic:20:web:180:l1500|bw=11000000|newreno|seed=9|scale=1x1x1",
            9,
            "",
        );
        assert_eq!(
            r.cell(),
            "traffic:20:web:180:l1500|bw=11000000|newreno|scale=1x1x1"
        );
        assert_eq!(r.scenario(), "traffic:20:web:180:l1500");
        assert_eq!(r.variant(), "newreno");
        assert_eq!(r.load(), Some(1.5));
        let nominal = row("traffic:20:web:180|bw=1|newreno|seed=1|scale=1x1x1", 1, "");
        assert_eq!(nominal.load(), Some(1.0));
        let chain = row("chain:7|bw=1|newreno|seed=1|scale=1x1x1", 1, "");
        assert_eq!(chain.load(), None);
    }

    #[test]
    fn filter_matches_scenario_variant_and_seed() {
        let r = row("chain:7|bw=2000000|vegas:2+thin|seed=3|scale=1x1x1", 3, "");
        let hit = RowFilter {
            scenario: Some("chain".into()),
            variant: Some("+thin".into()),
            seed: Some(3),
        };
        assert!(hit.matches(&r));
        let miss = RowFilter {
            scenario: Some("grid".into()),
            ..RowFilter::default()
        };
        assert!(!miss.matches(&r));
        assert!(RowFilter::default().matches(&r));
    }

    #[test]
    fn aggregate_sums_ledgers_and_averages_percentiles() {
        let extra = |gp: f64, drops: u64, p50: f64| {
            format!(
                r#","aggregate_goodput_kbps":{{"mean":{gp},"half_width":0}},"metrics":{{"drops":{{"total":{drops},"terminal":{drops},"reasons":{{"ifq_overflow":{drops}}}}},"fct":{{"classes":[{{"class":"web","arrivals":10,"completions":9,"fct_p50_secs":{p50}}}]}}}}"#
            )
        };
        let a = row(
            "traffic:9:web:10|bw=1|newreno|seed=1|scale=1",
            1,
            &extra(100.0, 4, 0.2),
        );
        let b = row(
            "traffic:9:web:10|bw=1|newreno|seed=2|scale=1",
            2,
            &extra(200.0, 6, 0.4),
        );
        let other = row(
            "chain:2|bw=1|newreno|seed=1|scale=1",
            1,
            &extra(50.0, 1, 0.1),
        );
        let refs: Vec<&Row> = vec![&a, &b, &other];
        let groups = aggregate(&refs);
        assert_eq!(groups.len(), 2);
        // BTreeMap order: "chain:2|..." sorts before "traffic:...".
        let chain = &groups[0];
        assert_eq!(chain.scenario, "chain:2");
        assert_eq!(chain.reps, 1);
        let traffic = &groups[1];
        assert_eq!(traffic.reps, 2);
        assert_eq!(traffic.goodput_kbps, Some(150.0));
        assert_eq!(traffic.drop_total, 10);
        assert_eq!(traffic.drop_reasons["ifq_overflow"], 10);
        assert_eq!(traffic.fct.len(), 1);
        assert_eq!(traffic.fct[0].arrivals, 20);
        assert_eq!(traffic.fct[0].completions, 18);
        assert!((traffic.fct[0].fct_p50_secs.unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(traffic.fct[0].fct_p95_secs, None);
    }

    #[test]
    fn rows_without_metrics_still_aggregate() {
        let a = row("chain:2|bw=1|newreno|seed=1|scale=1", 1, "");
        let refs: Vec<&Row> = vec![&a];
        let g = &aggregate(&refs)[0];
        assert_eq!(g.reps, 1);
        assert_eq!(g.goodput_kbps, None);
        assert_eq!(g.drop_total, 0);
        assert!(g.drop_reasons.is_empty() && g.fct.is_empty());
    }
}
