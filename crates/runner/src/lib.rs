//! `mwn-runner` — parallel experiment execution with a persistent,
//! resumable results store.
//!
//! The paper's evaluation is hundreds of independent simulation runs
//! (Section 4: chain, grid and random studies across transports, chain
//! lengths and bandwidths). At paper scale a single run takes minutes,
//! so the suite is hours of CPU time — but every run is a pure function
//! of its [`JobSpec`], which makes the suite embarrassingly parallel and
//! its results cacheable by content key.
//!
//! This crate provides the three pieces:
//!
//! * [`pool`] — a shared-queue `std::thread` worker pool with panic
//!   isolation (one crashing simulation is recorded, not fatal);
//! * [`store`] — an append-only JSONL results store, journaled during
//!   the run and compacted (manifest + result lines sorted by content
//!   key) at completion, so worker count and scheduling never change the
//!   output bytes;
//! * [`run_sweep`] — the driver tying them together, with resume: jobs
//!   whose key already has a `"status":"done"` line are skipped and
//!   their lines carried over verbatim.
//!
//! ```no_run
//! use mwn::jobs::chain_study;
//! use mwn::ExperimentScale;
//! use mwn_runner::{run_sweep, SweepOptions};
//!
//! let jobs = chain_study(ExperimentScale::quick());
//! let opts = SweepOptions::new("results.jsonl").workers(4);
//! let summary = run_sweep(&jobs, &opts, &mwn_runner::simulate).unwrap();
//! eprintln!("{} run, {} resumed, {} failed", summary.ran, summary.skipped, summary.failed);
//! ```

pub use mwn_obs::json;
pub mod pool;
pub mod progress;
pub mod query;
pub mod store;

use std::path::PathBuf;
use std::time::Instant;

use mwn::jobs::JobSpec;
use mwn::RunResults;
use mwn_sim::fxhash::FxHashSet;

pub use store::Manifest;

/// Configuration of one sweep invocation.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Results file (JSONL). Also consulted for resume.
    pub out: PathBuf,
    /// Worker threads. 0 means one per available CPU.
    pub workers: usize,
    /// Suppress progress output (tests, library callers).
    pub quiet: bool,
    /// Overrides the manifest written at completion. `None` derives one
    /// from the job list and measures wall-clock time; tests that
    /// byte-compare whole files inject a fixed manifest here.
    pub manifest: Option<Manifest>,
}

impl SweepOptions {
    pub fn new(out: impl Into<PathBuf>) -> Self {
        SweepOptions {
            out: out.into(),
            workers: 0,
            quiet: false,
            manifest: None,
        }
    }

    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }
}

/// Like [`simulate`], with the observability layer on: each result row
/// gains a `metrics` object (per-batch counter deltas, whole-run totals,
/// engine profile), and the manifest reports total events processed.
pub fn simulate_instrumented(spec: &JobSpec) -> RunResults {
    mwn::experiment::run_instrumented(
        &spec.scenario(),
        spec.scale,
        mwn::ObsConfig {
            metrics: true,
            probe_capacity: 0,
            profile: true,
            audit: false,
            shards: 0,
        },
    )
}

/// What a sweep did, by job count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSummary {
    /// Jobs in the (deduplicated) request.
    pub total: usize,
    /// Jobs skipped because the store already had their result.
    pub skipped: usize,
    /// Jobs executed this invocation.
    pub ran: usize,
    /// Executed jobs that panicked (recorded as `"status":"failed"`).
    pub failed: usize,
}

/// The production executor: runs the job's scenario at its scale.
pub fn simulate(spec: &JobSpec) -> RunResults {
    mwn::experiment::run(&spec.scenario(), spec.scale)
}

/// Worker count used when [`SweepOptions::workers`] is 0.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `jobs` on a worker pool, streaming results into the store at
/// `opts.out`.
///
/// Jobs are deduplicated by content key (first occurrence wins). Jobs
/// whose key already has a completed line in the store — from an earlier
/// invocation or an interrupted run's journal — are not re-executed;
/// their lines are carried into the compacted output verbatim. Failed
/// lines are not carried over, so crashed jobs retry on the next
/// invocation.
///
/// The executor is a parameter so tests can inject panicking or
/// must-not-run behaviors; production callers pass [`simulate`].
pub fn run_sweep(
    jobs: &[JobSpec],
    opts: &SweepOptions,
    executor: &(dyn Fn(&JobSpec) -> RunResults + Sync),
) -> std::io::Result<SweepSummary> {
    let start = Instant::now();
    let workers = if opts.workers == 0 {
        default_workers()
    } else {
        opts.workers
    };

    // Deduplicate by content key, preserving first occurrence.
    let mut seen = FxHashSet::default();
    let jobs: Vec<&JobSpec> = jobs.iter().filter(|j| seen.insert(j.key())).collect();

    // Resume: carry completed lines over, run everything else.
    let done = store::load_done(&opts.out)?;
    let (resumed, pending): (Vec<&JobSpec>, Vec<&JobSpec>) =
        jobs.iter().partition(|j| done.contains_key(&j.key()));
    let mut lines: Vec<String> = resumed.iter().map(|j| done[&j.key()].clone()).collect();

    let total = jobs.len();
    let skipped = resumed.len();
    let labels: Vec<String> = pending
        .iter()
        .map(|j| format!("{} [{}]", j.point, j.group))
        .collect();
    let mut journal = store::Journal::open(&opts.out)?;
    let mut progress = progress::Progress::new(total, skipped, workers, opts.quiet);
    let mut io_error: Option<std::io::Error> = None;
    let mut events_processed = 0u64;

    pool::run(
        pending,
        workers,
        |spec| match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| executor(spec))) {
            Ok(results) => {
                let events = results
                    .metrics
                    .as_ref()
                    .map_or(0, |m| m.profile.events_processed());
                (store::done_line(spec, &results), false, events)
            }
            Err(payload) => (
                store::failed_line(spec, &pool::panic_message(payload)),
                true,
                0,
            ),
        },
        |event| match event {
            pool::Event::Started { worker, index } => {
                progress.on_start(worker, &labels[index]);
            }
            pool::Event::Finished {
                worker,
                index,
                result,
            } => {
                // The executor is already wrapped in catch_unwind, so the
                // pool-level Err arm only fires if line *serialization*
                // panics; fold both into a failed record.
                let (line, failed, events) = match result {
                    Ok(triple) => triple,
                    Err(msg) => (
                        format!("{{\"type\":\"error\",\"detail\":{msg:?}}}"),
                        true,
                        0,
                    ),
                };
                events_processed += events;
                if let Err(e) = journal.append(&line) {
                    io_error.get_or_insert(e);
                }
                progress.on_finish(worker, &labels[index], failed);
                lines.push(line);
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }

    let failed = progress.failed();
    let ran = progress.done();

    let mut manifest = match &opts.manifest {
        Some(m) => m.clone(),
        None => {
            let owned: Vec<JobSpec> = jobs.iter().map(|j| (*j).clone()).collect();
            let mut m = Manifest::for_jobs(&owned, workers, detect_commit());
            m.wall_clock_secs = start.elapsed().as_secs_f64();
            m.events_processed = events_processed;
            m.events_per_sec = if m.wall_clock_secs > 0.0 {
                events_processed as f64 / m.wall_clock_secs
            } else {
                0.0
            };
            m
        }
    };
    manifest.jobs = total;
    store::compact(&opts.out, &manifest, &mut lines)?;
    journal.remove()?;

    if !opts.quiet {
        eprintln!(
            "sweep complete: {ran} ran, {skipped} resumed, {failed} failed -> {}",
            opts.out.display()
        );
    }
    Ok(SweepSummary {
        total,
        skipped,
        ran,
        failed,
    })
}

/// The git commit hash of the working tree, or `"unknown"`.
pub fn detect_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}
