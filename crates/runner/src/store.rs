//! The persistent results store: an append-only JSONL journal during a
//! sweep, compacted at completion into a deterministic results file.
//!
//! File layout after compaction:
//!
//! 1. one manifest line (`"type":"manifest"`) — run metadata;
//! 2. one line per job (`"type":"result"`), sorted by content key, so a
//!    1-worker and an N-worker run of the same sweep write byte-identical
//!    result lines regardless of completion order.
//!
//! During a run, finished jobs are appended to `<out>.journal` and synced
//! line-by-line; a crash loses at most the in-flight jobs. Both the
//! compacted file and a leftover journal are consulted on resume.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use mwn::jobs::JobSpec;
use mwn::{Estimate, RunOutcome, RunResults};
use mwn_sim::fxhash::FxHashMap;

use crate::json::{arr, extract_str_field, Obj};

/// Run metadata written as the first line of every results file.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Git commit the sweep was built from (`"unknown"` outside a repo).
    pub commit: String,
    /// Distinct root seeds of the sweep, sorted.
    pub seeds: Vec<u64>,
    /// The scale token shared by all jobs (`batch_packets x batches x
    /// deadline_ns`), or `"mixed"`.
    pub scale: String,
    /// Number of jobs in the sweep (after deduplication).
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the run in seconds. Nondeterministic (like
    /// the two event-rate fields below); fixed by tests that compare
    /// whole files.
    pub wall_clock_secs: f64,
    /// Simulator events processed across all executed jobs (0 unless the
    /// sweep ran with the observability layer on).
    pub events_processed: u64,
    /// Events per wall-clock second. Nondeterministic; 0 when
    /// `events_processed` is 0.
    pub events_per_sec: f64,
}

impl Manifest {
    /// Derives the deterministic fields from a job list.
    pub fn for_jobs(jobs: &[JobSpec], workers: usize, commit: String) -> Self {
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        let mut scales: Vec<String> = jobs
            .iter()
            .map(|j| {
                format!(
                    "{}x{}x{}",
                    j.scale.batch_packets,
                    j.scale.batches,
                    j.scale.deadline.as_nanos()
                )
            })
            .collect();
        scales.sort();
        scales.dedup();
        let scale = match scales.len() {
            1 => scales.pop().expect("one scale"),
            _ => "mixed".into(),
        };
        Manifest {
            commit,
            seeds,
            scale,
            jobs: jobs.len(),
            workers,
            wall_clock_secs: 0.0,
            events_processed: 0,
            events_per_sec: 0.0,
        }
    }

    pub fn to_line(&self) -> String {
        Obj::new()
            .str("type", "manifest")
            .u64("version", 1)
            .str("commit", &self.commit)
            .str("scale", &self.scale)
            .raw("seeds", &arr(self.seeds.iter().map(u64::to_string)))
            .usize("jobs", self.jobs)
            .usize("workers", self.workers)
            .f64("wall_clock_secs", self.wall_clock_secs)
            .u64("events_processed", self.events_processed)
            .f64("events_per_sec", self.events_per_sec)
            .finish()
    }
}

fn estimate(e: &Estimate) -> String {
    Obj::new()
        .f64("mean", e.mean)
        .f64("half_width", e.half_width)
        .finish()
}

/// Serializes a completed job as one store line (`"status":"done"`).
pub fn done_line(spec: &JobSpec, r: &RunResults) -> String {
    let outcome = match r.outcome {
        RunOutcome::Completed => "completed".to_string(),
        RunOutcome::Truncated { completed_batches } => format!("truncated:{completed_batches}"),
    };
    let flows = arr(r.per_flow.iter().map(|f| {
        Obj::new()
            .u64("flow", u64::from(f.flow.raw()))
            .raw("goodput_kbps", &estimate(&f.goodput_kbps))
            .raw("retx_per_packet", &estimate(&f.retx_per_packet))
            .raw("avg_window", &estimate(&f.avg_window))
            .finish()
    }));
    let mut obj = job_head(spec)
        .str("status", "done")
        .str("outcome", &outcome)
        .raw(
            "aggregate_goodput_kbps",
            &estimate(&r.aggregate_goodput_kbps),
        )
        .raw("fairness", &estimate(&r.fairness))
        .raw("drop_probability", &estimate(&r.drop_probability))
        .u64("false_route_failures", r.false_route_failures)
        .f64(
            "false_route_failures_paper_scale",
            r.false_route_failures_paper_scale,
        )
        .u64("packets_measured", r.packets_measured)
        .f64("measured_secs", r.measured_time.as_secs_f64())
        .f64("total_energy_joules", r.total_energy_joules)
        .f64("energy_per_packet", r.energy_per_packet)
        .raw("flows", &flows);
    // Omitted entirely for uninstrumented runs, so their lines are
    // byte-identical with or without this build.
    if let Some(m) = &r.metrics {
        obj = obj.raw("metrics", &m.to_json());
    }
    obj.finish()
}

/// Serializes a crashed job as one store line (`"status":"failed"`).
pub fn failed_line(spec: &JobSpec, error: &str) -> String {
    job_head(spec)
        .str("status", "failed")
        .str("error", error)
        .finish()
}

fn job_head(spec: &JobSpec) -> Obj {
    Obj::new()
        .str("type", "result")
        .str("key", &spec.key())
        .str("group", &spec.group)
        .str("point", &spec.point)
        .str("spec", &spec.canonical())
        .u64("seed", spec.seed)
}

/// Completed results recovered from a previous run: content key → the
/// verbatim store line.
pub type DoneMap = FxHashMap<String, String>;

/// The journal path used alongside a results file.
pub fn journal_path(out: &Path) -> PathBuf {
    let mut os = out.as_os_str().to_owned();
    os.push(".journal");
    PathBuf::from(os)
}

/// Loads every `"status":"done"` result line from the results file and
/// any leftover journal of an interrupted run. Failed lines are dropped,
/// so their jobs re-run.
pub fn load_done(out: &Path) -> std::io::Result<DoneMap> {
    let mut done = DoneMap::default();
    for path in [out.to_path_buf(), journal_path(out)] {
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for line in text.lines() {
            // A crash mid-append can leave a final line cut off anywhere;
            // every line this store writes ends with `}`, so anything else
            // is a torn write and its job must re-run.
            if !line.ends_with('}') {
                continue;
            }
            if extract_str_field(line, "type").as_deref() != Some("result") {
                continue;
            }
            if extract_str_field(line, "status").as_deref() != Some("done") {
                continue;
            }
            if let Some(key) = extract_str_field(line, "key") {
                done.insert(key, line.to_string());
            }
        }
    }
    Ok(done)
}

/// Line-buffered appender for the crash-safe journal.
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    pub fn open(out: &Path) -> std::io::Result<Journal> {
        let path = journal_path(out);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Appends one line and flushes it to the OS before returning.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// Removes the journal once its contents are compacted.
    pub fn remove(self) -> std::io::Result<()> {
        drop(self.file);
        fs::remove_file(&self.path)
    }
}

/// Writes the final results file: manifest first, then result lines
/// sorted by content key. Replaces `out` atomically (write + rename).
pub fn compact(out: &Path, manifest: &Manifest, lines: &mut [String]) -> std::io::Result<()> {
    lines.sort_by_key(|l| extract_str_field(l, "key").unwrap_or_default());
    let tmp = out.with_extension("tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        writeln!(w, "{}", manifest.to_line())?;
        for line in lines.iter() {
            writeln!(w, "{line}")?;
        }
        w.flush()?;
    }
    fs::rename(&tmp, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn::jobs::chain_study;
    use mwn::ExperimentScale;

    fn sample_job() -> JobSpec {
        chain_study(ExperimentScale::smoke()).remove(0)
    }

    #[test]
    fn manifest_derivation_and_shape() {
        let jobs = chain_study(ExperimentScale::smoke());
        let m = Manifest::for_jobs(&jobs, 4, "abc123".into());
        assert_eq!(m.jobs, jobs.len());
        assert_eq!(m.scale, "120x4x1200000000000");
        assert!(
            m.seeds.windows(2).all(|w| w[0] < w[1]),
            "seeds sorted+deduped"
        );
        let line = m.to_line();
        assert!(line.starts_with(r#"{"type":"manifest","version":1,"commit":"abc123""#));
        assert!(line.contains(r#""workers":4"#));
    }

    #[test]
    fn done_line_metrics_field_present_only_when_collected() {
        let job = sample_job();
        let plain = crate::simulate(&job);
        let line = done_line(&job, &plain);
        assert!(
            !line.contains("\"metrics\""),
            "uninstrumented rows must not grow a metrics field"
        );

        let instrumented = crate::simulate_instrumented(&job);
        let line = done_line(&job, &instrumented);
        assert!(line.contains(r#""metrics":{"profile":{"events":"#));
        assert!(line.contains(r#""batches":[{"start_secs":"#));
        // Deterministic: serializing the same instrumented run twice gives
        // identical bytes.
        assert_eq!(line, done_line(&job, &crate::simulate_instrumented(&job)));
    }

    #[test]
    fn failed_line_carries_key_and_error() {
        let job = sample_job();
        let line = failed_line(&job, "worker panicked: boom");
        assert_eq!(
            extract_str_field(&line, "status").as_deref(),
            Some("failed")
        );
        assert_eq!(
            extract_str_field(&line, "key").as_deref(),
            Some(job.key().as_str())
        );
        assert_eq!(
            extract_str_field(&line, "error").as_deref(),
            Some("worker panicked: boom")
        );
    }

    #[test]
    fn journal_roundtrips_through_load_done() {
        let dir = std::env::temp_dir().join(format!("mwn-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("results.jsonl");
        let _ = fs::remove_file(&out);
        let _ = fs::remove_file(journal_path(&out));

        let job = sample_job();
        let done = job_head(&job).str("status", "done").finish();
        let failed = failed_line(&job, "boom");
        let mut j = Journal::open(&out).unwrap();
        j.append(&done).unwrap();
        j.append(&failed).unwrap();

        let map = load_done(&out).unwrap();
        assert_eq!(map.len(), 1, "failed lines must not count as done");
        assert_eq!(map.get(&job.key()).map(String::as_str), Some(done.as_str()));

        // Compaction sorts and removes the journal.
        let manifest = Manifest::for_jobs(std::slice::from_ref(&job), 1, "t".into());
        let mut lines = vec![done.clone()];
        compact(&out, &manifest, &mut lines).unwrap();
        j.remove().unwrap();
        let text = fs::read_to_string(&out).unwrap();
        let mut it = text.lines();
        assert!(it.next().unwrap().contains(r#""type":"manifest""#));
        assert_eq!(it.next(), Some(done.as_str()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_journal_line_does_not_resume() {
        // A crash can happen mid-`write_all`, cutting the final journal
        // line anywhere — including after enough of it that the key and
        // status fields still parse. Such a torn line must not be treated
        // as a completed job.
        let dir = std::env::temp_dir().join(format!("mwn-store-trunc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("results.jsonl");
        let _ = fs::remove_file(&out);
        let _ = fs::remove_file(journal_path(&out));

        let job = sample_job();
        let done = job_head(&job).str("status", "done").finish();
        let mut j = Journal::open(&out).unwrap();
        j.append(&done).unwrap();

        // Simulate the torn write: a second done-line for another key,
        // cut off before its closing `}` (and with no trailing newline).
        let jobs = chain_study(ExperimentScale::smoke());
        let other = &jobs[1];
        assert_ne!(other.key(), job.key());
        let torn_full = job_head(other).str("status", "done").finish();
        let torn = &torn_full[..torn_full.len() - 1];
        assert!(
            extract_str_field(torn, "key").is_some()
                && extract_str_field(torn, "status").as_deref() == Some("done"),
            "the torn prefix must still look resumable field-wise for the \
             test to prove anything"
        );
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(journal_path(&out))
            .unwrap();
        f.write_all(torn.as_bytes()).unwrap();
        f.flush().unwrap();
        drop(f);

        let map = load_done(&out).unwrap();
        assert_eq!(map.len(), 1, "only the intact line resumes");
        assert!(map.contains_key(&job.key()));
        assert!(
            !map.contains_key(&other.key()),
            "torn line must re-run its job"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
