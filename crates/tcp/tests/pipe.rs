//! Closed-loop transport tests over an ideal, scriptable pipe.
//!
//! A miniature event loop connects a [`TcpSender`] and a [`TcpSink`]
//! through a bottleneck link with configurable service time, propagation
//! delay, queue capacity and scripted losses. This exercises the full
//! congestion-control dynamics — slow start, fast retransmit, NewReno
//! partial ACKs, Vegas convergence — deterministically and without the
//! wireless stack.

use std::collections::{BTreeMap, HashSet, VecDeque};

use mwn_pkt::{Body, FlowId, NodeId, Packet};
use mwn_sim::{SimDuration, SimTime};
use mwn_tcp::{AckPolicy, Flavor, TcpConfig, TcpSender, TcpSink, TransportAction, TransportTimer};

/// The scriptable bottleneck pipe.
struct Pipe {
    now: SimTime,
    sender: TcpSender,
    sink: TcpSink,
    /// One-way propagation delay.
    delay: SimDuration,
    /// Bottleneck service time per data packet (ZERO = infinite rate).
    service: SimDuration,
    /// Bottleneck queue capacity (data direction only).
    queue_capacity: usize,
    /// Data sequence numbers to drop (once each).
    drop_once: HashSet<u64>,
    /// Future arrivals/timers.
    events: BTreeMap<(SimTime, u64), Ev>,
    next_event_id: u64,
    /// Bottleneck state.
    queue: VecDeque<Packet>,
    server_busy: bool,
    /// Outstanding timers (armed time is the key into `events`).
    sender_rtx: Option<(SimTime, u64)>,
    sink_delack: Option<(SimTime, u64)>,
    /// Observations.
    pub dropped_by_queue: u64,
    pub cwnd_samples: Vec<f64>,
}

#[derive(Debug)]
enum Ev {
    /// A data packet finishes service at the bottleneck, heads to sink.
    ServiceDone,
    /// A data packet arrives at the sink.
    DataArrives(Packet),
    /// An ACK arrives at the sender.
    AckArrives(Packet),
    SenderRtx,
    SinkDelack,
}

impl Pipe {
    fn new(flavor: Flavor, policy: AckPolicy, config: TcpConfig) -> Self {
        Pipe {
            now: SimTime::ZERO,
            sender: TcpSender::new(config, flavor, FlowId(0), NodeId(0), NodeId(1), 0),
            sink: TcpSink::new(policy, FlowId(0), NodeId(1), NodeId(0), 1 << 32),
            delay: SimDuration::from_millis(20),
            service: SimDuration::ZERO,
            queue_capacity: usize::MAX,
            drop_once: HashSet::new(),
            events: BTreeMap::new(),
            next_event_id: 0,
            queue: VecDeque::new(),
            server_busy: false,
            sender_rtx: None,
            sink_delack: None,
            dropped_by_queue: 0,
            cwnd_samples: Vec::new(),
        }
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) -> (SimTime, u64) {
        let key = (at, self.next_event_id);
        self.next_event_id += 1;
        self.events.insert(key, ev);
        key
    }

    fn apply_sender(&mut self, actions: Vec<TransportAction>) {
        self.cwnd_samples.push(self.sender.cwnd());
        for a in actions {
            match a {
                TransportAction::SendPacket(p) => self.send_data(p),
                TransportAction::SetTimer {
                    timer: TransportTimer::Rtx,
                    delay,
                } => {
                    if let Some(key) = self.sender_rtx.take() {
                        self.events.remove(&key);
                    }
                    let key = self.schedule(self.now + delay, Ev::SenderRtx);
                    self.sender_rtx = Some(key);
                }
                TransportAction::CancelTimer(TransportTimer::Rtx) => {
                    if let Some(key) = self.sender_rtx.take() {
                        self.events.remove(&key);
                    }
                }
                other => panic!("unexpected sender action {other:?}"),
            }
        }
    }

    fn apply_sink(&mut self, actions: Vec<TransportAction>) {
        for a in actions {
            match a {
                TransportAction::SendPacket(p) => {
                    // ACKs travel the reverse path undisturbed.
                    let at = self.now + self.delay;
                    self.schedule(at, Ev::AckArrives(p));
                }
                TransportAction::SetTimer {
                    timer: TransportTimer::DelayedAck,
                    delay,
                } => {
                    if let Some(key) = self.sink_delack.take() {
                        self.events.remove(&key);
                    }
                    let key = self.schedule(self.now + delay, Ev::SinkDelack);
                    self.sink_delack = Some(key);
                }
                TransportAction::CancelTimer(TransportTimer::DelayedAck) => {
                    if let Some(key) = self.sink_delack.take() {
                        self.events.remove(&key);
                    }
                }
                other => panic!("unexpected sink action {other:?}"),
            }
        }
    }

    /// Data enters the bottleneck (scripted losses apply before queueing).
    fn send_data(&mut self, p: Packet) {
        let Body::Tcp(seg) = &p.body else {
            panic!("non-TCP packet")
        };
        if self.drop_once.remove(&seg.seq) {
            return;
        }
        if self.service.is_zero() {
            let at = self.now + self.delay;
            self.schedule(at, Ev::DataArrives(p));
            return;
        }
        if self.queue.len() >= self.queue_capacity {
            self.dropped_by_queue += 1;
            return;
        }
        self.queue.push_back(p);
        if !self.server_busy {
            self.start_service();
        }
    }

    fn start_service(&mut self) {
        if self.queue.is_empty() {
            self.server_busy = false;
            return;
        }
        self.server_busy = true;
        let done = self.now + self.service;
        self.schedule(done, Ev::ServiceDone);
    }

    fn run_until(&mut self, deadline: SimTime) {
        let mut start = Vec::new();
        self.sender.start(self.now, &mut start);
        self.apply_sender(start);
        while let Some((&(at, id), _)) = self.events.iter().next() {
            if at > deadline {
                break;
            }
            let ev = self.events.remove(&(at, id)).expect("peeked event exists");
            self.now = at;
            match ev {
                Ev::ServiceDone => {
                    let p = self.queue.pop_front().expect("server had a customer");
                    let arrive = self.now + self.delay;
                    self.schedule(arrive, Ev::DataArrives(p));
                    self.server_busy = false;
                    self.start_service();
                }
                Ev::DataArrives(p) => {
                    let Body::Tcp(seg) = &p.body else {
                        unreachable!()
                    };
                    let seq = seg.seq;
                    let mut actions = Vec::new();
                    self.sink.on_data(self.now, seq, &mut actions);
                    self.apply_sink(actions);
                }
                Ev::AckArrives(p) => {
                    let Body::Tcp(seg) = &p.body else {
                        unreachable!()
                    };
                    let ack = seg.ack;
                    let mut actions = Vec::new();
                    self.sender.on_ack(self.now, ack, &mut actions);
                    self.apply_sender(actions);
                }
                Ev::SenderRtx => {
                    self.sender_rtx = None;
                    let mut actions = Vec::new();
                    self.sender.on_rtx_timeout(self.now, &mut actions);
                    self.apply_sender(actions);
                }
                Ev::SinkDelack => {
                    self.sink_delack = None;
                    let mut actions = Vec::new();
                    self.sink.on_delayed_ack_timer(self.now, &mut actions);
                    self.apply_sink(actions);
                }
            }
        }
        self.now = self.now.max(deadline);
    }
}

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[test]
fn lossless_pipe_delivers_in_order_without_retransmissions() {
    let mut pipe = Pipe::new(
        Flavor::NewReno,
        AckPolicy::EveryPacket,
        TcpConfig::default(),
    );
    pipe.run_until(secs(10));
    let st = pipe.sender.stats();
    assert_eq!(st.retransmissions, 0, "no losses, no retransmissions");
    assert_eq!(st.timeouts, 0);
    assert!(
        pipe.sink.stats().delivered > 1000,
        "10 s of 40 ms RTTs must move >1000 packets"
    );
    assert_eq!(pipe.sink.stats().duplicates, 0);
}

#[test]
fn newreno_slow_start_reaches_receiver_window() {
    let mut pipe = Pipe::new(
        Flavor::NewReno,
        AckPolicy::EveryPacket,
        TcpConfig::default(),
    );
    pipe.run_until(secs(5));
    // Without losses cwnd must climb to and then sit at Wmax = 64.
    assert_eq!(pipe.sender.window(), 64);
    let max = pipe.cwnd_samples.iter().cloned().fold(0.0, f64::max);
    assert!(max <= 64.0 + 1e-9, "cwnd {max} exceeded Wmax");
}

#[test]
fn single_loss_recovered_by_fast_retransmit() {
    let mut pipe = Pipe::new(
        Flavor::NewReno,
        AckPolicy::EveryPacket,
        TcpConfig::default(),
    );
    pipe.drop_once.insert(50);
    pipe.run_until(secs(10));
    let st = pipe.sender.stats();
    assert_eq!(
        st.timeouts, 0,
        "a single loss must not need a coarse timeout"
    );
    assert!(st.fast_retransmits >= 1);
    assert!(
        st.retransmissions <= 3,
        "one hole should need ~1 retransmission, got {}",
        st.retransmissions
    );
    // The stream is complete: everything up to the sender's ack point
    // arrived in order.
    assert_eq!(pipe.sink.stats().delivered, pipe.sender.acked());
}

#[test]
fn newreno_burst_loss_repaired_by_partial_acks() {
    let mut pipe = Pipe::new(
        Flavor::NewReno,
        AckPolicy::EveryPacket,
        TcpConfig::default(),
    );
    for seq in [80u64, 81, 82] {
        pipe.drop_once.insert(seq);
    }
    pipe.run_until(secs(20));
    let st = pipe.sender.stats();
    assert!(
        pipe.sink.stats().delivered > 500,
        "connection must keep flowing after the burst"
    );
    assert!(st.retransmissions >= 3, "each hole needs a retransmission");
    assert_eq!(pipe.sink.stats().delivered, pipe.sender.acked());
}

#[test]
fn whole_window_loss_needs_timeout_and_recovers() {
    let mut pipe = Pipe::new(
        Flavor::NewReno,
        AckPolicy::EveryPacket,
        TcpConfig::default(),
    );
    for seq in 100..180u64 {
        pipe.drop_once.insert(seq);
    }
    pipe.run_until(secs(30));
    let st = pipe.sender.stats();
    assert!(
        st.timeouts >= 1,
        "losing a whole window forces a coarse timeout"
    );
    assert!(
        pipe.sink.stats().delivered > 1000,
        "flow must recover after the timeout"
    );
    assert_eq!(pipe.sink.stats().delivered, pipe.sender.acked());
}

#[test]
fn vegas_converges_to_small_window_on_bottleneck() {
    let mut pipe = Pipe::new(Flavor::Vegas, AckPolicy::EveryPacket, TcpConfig::default());
    pipe.service = SimDuration::from_millis(10); // 100 packets/s bottleneck
    pipe.queue_capacity = 1000;
    pipe.run_until(secs(60));
    let st = pipe.sender.stats();
    assert_eq!(
        st.timeouts, 0,
        "Vegas must not blow up the bottleneck queue"
    );
    assert_eq!(pipe.dropped_by_queue, 0);
    // Steady-state window: small, stable band (diff between alpha and
    // beta implies ~2-6 packets over this bottleneck).
    let tail = &pipe.cwnd_samples[pipe.cwnd_samples.len() / 2..];
    let max = tail.iter().cloned().fold(0.0f64, f64::max);
    let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max < 12.0, "Vegas steady-state window {max} too large");
    assert!(
        max - min <= 3.0,
        "Vegas window oscillates too much: [{min}, {max}]"
    );
    // Goodput ≈ bottleneck rate: 100 packets/s for ~58 s of steady state.
    let delivered = pipe.sink.stats().delivered;
    assert!(
        (4500..=6000).contains(&delivered),
        "expected ≈100 pkt/s through the bottleneck, delivered {delivered}"
    );
}

#[test]
fn newreno_fills_bottleneck_queue_where_vegas_does_not() {
    let run = |flavor| {
        let mut pipe = Pipe::new(flavor, AckPolicy::EveryPacket, TcpConfig::default());
        pipe.service = SimDuration::from_millis(10);
        pipe.queue_capacity = 50;
        pipe.run_until(secs(60));
        let tail = &pipe.cwnd_samples[pipe.cwnd_samples.len() / 2..];
        let avg = tail.iter().sum::<f64>() / tail.len() as f64;
        (avg, pipe.dropped_by_queue)
    };
    let (vegas_w, vegas_drops) = run(Flavor::Vegas);
    let (newreno_w, newreno_drops) = run(Flavor::NewReno);
    assert!(
        newreno_w > 2.0 * vegas_w,
        "NewReno avg window {newreno_w:.1} should dwarf Vegas' {vegas_w:.1}"
    );
    assert!(newreno_drops > 0, "NewReno must provoke queue drops");
    assert_eq!(vegas_drops, 0, "Vegas must not overflow the queue");
}

#[test]
fn ack_thinning_sink_keeps_the_flow_moving() {
    let mut pipe = Pipe::new(Flavor::NewReno, AckPolicy::Thinning, TcpConfig::default());
    pipe.run_until(secs(10));
    let delivered = pipe.sink.stats().delivered;
    let acks = pipe.sink.stats().acks_sent;
    assert!(
        delivered > 800,
        "thinning must not stall the flow: {delivered}"
    );
    assert!(
        (acks as f64) < delivered as f64 / 3.0,
        "thinning should send ~1 ACK per 4 packets: {acks} ACKs for {delivered} packets"
    );
    assert_eq!(pipe.sender.stats().timeouts, 0);
}

#[test]
fn vegas_with_thinning_still_converges() {
    let mut pipe = Pipe::new(Flavor::Vegas, AckPolicy::Thinning, TcpConfig::default());
    pipe.service = SimDuration::from_millis(10);
    pipe.queue_capacity = 100;
    pipe.run_until(secs(60));
    assert_eq!(pipe.dropped_by_queue, 0);
    let delivered = pipe.sink.stats().delivered;
    assert!(delivered > 3500, "Vegas+thinning too slow: {delivered}");
}

#[test]
fn max_window_variant_caps_inflight() {
    let mut pipe = Pipe::new(
        Flavor::NewReno,
        AckPolicy::EveryPacket,
        TcpConfig::paper(2).with_max_window(3),
    );
    pipe.run_until(secs(10));
    let max = pipe.cwnd_samples.iter().cloned().fold(0.0f64, f64::max);
    // cwnd may grow internally, but the *effective* window stays at 3.
    assert_eq!(pipe.sender.window(), 3);
    // ~3 packets per 40 ms RTT = 75/s.
    let delivered = pipe.sink.stats().delivered;
    assert!(
        (600..=800).contains(&delivered),
        "MaxWin=3 over 40 ms RTT should deliver ~750 in 10 s, got {delivered}"
    );
    let _ = max;
}
