//! The TCP sender: common send engine plus the NewReno and Vegas
//! congestion-control flavors.

use mwn_pkt::{Body, FlowId, NodeId, Packet, TcpSegment};
use mwn_sim::{FxHashMap, SimDuration, SimTime};

use crate::config::TcpConfig;
use crate::rto::RtoEstimator;
use crate::{TransportAction, TransportTimer};

/// Congestion-control flavor of a [`TcpSender`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Reactive, loss-driven congestion control: slow start, AIMD
    /// congestion avoidance, fast retransmit after 3 duplicate ACKs, and
    /// NewReno partial-ACK recovery.
    NewReno,
    /// Classic Reno: fast retransmit and fast recovery, but a partial ACK
    /// ends recovery immediately (each further hole in the same window
    /// usually costs a coarse timeout). Provided for the
    /// four-way-comparison extension (cf. Xu & Saadawi, WCMC 2002).
    Reno,
    /// Tahoe: fast retransmit but no fast recovery — every loss, however
    /// detected, restarts slow start from one packet.
    Tahoe,
    /// Proactive, delay-driven congestion control: once per RTT compares
    /// expected (`W/baseRTT`) and actual (`W/RTT`) throughput and keeps
    /// `diff = (W/baseRTT − W/RTT)·baseRTT` between α and β; slow start
    /// doubles only every other RTT and exits when `diff > γ`; duplicate
    /// ACKs trigger fine-grained (sub-3-dupack) retransmission checks.
    Vegas,
}

/// Sender-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpSenderStats {
    /// Data packets handed to the network, including retransmissions.
    pub data_packets_sent: u64,
    /// Retransmitted data packets (the paper's transport-layer
    /// retransmission measure).
    pub retransmissions: u64,
    /// Coarse retransmission timeouts.
    pub timeouts: u64,
    /// Fast retransmissions (3 dupacks, or Vegas fine-grained checks).
    pub fast_retransmits: u64,
    /// Duplicate ACKs received.
    pub dup_acks: u64,
}

#[derive(Debug, Clone, Copy)]
struct Sent {
    last_sent: SimTime,
    retransmitted: bool,
}

#[derive(Debug, Clone)]
struct VegasState {
    /// Minimum RTT observed (seconds).
    base_rtt: Option<f64>,
    /// Fine-grained smoothed RTT and deviation (seconds).
    fine_srtt: Option<f64>,
    fine_var: f64,
    /// Most recent RTT sample (seconds).
    last_rtt: Option<f64>,
    /// The per-RTT window adjustment runs when this sequence is acked.
    epoch_marker: u64,
    /// Slow start doubles the window only every other RTT.
    ss_grow: bool,
    in_slow_start: bool,
    /// At most one multiplicative decrease per RTT.
    last_cut: Option<SimTime>,
    /// After a retransmission, the next one or two fresh ACKs trigger an
    /// expiry check on the (new) first unacked packet.
    post_retx_checks: u32,
}

impl VegasState {
    fn new() -> Self {
        VegasState {
            base_rtt: None,
            fine_srtt: None,
            fine_var: 0.0,
            last_rtt: None,
            epoch_marker: 0,
            ss_grow: true,
            in_slow_start: true,
            last_cut: None,
            post_retx_checks: 0,
        }
    }

    /// Fine-grained retransmission deadline (seconds).
    fn fine_timeout(&self) -> Option<f64> {
        self.fine_srtt.map(|s| (s + 4.0 * self.fine_var).max(0.01))
    }

    fn fine_sample(&mut self, rtt: f64) {
        self.base_rtt = Some(self.base_rtt.map_or(rtt, |b| b.min(rtt)));
        self.last_rtt = Some(rtt);
        match self.fine_srtt {
            None => {
                self.fine_srtt = Some(rtt);
                self.fine_var = rtt / 2.0;
            }
            Some(s) => {
                self.fine_var = 0.75 * self.fine_var + 0.25 * (s - rtt).abs();
                self.fine_srtt = Some(0.875 * s + 0.125 * rtt);
            }
        }
    }
}

#[derive(Debug, Clone)]
enum FlavorState {
    NewReno,
    Reno,
    Tahoe,
    Vegas(VegasState),
}

/// A packet-granularity TCP sender with an unbounded (FTP) backlog.
///
/// Drive it with [`TcpSender::start`], [`TcpSender::on_ack`] and
/// [`TcpSender::on_rtx_timeout`]; every input appends the requested
/// effects to a caller-owned action buffer (hot paths reuse one buffer
/// instead of allocating per event).
///
/// # Example
///
/// ```
/// use mwn_pkt::{FlowId, NodeId};
/// use mwn_sim::{FxHashMap, SimTime};
/// use mwn_tcp::{Flavor, TcpConfig, TcpSender, TransportAction};
///
/// let mut tx = TcpSender::new(TcpConfig::default(), Flavor::NewReno,
///                             FlowId(0), NodeId(0), NodeId(3), 0);
/// let mut actions = Vec::new();
/// tx.start(SimTime::ZERO, &mut actions);
/// // Initial window is 1 packet: one send plus the retransmit timer.
/// assert!(matches!(actions[0], TransportAction::SendPacket(_)));
/// assert_eq!(tx.cwnd(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TcpSender {
    config: TcpConfig,
    flavor: FlavorState,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    next_uid: u64,
    /// Next sequence number to send.
    t_seqno: u64,
    /// Packets cumulatively acknowledged (`highest_ack + 1`).
    acked: u64,
    /// App-limited transfer size in packets; `None` is an unbounded FTP
    /// backlog (the classic persistent-flow behaviour).
    budget: Option<u64>,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    sent: FxHashMap<u64, Sent>,
    rto: RtoEstimator,
    rtx_armed: bool,
    /// ELFN standby: the routing layer reported the path down; the window
    /// and timers are frozen and only periodic probes go out.
    frozen: bool,
    saved_cwnd: f64,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Creates a sender for `flow` from `src` to `dst`. `uid_base`
    /// namespaces the packet uids this sender allocates.
    pub fn new(
        config: TcpConfig,
        flavor: Flavor,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        uid_base: u64,
    ) -> Self {
        let flavor = match flavor {
            Flavor::NewReno => FlavorState::NewReno,
            Flavor::Reno => FlavorState::Reno,
            Flavor::Tahoe => FlavorState::Tahoe,
            Flavor::Vegas => FlavorState::Vegas(VegasState::new()),
        };
        TcpSender {
            flavor,
            flow,
            src,
            dst,
            next_uid: uid_base,
            t_seqno: 0,
            acked: 0,
            budget: None,
            cwnd: f64::from(config.winit),
            ssthresh: f64::from(config.wmax),
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            sent: FxHashMap::default(),
            rto: RtoEstimator::new(
                config.tick,
                config.min_rto,
                config.initial_rto,
                config.max_rto,
            ),
            rtx_armed: false,
            frozen: false,
            saved_cwnd: 0.0,
            stats: TcpSenderStats::default(),
            config,
        }
    }

    /// Current congestion window in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// The effective send window: `min(⌊cwnd⌋, Wmax)`, at least 1.
    pub fn window(&self) -> u64 {
        (self.cwnd.floor() as u64).clamp(1, u64::from(self.config.wmax))
    }

    /// Packets cumulatively acknowledged so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Limits the transfer to `packets` data packets (clamped to at least
    /// one): the sender never opens sequence space past the budget, and
    /// [`is_complete`](Self::is_complete) turns true when the last packet
    /// is cumulatively acknowledged — at which point the window is empty
    /// and the retransmission timer has cancelled itself, so a finite
    /// flow closes on its last ACK with no extra action variant.
    pub fn set_budget(&mut self, packets: u64) {
        self.budget = Some(packets.max(1));
    }

    /// The configured transfer size, if this is a finite flow.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// `true` once a finite flow's whole budget is acknowledged. Always
    /// `false` for unbounded (persistent) senders.
    pub fn is_complete(&self) -> bool {
        self.budget.is_some_and(|b| self.acked >= b)
    }

    /// Sender statistics.
    pub fn stats(&self) -> &TcpSenderStats {
        &self.stats
    }

    /// The coarse-grained smoothed RTT estimate, if a sample exists yet.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rto.srtt()
    }

    /// Vegas' congestion signal `diff = W·(1 − baseRTT/RTT)` in packets,
    /// available once both RTT estimates exist (`None` on the reactive
    /// flavors).
    pub fn vegas_diff(&self) -> Option<f64> {
        match &self.flavor {
            FlavorState::Vegas(v) => {
                let (base, rtt) = (v.base_rtt?, v.last_rtt?);
                if rtt <= 0.0 {
                    // Degenerate zero-RTT sample: no queueing delay can be
                    // inferred, so the signal is zero (not 0/0 = NaN).
                    return Some(0.0);
                }
                Some(self.cwnd * (1.0 - base / rtt))
            }
            _ => None,
        }
    }

    /// `true` while operating in slow start (for the paper's observation
    /// that NewReno spends >40 % of long-chain connections in slow start).
    pub fn in_slow_start(&self) -> bool {
        match &self.flavor {
            FlavorState::NewReno | FlavorState::Reno | FlavorState::Tahoe => {
                self.cwnd < self.ssthresh && !self.in_recovery
            }
            FlavorState::Vegas(v) => v.in_slow_start,
        }
    }

    /// Opens the connection: fills the initial window.
    pub fn start(&mut self, now: SimTime, out: &mut Vec<TransportAction>) {
        self.send_window(now, out);
        self.update_rtx_timer(out);
    }

    /// A cumulative ACK arrived (`ackno` as carried in the segment;
    /// [`TcpSegment::NO_ACK`] means "nothing received yet").
    pub fn on_ack(&mut self, now: SimTime, ackno: u64, out: &mut Vec<TransportAction>) {
        if self.frozen {
            // A probe made it through and back: the route is restored.
            self.thaw(out);
        }
        let ack_count = if ackno == TcpSegment::NO_ACK {
            0
        } else {
            ackno + 1
        };
        if ack_count > self.acked {
            self.handle_new_ack(now, ack_count, out);
        } else if self.t_seqno > self.acked {
            self.handle_dupack(now, out);
        }
        self.send_window(now, out);
        self.update_rtx_timer(out);
    }

    /// `true` while an ELFN route-failure notice has the sender frozen.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// ELFN: the routing layer reports the path to the destination is
    /// down. The sender freezes its window and retransmission state and
    /// probes periodically; the ACK of a probe thaws it
    /// (Holland & Vaidya's explicit link failure notification).
    pub fn on_route_failure(&mut self, _now: SimTime, out: &mut Vec<TransportAction>) {
        if self.frozen {
            return;
        }
        self.frozen = true;
        self.saved_cwnd = self.cwnd;
        if self.rtx_armed {
            self.rtx_armed = false;
            out.push(TransportAction::CancelTimer(TransportTimer::Rtx));
        }
        out.push(TransportAction::SetTimer {
            timer: TransportTimer::Probe,
            delay: self.config.probe_interval,
        });
    }

    /// The ELFN probe timer fired: retransmit the first unacked packet
    /// (which also re-triggers route discovery) and re-arm.
    pub fn on_probe_timer(&mut self, now: SimTime, out: &mut Vec<TransportAction>) {
        if !self.frozen {
            return; // stale
        }
        if self.acked < self.t_seqno {
            let seq = self.acked;
            self.send_seq(now, seq, out);
        }
        out.push(TransportAction::SetTimer {
            timer: TransportTimer::Probe,
            delay: self.config.probe_interval,
        });
    }

    /// Thaws the connection after a probe was acknowledged: the window is
    /// restored to its pre-failure value (the route change says nothing
    /// about congestion).
    fn thaw(&mut self, actions: &mut Vec<TransportAction>) {
        self.frozen = false;
        self.cwnd = self.saved_cwnd.max(1.0);
        self.dupacks = 0;
        self.in_recovery = false;
        actions.push(TransportAction::CancelTimer(TransportTimer::Probe));
    }

    /// The retransmission timer fired.
    pub fn on_rtx_timeout(&mut self, now: SimTime, out: &mut Vec<TransportAction>) {
        self.rtx_armed = false;
        if self.frozen || self.acked >= self.t_seqno {
            return; // frozen (ELFN standby) or nothing outstanding
        }
        self.stats.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = f64::from(self.config.winit);
        self.dupacks = 0;
        self.in_recovery = false;
        if let FlavorState::Vegas(v) = &mut self.flavor {
            v.in_slow_start = true;
            v.ss_grow = true;
            v.epoch_marker = self.acked;
            v.last_cut = None;
            v.post_retx_checks = 0;
        }
        self.rto.backoff();
        // Go-back-N, as in ns-2: rewind and let slow start resend.
        self.t_seqno = self.acked;
        self.send_window(now, out);
        self.update_rtx_timer(out);
    }

    // ---- internals -----------------------------------------------------

    fn handle_new_ack(&mut self, now: SimTime, ack_count: u64, actions: &mut Vec<TransportAction>) {
        let newly = ack_count - self.acked;
        let acked_seq = ack_count - 1;

        // Karn's rule: sample RTT only for never-retransmitted packets.
        if let Some(info) = self.sent.get(&acked_seq) {
            if !info.retransmitted {
                let rtt = now.saturating_duration_since(info.last_sent);
                self.rto.sample(rtt);
                if let FlavorState::Vegas(v) = &mut self.flavor {
                    v.fine_sample(rtt.as_secs_f64());
                }
            }
        }
        for seq in self.acked..ack_count {
            self.sent.remove(&seq);
        }
        self.acked = ack_count;

        match &mut self.flavor {
            FlavorState::NewReno => {
                if self.in_recovery {
                    if ack_count > self.recover {
                        // Full ACK: recovery ends.
                        self.in_recovery = false;
                        self.dupacks = 0;
                        self.cwnd = self.ssthresh.max(1.0);
                    } else {
                        // Partial ACK: retransmit the next hole, deflate.
                        self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                        self.dupacks = 0;
                        let seq = self.acked;
                        self.stats.fast_retransmits += 1;
                        self.send_seq(now, seq, actions);
                    }
                } else {
                    self.dupacks = 0;
                    self.reactive_open_window();
                }
            }
            FlavorState::Reno => {
                if self.in_recovery {
                    // Classic Reno: any new ACK deflates and ends
                    // recovery; remaining holes must be found again.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh.max(1.0);
                }
                self.dupacks = 0;
                self.reactive_open_window();
            }
            FlavorState::Tahoe => {
                self.dupacks = 0;
                self.reactive_open_window();
            }
            FlavorState::Vegas(_) => {
                self.dupacks = 0;
                self.vegas_new_ack(now, actions);
            }
        }
    }

    /// The ceiling window growth clamps `cwnd` to. Normally `wmax`; the
    /// `fault_cwnd_overshoot` checker hook relaxes it to `4 × wmax`.
    fn wmax_cap(&self) -> f64 {
        let cap = f64::from(self.config.wmax);
        if self.config.fault_cwnd_overshoot {
            cap * 4.0
        } else {
            cap
        }
    }

    /// Slow start / congestion avoidance opening shared by the reactive
    /// (Tahoe/Reno/NewReno) flavors: +1 per ACK event below `ssthresh`,
    /// +1/cwnd above.
    fn reactive_open_window(&mut self) {
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
        self.cwnd = self.cwnd.min(self.wmax_cap());
    }

    fn vegas_new_ack(&mut self, now: SimTime, actions: &mut Vec<TransportAction>) {
        // Post-retransmission expiry check on the next unacked packet
        // (catches multiple losses in one window without a coarse timeout).
        let mut retransmit_next = false;
        if let FlavorState::Vegas(v) = &mut self.flavor {
            if v.post_retx_checks > 0 {
                v.post_retx_checks -= 1;
                if let (Some(timeout), Some(info)) = (v.fine_timeout(), self.sent.get(&self.acked))
                {
                    let waited = now.saturating_duration_since(info.last_sent).as_secs_f64();
                    if waited > timeout {
                        retransmit_next = true;
                    }
                }
            }
        }
        if retransmit_next {
            let seq = self.acked;
            self.stats.fast_retransmits += 1;
            self.send_seq(now, seq, actions);
            self.vegas_cut(now);
        }

        // Once-per-RTT window adjustment.
        let cap = self.wmax_cap();
        let FlavorState::Vegas(v) = &mut self.flavor else {
            unreachable!("vegas_new_ack on non-Vegas flavor");
        };
        if self.acked > v.epoch_marker {
            if let (Some(base), Some(rtt)) = (v.base_rtt, v.last_rtt) {
                let diff = self.cwnd * (1.0 - base / rtt);
                if v.in_slow_start {
                    if diff > f64::from(self.config.gamma) {
                        // Exit slow start with a 1/8 reduction.
                        v.in_slow_start = false;
                        self.cwnd = (self.cwnd * 7.0 / 8.0).max(2.0);
                    } else {
                        v.ss_grow = !v.ss_grow;
                    }
                } else if diff < f64::from(self.config.alpha) {
                    self.cwnd += 1.0;
                } else if diff > f64::from(self.config.beta) {
                    self.cwnd = (self.cwnd - 1.0).max(2.0);
                }
                self.cwnd = self.cwnd.min(cap);
            }
            v.epoch_marker = self.t_seqno;
        }
        // Slow start growth: +1 per ACK event, but only in growing RTTs,
        // so the window doubles every *other* round trip.
        if v.in_slow_start && v.ss_grow {
            self.cwnd = (self.cwnd + 1.0).min(cap);
        }
    }

    fn handle_dupack(&mut self, now: SimTime, actions: &mut Vec<TransportAction>) {
        self.dupacks += 1;
        self.stats.dup_acks += 1;
        match &mut self.flavor {
            FlavorState::NewReno | FlavorState::Reno => {
                if self.in_recovery {
                    // Window inflation while the hole is being repaired.
                    self.cwnd = (self.cwnd + 1.0).min(f64::from(self.config.wmax) + 3.0);
                } else if self.dupacks == 3 {
                    self.ssthresh = (self.cwnd / 2.0).max(2.0);
                    self.in_recovery = true;
                    self.recover = self.t_seqno.saturating_sub(1);
                    let seq = self.acked;
                    self.stats.fast_retransmits += 1;
                    self.send_seq(now, seq, actions);
                    self.cwnd = self.ssthresh + 3.0;
                }
            }
            FlavorState::Tahoe => {
                if self.dupacks == 3 && !self.in_recovery {
                    // Fast retransmit, then back to slow start from 1.
                    self.ssthresh = (self.cwnd / 2.0).max(2.0);
                    self.cwnd = f64::from(self.config.winit);
                    let seq = self.acked;
                    self.stats.fast_retransmits += 1;
                    self.send_seq(now, seq, actions);
                    // Go-back-N like a timeout, without the RTO backoff.
                    self.t_seqno = self.acked + 1;
                }
            }
            FlavorState::Vegas(v) => {
                // Fine-grained check on the first three dupacks: if the
                // first unacked packet is older than the fine timeout,
                // retransmit without waiting for the third dupack.
                let mut retransmit = false;
                if self.dupacks <= 3 {
                    if let (Some(timeout), Some(info)) =
                        (v.fine_timeout(), self.sent.get(&self.acked))
                    {
                        let waited = now.saturating_duration_since(info.last_sent).as_secs_f64();
                        if waited > timeout {
                            retransmit = true;
                        }
                    }
                }
                // Standard third-dupack fast retransmit as a fallback;
                // skipped when the fine check just resent this hole (its
                // `last_sent` is then recent).
                if self.dupacks == 3 && !retransmit {
                    let recently_resent = self.sent.get(&self.acked).is_some_and(|info| {
                        info.retransmitted
                            && v.fine_timeout().is_some_and(|t| {
                                now.saturating_duration_since(info.last_sent).as_secs_f64() < t
                            })
                    });
                    if !recently_resent {
                        retransmit = true;
                    }
                }
                if retransmit {
                    if let FlavorState::Vegas(v) = &mut self.flavor {
                        v.post_retx_checks = 2;
                    }
                    let seq = self.acked;
                    self.stats.fast_retransmits += 1;
                    self.send_seq(now, seq, actions);
                    self.vegas_cut(now);
                }
            }
        }
    }

    /// Vegas multiplicative decrease, at most once per RTT.
    fn vegas_cut(&mut self, now: SimTime) {
        let FlavorState::Vegas(v) = &mut self.flavor else {
            return;
        };
        let rtt = v.fine_srtt.unwrap_or(0.1);
        let recently = v
            .last_cut
            .is_some_and(|t| now.saturating_duration_since(t).as_secs_f64() < rtt);
        if !recently {
            self.cwnd = (self.cwnd * 0.75).max(2.0);
            v.last_cut = Some(now);
            v.in_slow_start = false;
        }
    }

    /// Fills the window with new packets, stopping at the app-limited
    /// budget when one is set.
    fn send_window(&mut self, now: SimTime, actions: &mut Vec<TransportAction>) {
        let limit = self.budget.unwrap_or(u64::MAX);
        while self.t_seqno < (self.acked + self.window()).min(limit) {
            let seq = self.t_seqno;
            self.t_seqno += 1;
            self.send_seq(now, seq, actions);
        }
    }

    /// Transmits one data packet (new or retransmission).
    fn send_seq(&mut self, now: SimTime, seq: u64, actions: &mut Vec<TransportAction>) {
        let uid = self.next_uid;
        self.next_uid += 1;
        let entry = self.sent.entry(seq);
        let is_retx = matches!(entry, std::collections::hash_map::Entry::Occupied(_));
        let info = entry.or_insert(Sent {
            last_sent: now,
            retransmitted: false,
        });
        if is_retx {
            info.retransmitted = true;
            self.stats.retransmissions += 1;
        }
        info.last_sent = now;
        self.stats.data_packets_sent += 1;
        let packet = Packet::new(
            uid,
            self.src,
            self.dst,
            Body::Tcp(TcpSegment::data(self.flow, seq)),
        );
        actions.push(TransportAction::SendPacket(packet));
    }

    fn update_rtx_timer(&mut self, actions: &mut Vec<TransportAction>) {
        if self.t_seqno > self.acked {
            actions.push(TransportAction::SetTimer {
                timer: TransportTimer::Rtx,
                delay: self.rto.current(),
            });
            self.rtx_armed = true;
        } else if self.rtx_armed {
            actions.push(TransportAction::CancelTimer(TransportTimer::Rtx));
            self.rtx_armed = false;
        }
    }
}

/// Test shim for the out-param API: `act!(s.method(args...))` calls the
/// method with a fresh action buffer appended and returns the buffer.
#[cfg(test)]
macro_rules! act {
    ($m:ident.$meth:ident($($arg:expr),* $(,)?)) => {{
        let mut out = Vec::new();
        $m.$meth($($arg,)* &mut out);
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_sim::SimDuration;
    use proptest::prelude::*;

    fn sender(flavor: Flavor) -> TcpSender {
        TcpSender::new(
            TcpConfig::default(),
            flavor,
            FlowId(0),
            NodeId(0),
            NodeId(5),
            0,
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sent_seqs(actions: &[TransportAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                TransportAction::SendPacket(p) => match &p.body {
                    Body::Tcp(seg) if seg.is_data() => Some(seg.seq),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_window_is_one() {
        let mut s = sender(Flavor::NewReno);
        let a = act!(s.start(t(0)));
        assert_eq!(sent_seqs(&a), vec![0]);
        assert!(a.iter().any(|x| matches!(
            x,
            TransportAction::SetTimer {
                timer: TransportTimer::Rtx,
                ..
            }
        )));
    }

    #[test]
    fn newreno_slow_start_doubles_per_rtt() {
        let mut s = sender(Flavor::NewReno);
        act!(s.start(t(0)));
        // ACK packet 0: cwnd 2, sends 1 and 2.
        let a = act!(s.on_ack(t(100), 0));
        assert_eq!(s.cwnd(), 2.0);
        assert_eq!(sent_seqs(&a), vec![1, 2]);
        // ACK 1, 2: cwnd 4.
        act!(s.on_ack(t(200), 1));
        let a = act!(s.on_ack(t(200), 2));
        assert_eq!(s.cwnd(), 4.0);
        assert_eq!(sent_seqs(&a), vec![5, 6]);
        assert!(s.in_slow_start());
    }

    #[test]
    fn newreno_congestion_avoidance_is_linear() {
        let mut s = sender(Flavor::NewReno);
        s.ssthresh = 2.0;
        s.cwnd = 2.0;
        act!(s.start(t(0)));
        act!(s.on_ack(t(100), 0));
        assert_eq!(s.cwnd(), 2.5);
        act!(s.on_ack(t(100), 1));
        assert_eq!(s.cwnd(), 2.9);
        assert!(!s.in_slow_start());
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = sender(Flavor::NewReno);
        s.cwnd = 8.0;
        s.ssthresh = 8.0; // congestion avoidance
        act!(s.start(t(0))); // sends 0..8
        act!(s.on_ack(t(100), 0)); // acked=1
                                   // Packet 1 lost; dupacks for 0.
        act!(s.on_ack(t(110), 0));
        let a = act!(s.on_ack(t(111), 0));
        assert!(sent_seqs(&a).is_empty());
        let a = act!(s.on_ack(t(112), 0)); // 3rd dupack
        assert_eq!(sent_seqs(&a), vec![1], "retransmits the hole");
        assert_eq!(s.stats().fast_retransmits, 1);
        assert_eq!(s.stats().retransmissions, 1);
        assert!(s.in_recovery);
        // ssthresh = cwnd/2 (cwnd was ~8.x), cwnd = ssthresh+3.
        assert!(s.ssthresh >= 4.0 && s.ssthresh < 4.2);
        assert!(s.cwnd() >= 7.0);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = sender(Flavor::NewReno);
        s.cwnd = 8.0;
        s.ssthresh = 8.0;
        act!(s.start(t(0))); // 0..8 out
        act!(s.on_ack(t(100), 0));
        for _ in 0..3 {
            act!(s.on_ack(t(110), 0));
        }
        assert!(s.in_recovery);
        // Partial ACK up to 2 (packet 3 also lost).
        let a = act!(s.on_ack(t(200), 2));
        assert_eq!(sent_seqs(&a), vec![3]);
        assert!(s.in_recovery, "stays in recovery until recover is passed");
        // Full ACK ends recovery and deflates to ssthresh.
        act!(s.on_ack(t(300), 8));
        assert!(!s.in_recovery);
        assert_eq!(s.cwnd(), s.ssthresh);
    }

    #[test]
    fn timeout_goes_back_n_with_window_one() {
        let mut s = sender(Flavor::NewReno);
        s.cwnd = 8.0;
        act!(s.start(t(0))); // 0..8 out
        let a = act!(s.on_rtx_timeout(t(1000)));
        assert_eq!(sent_seqs(&a), vec![0], "go-back-N resends first unacked");
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(s.stats().retransmissions, 1);
        assert!(s.ssthresh >= 2.0);
    }

    #[test]
    fn timeout_with_nothing_outstanding_is_stale() {
        // An FTP sender always has data outstanding once started, so the
        // stale path only applies before the connection opens.
        let mut s = sender(Flavor::NewReno);
        let a = act!(s.on_rtx_timeout(t(2000)));
        assert!(a.is_empty());
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let mut s = sender(Flavor::NewReno);
        act!(s.start(t(0)));
        act!(s.on_rtx_timeout(t(1000))); // packet 0 retransmitted
        let rto_before = s.rto.current();
        act!(s.on_ack(t(1100), 0)); // ack of a retransmitted packet: no sample
                                    // Backoff not cleared by a (non-)sample: RTO still backed off.
        assert_eq!(s.rto.current(), rto_before);
    }

    #[test]
    fn window_capped_by_wmax() {
        let mut s = TcpSender::new(
            TcpConfig::paper(2).with_max_window(3),
            Flavor::NewReno,
            FlowId(0),
            NodeId(0),
            NodeId(5),
            0,
        );
        s.cwnd = 50.0;
        let a = act!(s.start(t(0)));
        assert_eq!(sent_seqs(&a), vec![0, 1, 2], "MaxWin=3 limits the burst");
        assert_eq!(s.window(), 3);
    }

    #[test]
    fn vegas_increases_window_when_diff_below_alpha() {
        let mut s = sender(Flavor::Vegas);
        // Leave slow start first.
        if let FlavorState::Vegas(v) = &mut s.flavor {
            v.in_slow_start = false;
        }
        s.cwnd = 4.0;
        act!(s.start(t(0)));
        // RTT == baseRTT: diff = 0 < alpha -> +1 per RTT.
        act!(s.on_ack(t(100), 0)); // first sample sets base; epoch marker passes
        let w1 = s.cwnd();
        act!(s.on_ack(t(200), 1));
        act!(s.on_ack(t(200), 2));
        act!(s.on_ack(t(200), 3));
        // Only one adjustment per RTT epoch.
        assert!(s.cwnd() <= w1 + 1.0 + 1e-9);
        assert!(s.cwnd() > 4.0);
    }

    #[test]
    fn vegas_decreases_window_when_diff_above_beta() {
        let mut s = sender(Flavor::Vegas);
        if let FlavorState::Vegas(v) = &mut s.flavor {
            v.in_slow_start = false;
            v.base_rtt = Some(0.050);
        }
        s.cwnd = 10.0;
        act!(s.start(t(0))); // sends 0..10
                             // RTT = 100 ms vs base 50 ms: diff = 10·(1-0.5) = 5 > β=2 -> -1.
        act!(s.on_ack(t(100), 0));
        act!(s.on_ack(t(200), 1)); // epoch boundary crossed with high RTT
        assert!(s.cwnd() < 10.0);
    }

    #[test]
    fn vegas_slow_start_exits_on_gamma() {
        let mut s = sender(Flavor::Vegas);
        s.cwnd = 8.0;
        act!(s.start(t(0)));
        if let FlavorState::Vegas(v) = &mut s.flavor {
            v.base_rtt = Some(0.050);
        }
        assert!(s.in_slow_start());
        // RTT doubled: diff = 8·(1−0.5) = 4 > γ=2 -> exit with 7/8 cut.
        act!(s.on_ack(t(100), 0));
        act!(s.on_ack(t(200), 1));
        assert!(!s.in_slow_start());
        assert!(s.cwnd() <= 8.0 * 7.0 / 8.0 + 1.0);
    }

    #[test]
    fn vegas_fine_grained_retransmit_on_first_dupack() {
        let mut s = sender(Flavor::Vegas);
        s.cwnd = 6.0;
        act!(s.start(t(0))); // 0..6 out at t=0
        act!(s.on_ack(t(50), 0)); // sample: fine_srtt = 50 ms
                                  // Much later, a single dupack arrives: packet 1 is long expired.
        let a = act!(s.on_ack(t(500), 0));
        assert_eq!(
            sent_seqs(&a),
            vec![1],
            "fine-grained check fires on 1st dupack"
        );
        assert_eq!(s.stats().fast_retransmits, 1);
        // Window cut once.
        assert!(s.cwnd() <= 6.0 * 0.75 + 1e-9);
        // Second dupack immediately after: packet 1 was just resent, no
        // second retransmission, no second cut.
        let cw = s.cwnd();
        let a = act!(s.on_ack(t(501), 0));
        assert!(sent_seqs(&a).is_empty());
        assert_eq!(s.cwnd(), cw);
    }

    #[test]
    fn vegas_third_dupack_fast_retransmit_when_not_expired() {
        let mut s = sender(Flavor::Vegas);
        s.cwnd = 6.0;
        act!(s.start(t(0)));
        act!(s.on_ack(t(100), 0)); // fine_srtt 100 ms
                                   // Three quick dupacks well within the fine timeout.
        act!(s.on_ack(t(110), 0));
        act!(s.on_ack(t(112), 0));
        let a = act!(s.on_ack(t(114), 0));
        assert_eq!(sent_seqs(&a), vec![1]);
    }

    #[test]
    fn no_ack_sentinel_counts_as_dupack() {
        let mut s = sender(Flavor::NewReno);
        s.cwnd = 5.0;
        act!(s.start(t(0))); // 0..5 out
                             // Receiver got 1,2 out of order but never 0: acks NO_ACK.
        act!(s.on_ack(t(100), TcpSegment::NO_ACK));
        act!(s.on_ack(t(101), TcpSegment::NO_ACK));
        let a = act!(s.on_ack(t(102), TcpSegment::NO_ACK));
        assert_eq!(
            sent_seqs(&a),
            vec![0],
            "fast retransmit of the very first packet"
        );
    }

    #[test]
    fn rtx_timer_cancelled_when_all_acked() {
        let mut s = sender(Flavor::NewReno);
        act!(s.start(t(0)));
        // Prevent new data from keeping the window full by capping wmax.
        s.config.wmax = 1;
        let a = act!(s.on_ack(t(100), 0));
        // One new packet (seq 1) goes out; ack it too.
        assert_eq!(sent_seqs(&a), vec![1]);
        let a = act!(s.on_ack(t(200), 1));
        // Window limit 1: seq 2 sent, timer re-armed (still outstanding).
        assert!(a
            .iter()
            .any(|x| matches!(x, TransportAction::SetTimer { .. })));
    }

    #[test]
    fn budget_caps_sequence_space_and_completes_on_last_ack() {
        let mut s = sender(Flavor::NewReno);
        s.cwnd = 8.0;
        s.set_budget(3);
        assert!(!s.is_complete());
        let a = act!(s.start(t(0)));
        // Window would allow 8 packets; the budget stops at 3.
        assert_eq!(sent_seqs(&a), vec![0, 1, 2]);
        act!(s.on_ack(t(100), 0));
        act!(s.on_ack(t(110), 1));
        assert!(!s.is_complete());
        let a = act!(s.on_ack(t(120), 2));
        assert!(s.is_complete(), "complete once the whole budget is acked");
        assert!(sent_seqs(&a).is_empty(), "no data past the budget");
        // Close-on-last-ACK: nothing outstanding, so the retransmission
        // timer cancels itself on the final ACK.
        assert!(a
            .iter()
            .any(|x| matches!(x, TransportAction::CancelTimer(TransportTimer::Rtx))));
        assert_eq!(s.stats().data_packets_sent, 3);
    }

    #[test]
    fn budget_survives_timeout_recovery() {
        let mut s = sender(Flavor::NewReno);
        s.cwnd = 4.0;
        s.set_budget(2);
        act!(s.start(t(0))); // sends 0, 1
        let a = act!(s.on_rtx_timeout(t(1000)));
        assert_eq!(sent_seqs(&a), vec![0], "go-back-N from the first hole");
        act!(s.on_ack(t(1100), 0));
        let a = act!(s.on_ack(t(1200), 1));
        assert!(s.is_complete());
        assert!(sent_seqs(&a).is_empty());
        // Retransmissions never push past the budget.
        assert!(s.stats().data_packets_sent >= 3);
        act!(s.on_rtx_timeout(t(5000)));
        assert_eq!(s.stats().timeouts, 1, "no spurious timeout after close");
    }

    #[test]
    fn unbounded_sender_never_completes() {
        let mut s = sender(Flavor::NewReno);
        act!(s.start(t(0)));
        act!(s.on_ack(t(100), 0));
        assert_eq!(s.budget(), None);
        assert!(!s.is_complete());
    }

    #[test]
    fn zero_budget_clamps_to_one_packet() {
        let mut s = sender(Flavor::NewReno);
        s.set_budget(0);
        assert_eq!(s.budget(), Some(1));
        let a = act!(s.start(t(0)));
        assert_eq!(sent_seqs(&a), vec![0]);
        act!(s.on_ack(t(100), 0));
        assert!(s.is_complete());
    }

    #[test]
    fn retransmission_counter_tracks_all_resends() {
        let mut s = sender(Flavor::NewReno);
        s.cwnd = 4.0;
        act!(s.start(t(0)));
        act!(s.on_rtx_timeout(t(1000)));
        act!(s.on_rtx_timeout(t(3000)));
        assert_eq!(s.stats().timeouts, 2);
        assert_eq!(s.stats().retransmissions, 2);
        assert_eq!(s.stats().data_packets_sent, 6);
    }

    #[test]
    fn vegas_diff_none_until_first_sample() {
        let mut s = sender(Flavor::Vegas);
        assert_eq!(s.vegas_diff(), None, "no RTT estimates yet");
        act!(s.start(t(0)));
        assert_eq!(s.vegas_diff(), None, "sending alone yields no sample");
        act!(s.on_ack(t(100), 0));
        // First sample sets base == last, so diff is exactly zero.
        assert_eq!(s.vegas_diff(), Some(0.0));
    }

    #[test]
    fn vegas_diff_none_on_reactive_flavors() {
        let mut s = sender(Flavor::NewReno);
        act!(s.start(t(0)));
        act!(s.on_ack(t(100), 0));
        assert_eq!(s.vegas_diff(), None);
    }

    #[test]
    fn vegas_diff_zero_rtt_is_zero_not_nan() {
        let mut s = sender(Flavor::Vegas);
        act!(s.start(t(0)));
        // The ACK arrives at the send instant: rtt sample is exactly zero.
        act!(s.on_ack(t(0), 0));
        let diff = s.vegas_diff().expect("both estimates exist");
        assert!(diff.is_finite(), "0/0 must not leak out as NaN");
        assert_eq!(diff, 0.0);
        // Follow-up zero-RTT acks drive the once-per-RTT adjustment with
        // the same degenerate estimates: no panic, window stays sane.
        act!(s.on_ack(t(0), 1));
        act!(s.on_ack(t(0), 2));
        assert!(s.cwnd() >= 1.0);
        assert!(s.cwnd() <= f64::from(s.config.wmax));
    }

    #[test]
    fn vegas_diff_unchanged_by_quick_dupack() {
        let mut s = sender(Flavor::Vegas);
        s.cwnd = 6.0;
        act!(s.start(t(0)));
        if let FlavorState::Vegas(v) = &mut s.flavor {
            v.in_slow_start = false;
            v.base_rtt = Some(0.050);
        }
        act!(s.on_ack(t(100), 0)); // last_rtt = 100 ms, base 50 ms
        let before = s.vegas_diff().expect("estimates exist");
        assert!(before > 0.0);
        // A dupack well inside the fine timeout: no retransmit, no cut,
        // and — crucially — no RTT sample (Karn), so diff is untouched.
        act!(s.on_ack(t(110), 0));
        assert_eq!(s.vegas_diff(), Some(before));
    }

    #[test]
    fn vegas_diff_scales_with_expiry_cut_on_dupack() {
        let mut s = sender(Flavor::Vegas);
        s.cwnd = 6.0;
        act!(s.start(t(0)));
        if let FlavorState::Vegas(v) = &mut s.flavor {
            v.in_slow_start = false;
        }
        act!(s.on_ack(t(50), 0)); // fine_srtt = base = last = 50 ms
        if let FlavorState::Vegas(v) = &mut s.flavor {
            v.base_rtt = Some(0.025); // pretend an earlier faster RTT
        }
        let w_before = s.cwnd();
        let before = s.vegas_diff().expect("estimates exist");
        assert!(before > 0.0);
        // A dupack long after the fine timeout triggers the expiry
        // retransmit and its window cut; diff = W·(1 − base/last) must
        // shrink by exactly the same factor, since the RTT estimates see
        // no new sample on a dupack (Karn).
        act!(s.on_ack(t(500), 0));
        let after = s.vegas_diff().expect("estimates survive the cut");
        assert!(s.cwnd() < w_before);
        assert!((after - before * s.cwnd() / w_before).abs() < 1e-9);
        assert!(after < before);
    }

    proptest! {
        /// Whatever ACK sequence arrives, the sender never panics and its
        /// core invariants hold.
        #[test]
        fn sender_invariants_under_random_acks(
            flavor_vegas: bool,
            acks in proptest::collection::vec((0u64..40, 1u64..2000), 1..120),
        ) {
            let flavor = if flavor_vegas { Flavor::Vegas } else { Flavor::NewReno };
            let mut s = sender(flavor);
            let mut now = SimTime::ZERO;
            act!(s.start(now));
            for (ackno, dt) in acks {
                now += SimDuration::from_millis(dt);
                if dt % 7 == 0 {
                    act!(s.on_rtx_timeout(now));
                } else {
                    act!(s.on_ack(now, ackno));
                }
                prop_assert!(s.acked <= s.t_seqno);
                prop_assert!(s.cwnd() >= 1.0);
                prop_assert!(s.window() <= u64::from(s.config.wmax));
                prop_assert!(s.stats().retransmissions <= s.stats().data_packets_sent);
            }
        }
    }
}

#[cfg(test)]
mod reactive_flavor_tests {
    use super::*;
    use mwn_sim::SimDuration;

    fn sender(flavor: Flavor) -> TcpSender {
        TcpSender::new(
            TcpConfig::default(),
            flavor,
            FlowId(0),
            NodeId(0),
            NodeId(5),
            0,
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sent_seqs(actions: &[TransportAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                TransportAction::SendPacket(p) => match &p.body {
                    Body::Tcp(seg) if seg.is_data() => Some(seg.seq),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tahoe_fast_retransmit_restarts_slow_start() {
        let mut s = sender(Flavor::Tahoe);
        s.cwnd = 8.0;
        s.ssthresh = 8.0;
        act!(s.start(t(0))); // 0..8 out
        act!(s.on_ack(t(100), 0));
        act!(s.on_ack(t(110), 0));
        act!(s.on_ack(t(111), 0));
        let a = act!(s.on_ack(t(112), 0)); // 3rd dupack
        assert_eq!(sent_seqs(&a), vec![1], "Tahoe retransmits the hole");
        assert_eq!(s.cwnd(), 1.0, "Tahoe collapses to the initial window");
        assert!(s.ssthresh >= 4.0);
        assert!(!s.in_recovery, "Tahoe has no fast recovery");
    }

    #[test]
    fn reno_partial_ack_exits_recovery_without_retransmit() {
        let mut s = sender(Flavor::Reno);
        s.cwnd = 8.0;
        s.ssthresh = 8.0;
        act!(s.start(t(0))); // 0..8 out
        act!(s.on_ack(t(100), 0));
        for _ in 0..3 {
            act!(s.on_ack(t(110), 0));
        }
        assert!(s.in_recovery);
        // Partial ACK (packets 3.. still missing): Reno deflates and
        // leaves recovery WITHOUT retransmitting the next hole.
        let a = act!(s.on_ack(t(200), 2));
        assert!(
            sent_seqs(&a).iter().all(|&q| q > 8),
            "no hole retransmission: {a:?}"
        );
        assert!(!s.in_recovery);
        // Deflated to ssthresh, plus at most one CA increment for this ACK.
        assert!(s.cwnd() >= s.ssthresh && s.cwnd() <= s.ssthresh + 1.0);
    }

    #[test]
    fn reno_single_loss_behaves_like_newreno() {
        for flavor in [Flavor::Reno, Flavor::NewReno] {
            let mut s = sender(flavor);
            s.cwnd = 8.0;
            s.ssthresh = 8.0;
            act!(s.start(t(0)));
            act!(s.on_ack(t(100), 0));
            for _ in 0..3 {
                act!(s.on_ack(t(110), 0));
            }
            assert!(s.in_recovery, "{flavor:?}");
            // Full ACK: identical exit (Reno may add one CA increment).
            act!(s.on_ack(t(200), 8));
            assert!(!s.in_recovery, "{flavor:?}");
            assert!(
                s.cwnd() >= s.ssthresh && s.cwnd() <= s.ssthresh + 1.0,
                "{flavor:?}: cwnd {} vs ssthresh {}",
                s.cwnd(),
                s.ssthresh
            );
        }
    }

    #[test]
    fn tahoe_never_enters_recovery() {
        let mut s = sender(Flavor::Tahoe);
        s.cwnd = 10.0;
        act!(s.start(t(0)));
        act!(s.on_ack(t(100), 0));
        for _ in 0..8 {
            act!(s.on_ack(t(110), 0));
        }
        assert!(!s.in_recovery);
    }
}

#[cfg(test)]
mod elfn_tests {
    use super::*;
    use mwn_sim::SimDuration;

    fn sender() -> TcpSender {
        TcpSender::new(
            TcpConfig::default(),
            Flavor::NewReno,
            FlowId(0),
            NodeId(0),
            NodeId(5),
            0,
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sent_seqs(actions: &[TransportAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                TransportAction::SendPacket(p) => match &p.body {
                    Body::Tcp(seg) if seg.is_data() => Some(seg.seq),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn route_failure_freezes_and_probes() {
        let mut s = sender();
        s.cwnd = 8.0;
        act!(s.start(t(0)));
        act!(s.on_ack(t(50), 0));
        let cwnd_before = s.cwnd();

        let a = act!(s.on_route_failure(t(100)));
        assert!(s.frozen());
        assert!(a.contains(&TransportAction::CancelTimer(TransportTimer::Rtx)));
        assert!(a.iter().any(|x| matches!(
            x,
            TransportAction::SetTimer {
                timer: TransportTimer::Probe,
                ..
            }
        )));

        // Probe: retransmits the first unacked, re-arms.
        let a = act!(s.on_probe_timer(t(2100)));
        assert_eq!(sent_seqs(&a), vec![1]);
        assert!(a.iter().any(|x| matches!(
            x,
            TransportAction::SetTimer {
                timer: TransportTimer::Probe,
                ..
            }
        )));

        // RTO firing while frozen is ignored.
        let a = act!(s.on_rtx_timeout(t(3000)));
        assert!(a.is_empty());
        assert_eq!(s.stats().timeouts, 0);

        // The probe's ACK thaws with the saved window.
        let a = act!(s.on_ack(t(4000), 1));
        assert!(!s.frozen());
        assert!(a.contains(&TransportAction::CancelTimer(TransportTimer::Probe)));
        assert!(s.cwnd() >= cwnd_before, "window restored, not collapsed");
    }

    #[test]
    fn double_failure_notice_is_idempotent() {
        let mut s = sender();
        act!(s.start(t(0)));
        let first = act!(s.on_route_failure(t(10)));
        assert!(!first.is_empty());
        let second = act!(s.on_route_failure(t(20)));
        assert!(
            second.is_empty(),
            "already frozen: no duplicate probe timer"
        );
    }

    #[test]
    fn stale_probe_after_thaw_is_ignored() {
        let mut s = sender();
        act!(s.start(t(0)));
        act!(s.on_route_failure(t(10)));
        act!(s.on_ack(t(100), 0)); // thaw
        let a = act!(s.on_probe_timer(t(2100)));
        assert!(a.is_empty());
    }

    #[test]
    fn frozen_sender_survives_without_progress() {
        let mut s = sender();
        s.cwnd = 4.0;
        act!(s.start(t(0)));
        act!(s.on_route_failure(t(10)));
        // Many probes without answers: no window change, no timeouts.
        for k in 1..10u64 {
            act!(s.on_probe_timer(t(k * 2000)));
        }
        assert!(s.frozen());
        assert_eq!(s.stats().timeouts, 0);
        assert!(s.stats().retransmissions >= 8);
    }
}
