//! The TCP receiver (sink) with per-packet and ACK-thinning policies.

use std::collections::BTreeSet;

use mwn_pkt::{Body, FlowId, NodeId, Packet, TcpSegment};
use mwn_sim::{SimDuration, SimTime};

use crate::{TransportAction, TransportTimer};

/// When the sink generates acknowledgements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// One ACK per received data packet (ns-2's default sink).
    EveryPacket,
    /// Dynamic ACK thinning (Altman & Jiménez): acknowledge every `d`-th
    /// packet, where `d` grows 1 → 4 with the received sequence number at
    /// thresholds S1 = 2, S2 = 5, S3 = 9; a 100 ms timer flushes pending
    /// ACKs so the sender never stalls for long.
    Thinning,
}

/// Receiver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpSinkStats {
    /// Distinct in-order data packets delivered to the application — the
    /// goodput numerator.
    pub delivered: u64,
    /// ACK packets generated.
    pub acks_sent: u64,
    /// Duplicate data packets received (transport retransmissions that
    /// were unnecessary, or MAC duplicates that slipped through).
    pub duplicates: u64,
    /// Packets that arrived out of order.
    pub out_of_order: u64,
    /// In-order packets whose ACK the thinning policy withheld (the
    /// ACK-thinning decisions the paper's §5 comparison counts).
    pub acks_suppressed: u64,
}

/// A packet-granularity TCP sink.
///
/// Drive with [`TcpSink::on_data`] for each arriving data segment and
/// [`TcpSink::on_delayed_ack_timer`] when the flush timer fires.
///
/// # Example
///
/// ```
/// use mwn_pkt::{FlowId, NodeId};
/// use mwn_sim::SimTime;
/// use mwn_tcp::{AckPolicy, TcpSink, TransportAction};
///
/// let mut rx = TcpSink::new(AckPolicy::EveryPacket, FlowId(0), NodeId(5), NodeId(0), 1 << 32);
/// let mut actions = Vec::new();
/// rx.on_data(SimTime::ZERO, 0, &mut actions);
/// assert!(matches!(actions[0], TransportAction::SendPacket(_)));
/// assert_eq!(rx.stats().delivered, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TcpSink {
    policy: AckPolicy,
    flow: FlowId,
    me: NodeId,
    peer: NodeId,
    next_uid: u64,
    /// Next in-order sequence expected.
    next_expected: u64,
    /// Out-of-order packets received beyond `next_expected`.
    ooo: BTreeSet<u64>,
    /// In-order packets received since the last ACK (thinning).
    pending: u32,
    timer_armed: bool,
    stats: TcpSinkStats,
}

/// ACK-thinning flush timeout (paper §3.2: 100 ms default).
const DELAYED_ACK_TIMEOUT: SimDuration = SimDuration::from_millis(100);

impl TcpSink {
    /// Creates a sink at node `me` acknowledging to `peer`.
    pub fn new(policy: AckPolicy, flow: FlowId, me: NodeId, peer: NodeId, uid_base: u64) -> Self {
        TcpSink {
            policy,
            flow,
            me,
            peer,
            next_uid: uid_base,
            next_expected: 0,
            ooo: BTreeSet::new(),
            pending: 0,
            timer_armed: false,
            stats: TcpSinkStats::default(),
        }
    }

    /// Receiver statistics.
    pub fn stats(&self) -> &TcpSinkStats {
        &self.stats
    }

    /// Highest in-order packet received, as carried in ACKs
    /// ([`TcpSegment::NO_ACK`] before anything arrived in order).
    pub fn ack_number(&self) -> u64 {
        if self.next_expected == 0 {
            TcpSegment::NO_ACK
        } else {
            self.next_expected - 1
        }
    }

    /// The current ACK-thinning factor `d` for a packet with sequence
    /// number `seq` (1 when not thinning).
    ///
    /// Per the paper: with the 1-based packet number `n = seq + 1`,
    /// `d = 1` for `n ≤ 2`, `2` for `n < 5`, `3` for `n < 9`, else `4`.
    pub fn thinning_factor(&self, seq: u64) -> u32 {
        match self.policy {
            AckPolicy::EveryPacket => 1,
            AckPolicy::Thinning => {
                let n = seq + 1;
                if n <= 2 {
                    1
                } else if n < 5 {
                    2
                } else if n < 9 {
                    3
                } else {
                    4
                }
            }
        }
    }

    /// A data segment with sequence `seq` arrived; resulting actions are
    /// appended to `out`.
    pub fn on_data(&mut self, _now: SimTime, seq: u64, out: &mut Vec<TransportAction>) {
        if seq < self.next_expected || self.ooo.contains(&seq) {
            // Duplicate: re-ACK immediately (the previous ACK was lost).
            self.stats.duplicates += 1;
            self.emit_ack(out);
            return;
        }
        if seq > self.next_expected {
            // Hole: buffer and send an immediate duplicate ACK so the
            // sender's fast-retransmit machinery engages.
            self.stats.out_of_order += 1;
            self.ooo.insert(seq);
            self.emit_ack(out);
            return;
        }
        // In order: deliver it and any buffered continuation.
        self.next_expected += 1;
        self.stats.delivered += 1;
        self.pending += 1;
        while self.ooo.remove(&self.next_expected) {
            self.next_expected += 1;
            self.stats.delivered += 1;
            self.pending += 1;
        }
        let d = self.thinning_factor(seq);
        if self.pending >= d {
            self.emit_ack(out);
        } else {
            self.stats.acks_suppressed += 1;
            if !self.timer_armed {
                self.timer_armed = true;
                out.push(TransportAction::SetTimer {
                    timer: TransportTimer::DelayedAck,
                    delay: DELAYED_ACK_TIMEOUT,
                });
            }
        }
    }

    /// The delayed-ACK flush timer fired.
    ///
    /// The timer is *periodic* while data keeps arriving (ns-2's delayed
    /// ACK sinks behave the same): if the fire flushes pending packets, it
    /// re-arms immediately, so the flush latency a sender observes varies
    /// with its packets' arrival phase instead of always being the full
    /// timeout. For Vegas — whose congestion signal is the RTT — this
    /// matters: a constant full-timeout inflation would read as permanent
    /// congestion and pin the window below the thinning factor `d`.
    pub fn on_delayed_ack_timer(&mut self, _now: SimTime, out: &mut Vec<TransportAction>) {
        self.timer_armed = false;
        if self.pending > 0 {
            self.flush(out);
            self.timer_armed = true;
            out.push(TransportAction::SetTimer {
                timer: TransportTimer::DelayedAck,
                delay: DELAYED_ACK_TIMEOUT,
            });
        }
    }

    /// Sends the ACK without touching the timer (used by the periodic
    /// flush path).
    fn flush(&mut self, actions: &mut Vec<TransportAction>) {
        self.pending = 0;
        let uid = self.next_uid;
        self.next_uid += 1;
        self.stats.acks_sent += 1;
        let seg = TcpSegment::ack(self.flow, self.ack_number());
        actions.push(TransportAction::SendPacket(Packet::new(
            uid,
            self.me,
            self.peer,
            Body::Tcp(seg),
        )));
    }

    fn emit_ack(&mut self, actions: &mut Vec<TransportAction>) {
        self.pending = 0;
        if self.timer_armed {
            self.timer_armed = false;
            actions.push(TransportAction::CancelTimer(TransportTimer::DelayedAck));
        }
        let uid = self.next_uid;
        self.next_uid += 1;
        self.stats.acks_sent += 1;
        let seg = TcpSegment::ack(self.flow, self.ack_number());
        actions.push(TransportAction::SendPacket(Packet::new(
            uid,
            self.me,
            self.peer,
            Body::Tcp(seg),
        )));
    }
}

/// Test shim for the out-param API: `act!(m.method(args...))` calls the
/// method with a fresh action buffer appended and returns the buffer.
#[cfg(test)]
macro_rules! act {
    ($m:ident.$meth:ident($($arg:expr),* $(,)?)) => {{
        let mut out = Vec::new();
        $m.$meth($($arg,)* &mut out);
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sink(policy: AckPolicy) -> TcpSink {
        TcpSink::new(policy, FlowId(0), NodeId(5), NodeId(0), 0)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn acks(actions: &[TransportAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                TransportAction::SendPacket(p) => match &p.body {
                    Body::Tcp(seg) if !seg.is_data() => Some(seg.ack),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn every_packet_policy_acks_each() {
        let mut s = sink(AckPolicy::EveryPacket);
        for seq in 0..5 {
            let a = act!(s.on_data(t(seq), seq));
            assert_eq!(acks(&a), vec![seq]);
        }
        assert_eq!(s.stats().delivered, 5);
        assert_eq!(s.stats().acks_sent, 5);
    }

    #[test]
    fn out_of_order_triggers_immediate_dupack() {
        let mut s = sink(AckPolicy::EveryPacket);
        act!(s.on_data(t(0), 0));
        let a = act!(s.on_data(t(1), 2)); // hole at 1
        assert_eq!(acks(&a), vec![0], "duplicate ACK for the last in-order");
        assert_eq!(s.stats().out_of_order, 1);
        // Filling the hole delivers both and acks cumulatively.
        let a = act!(s.on_data(t(2), 1));
        assert_eq!(acks(&a), vec![2]);
        assert_eq!(s.stats().delivered, 3);
    }

    #[test]
    fn duplicate_data_is_reacked_not_redelivered() {
        let mut s = sink(AckPolicy::EveryPacket);
        act!(s.on_data(t(0), 0));
        let a = act!(s.on_data(t(1), 0));
        assert_eq!(acks(&a), vec![0]);
        assert_eq!(s.stats().delivered, 1);
        assert_eq!(s.stats().duplicates, 1);
    }

    #[test]
    fn ooo_before_first_packet_acks_no_ack_sentinel() {
        let mut s = sink(AckPolicy::EveryPacket);
        let a = act!(s.on_data(t(0), 3));
        assert_eq!(acks(&a), vec![TcpSegment::NO_ACK]);
    }

    #[test]
    fn thinning_factor_schedule_matches_paper() {
        let s = sink(AckPolicy::Thinning);
        // n = seq+1: d=1 for n<=2, 2 for n<5, 3 for n<9, 4 beyond.
        assert_eq!(s.thinning_factor(0), 1);
        assert_eq!(s.thinning_factor(1), 1);
        assert_eq!(s.thinning_factor(2), 2);
        assert_eq!(s.thinning_factor(3), 2);
        assert_eq!(s.thinning_factor(4), 3);
        assert_eq!(s.thinning_factor(7), 3);
        assert_eq!(s.thinning_factor(8), 4);
        assert_eq!(s.thinning_factor(1000), 4);
    }

    #[test]
    fn thinning_acks_every_fourth_packet_late_in_flow() {
        let mut s = sink(AckPolicy::Thinning);
        // Prime the flow past the last threshold.
        for seq in 0..9 {
            act!(s.on_data(t(seq), seq));
        }
        let base_acks = s.stats().acks_sent;
        // Next four packets yield exactly one ACK (d = 4).
        let mut ack_count = 0;
        for seq in 9..13 {
            let a = act!(s.on_data(t(seq), seq));
            ack_count += acks(&a).len();
        }
        assert_eq!(ack_count, 1);
        assert_eq!(s.stats().acks_sent, base_acks + 1);
    }

    #[test]
    fn thinning_timer_flushes_pending_ack() {
        let mut s = sink(AckPolicy::Thinning);
        for seq in 0..9 {
            act!(s.on_data(t(seq), seq));
        }
        // Priming leaves pending=2 with the flush timer armed (set when
        // the first pending packet arrived). Packet 9 stays below d=4: no
        // ACK yet, and the already-armed timer is not re-armed.
        let a = act!(s.on_data(t(100), 9));
        assert!(acks(&a).is_empty());
        assert!(a.is_empty());
        // Timer fires: ACK 9 goes out.
        let a = act!(s.on_delayed_ack_timer(t(200)));
        assert_eq!(acks(&a), vec![9]);
        // Firing again with nothing pending is silent.
        let a = act!(s.on_delayed_ack_timer(t(300)));
        assert!(a.is_empty());
    }

    #[test]
    fn thinning_early_packets_acked_immediately() {
        let mut s = sink(AckPolicy::Thinning);
        let a = act!(s.on_data(t(0), 0));
        assert_eq!(acks(&a), vec![0], "d=1 at flow start");
        let a = act!(s.on_data(t(1), 1));
        assert_eq!(acks(&a), vec![1]);
        // seq 2 (n=3): d=2, so first packet leaves an armed timer...
        let a = act!(s.on_data(t(2), 2));
        assert!(acks(&a).is_empty());
        // ...and the second triggers the ACK (timer cancelled).
        let a = act!(s.on_data(t(3), 3));
        assert_eq!(acks(&a), vec![3]);
        assert!(a.contains(&TransportAction::CancelTimer(TransportTimer::DelayedAck)));
    }

    proptest! {
        /// Delivery is exactly-once and in order under any arrival pattern.
        #[test]
        fn sink_invariants(seqs in proptest::collection::vec(0u64..30, 1..200), thinning: bool) {
            let policy = if thinning { AckPolicy::Thinning } else { AckPolicy::EveryPacket };
            let mut s = sink(policy);
            let mut distinct = std::collections::HashSet::new();
            let mut now = SimTime::ZERO;
            for seq in seqs {
                now += SimDuration::from_millis(1);
                act!(s.on_data(now, seq));
                distinct.insert(seq);
                // Delivered = contiguous prefix length reached so far.
                let prefix = (0..).take_while(|i| distinct.contains(i)).count() as u64;
                prop_assert_eq!(s.next_expected, prefix);
                prop_assert_eq!(s.stats().delivered, prefix);
            }
        }
    }
}
