//! Analytical TCP Vegas equilibrium model.
//!
//! The paper closes by noting that extending an analytical Vegas model
//! (Samios & Vernon, SIGMETRICS 2003) to 802.11 multihop paths "will be
//! helpful to get more intuition". This module provides the fluid
//! equilibrium at that model's core: Vegas in congestion avoidance holds
//!
//! ```text
//! diff = W · (1 − baseRTT/RTT)
//! ```
//!
//! between `α` and `β`. Over a path abstracted as a bottleneck of rate
//! `μ` packets/s with round-trip propagation `baseRTT`, `diff` equals the
//! number of packets the flow keeps queued at the bottleneck, so the
//! stable operating point keeps `(α+β)/2` packets in queue:
//!
//! * **path-limited**: `W* = μ·baseRTT + (α+β)/2`, throughput `= μ`;
//! * **window-limited** (`W*` capped by the receiver window): throughput
//!   `= Wmax/baseRTT`, no standing queue.
//!
//! For a multihop 802.11 chain, `μ` is the spatial-reuse-limited MAC
//! service rate (measurable with the paced-UDP reference of §4.2) scaled
//! by the share the TCP ACK stream leaves to data. The model explains the
//! paper's central observation: `W*` barely grows with the chain length
//! (only through `baseRTT`), which is why Vegas sits near the optimal
//! `h/4` window while NewReno overshoots.

use mwn_sim::SimDuration;

/// Inputs of the equilibrium model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VegasModel {
    /// Round-trip propagation + transmission time without queueing.
    pub base_rtt: SimDuration,
    /// Bottleneck service rate in packets per second.
    pub bottleneck_rate: f64,
    /// Vegas lower threshold (packets).
    pub alpha: f64,
    /// Vegas upper threshold (packets).
    pub beta: f64,
    /// Receiver window cap (packets).
    pub wmax: f64,
}

/// The predicted operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VegasEquilibrium {
    /// Congestion window in packets.
    pub window: f64,
    /// Throughput in packets per second.
    pub throughput_pps: f64,
    /// Equilibrium round-trip time.
    pub rtt: SimDuration,
    /// Packets kept queued at the bottleneck (`diff`).
    pub queued: f64,
    /// `true` if the receiver window, not the path, limits throughput.
    pub window_limited: bool,
}

impl VegasModel {
    /// Solves for the equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if the bottleneck rate is not positive, the thresholds are
    /// inverted, or `base_rtt` is zero.
    pub fn equilibrium(&self) -> VegasEquilibrium {
        assert!(
            self.bottleneck_rate > 0.0,
            "bottleneck rate must be positive"
        );
        assert!(
            self.alpha > 0.0 && self.beta >= self.alpha,
            "need 0 < alpha <= beta"
        );
        assert!(!self.base_rtt.is_zero(), "base RTT must be positive");
        let b = self.base_rtt.as_secs_f64();
        let mu = self.bottleneck_rate;
        let target_queue = (self.alpha + self.beta) / 2.0;
        let bdp = mu * b;

        let unconstrained = bdp + target_queue;
        if unconstrained <= self.wmax {
            // Path-limited: bottleneck saturated, `target_queue` packets
            // standing in queue.
            let window = unconstrained.max(2.0);
            let rtt = window / mu;
            VegasEquilibrium {
                window,
                throughput_pps: mu,
                rtt: SimDuration::from_secs_f64(rtt),
                queued: window - bdp,
                window_limited: false,
            }
        } else {
            // Window-limited: the flow cannot even fill the pipe.
            let window = self.wmax;
            let queued = (window - bdp).max(0.0);
            let throughput = if window >= bdp { mu } else { window / b };
            let rtt = window / throughput;
            VegasEquilibrium {
                window,
                throughput_pps: throughput,
                rtt: SimDuration::from_secs_f64(rtt),
                queued,
                window_limited: true,
            }
        }
    }

    /// Predicted steady-state goodput in kbit/s for `payload_bytes`-byte
    /// packets.
    pub fn goodput_kbps(&self, payload_bytes: u32) -> f64 {
        self.equilibrium().throughput_pps * f64::from(payload_bytes) * 8.0 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(base_ms: u64, mu: f64) -> VegasModel {
        VegasModel {
            base_rtt: SimDuration::from_millis(base_ms),
            bottleneck_rate: mu,
            alpha: 2.0,
            beta: 2.0,
            wmax: 64.0,
        }
    }

    #[test]
    fn path_limited_equilibrium_keeps_alpha_queued() {
        // 100 pkt/s bottleneck, 40 ms base RTT: BDP = 4 packets.
        let eq = model(40, 100.0).equilibrium();
        assert!(!eq.window_limited);
        assert!((eq.window - 6.0).abs() < 1e-9, "W* = BDP + alpha = 6");
        assert!((eq.throughput_pps - 100.0).abs() < 1e-9);
        assert!((eq.queued - 2.0).abs() < 1e-9);
        assert_eq!(eq.rtt, SimDuration::from_millis(60));
    }

    #[test]
    fn window_limited_when_bdp_exceeds_wmax() {
        // Huge pipe: BDP = 1000 packets >> Wmax 64.
        let eq = model(100, 10_000.0).equilibrium();
        assert!(eq.window_limited);
        assert_eq!(eq.window, 64.0);
        assert!((eq.throughput_pps - 640.0).abs() < 1e-9, "Wmax/baseRTT");
        assert_eq!(eq.queued, 0.0);
    }

    #[test]
    fn tiny_bdp_floors_window_at_two() {
        let eq = model(1, 100.0).equilibrium();
        assert!(eq.window >= 2.0);
    }

    #[test]
    fn goodput_conversion() {
        let m = model(40, 100.0);
        // 100 pkt/s × 1460 B × 8 = 1168 kbit/s.
        assert!((m.goodput_kbps(1460) - 1168.0).abs() < 1e-6);
    }

    #[test]
    fn matches_pipe_simulation_regime() {
        // The closed-loop pipe test (tests/pipe.rs) runs Vegas over a
        // 100 pkt/s bottleneck with 40 ms RTT and observes ~100 pkt/s and
        // a small stable window; the model predicts exactly that point.
        let eq = model(40, 100.0).equilibrium();
        assert!(eq.window < 12.0);
        assert!((95.0..=100.0).contains(&eq.throughput_pps));
    }

    #[test]
    #[should_panic(expected = "bottleneck rate")]
    fn zero_rate_rejected() {
        model(40, 0.0).equilibrium();
    }

    #[test]
    #[should_panic(expected = "base RTT")]
    fn zero_base_rtt_rejected() {
        // diff = W·(1 − baseRTT/RTT) is undefined at baseRTT = 0; the
        // model must refuse rather than divide by zero downstream.
        model(0, 100.0).equilibrium();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn inverted_thresholds_rejected() {
        let mut m = model(40, 100.0);
        m.alpha = 3.0;
        m.beta = 1.0;
        m.equilibrium();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let mut m = model(40, 100.0);
        m.alpha = 0.0;
        m.beta = 0.0;
        m.equilibrium();
    }

    #[test]
    fn boundary_unconstrained_equals_wmax_is_path_limited() {
        // BDP + target queue == Wmax exactly: the path-limited branch must
        // win (throughput = mu with a standing queue), not the degenerate
        // window-limited one.
        let mut m = model(620, 100.0); // BDP = 62, + 2 queued = 64 = wmax
        m.wmax = 64.0;
        let eq = m.equilibrium();
        assert!(!eq.window_limited);
        assert!((eq.window - 64.0).abs() < 1e-9);
        assert!((eq.queued - 2.0).abs() < 1e-9);
        assert!((eq.throughput_pps - 100.0).abs() < 1e-9);
    }

    #[test]
    fn window_limited_below_bdp_never_reports_negative_queue() {
        // BDP = 1000 >> Wmax: diff would be negative if computed naively
        // as W − BDP; the model clamps the queue at zero.
        let eq = model(100, 10_000.0).equilibrium();
        assert!(eq.window_limited);
        assert!(eq.queued >= 0.0);
        // RTT stays at baseRTT when no queue forms.
        assert_eq!(eq.rtt, SimDuration::from_millis(100));
    }

    #[test]
    fn window_limited_above_bdp_keeps_bottleneck_saturated() {
        // Wmax between BDP and BDP + target queue: a smaller-than-desired
        // queue forms but the pipe is still full.
        let mut m = model(630, 100.0); // BDP = 63; unconstrained = 65 > 64
        m.wmax = 64.0;
        let eq = m.equilibrium();
        assert!(eq.window_limited);
        assert!((eq.throughput_pps - 100.0).abs() < 1e-9);
        assert!((eq.queued - 1.0).abs() < 1e-9);
    }
}
