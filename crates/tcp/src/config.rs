//! Transport configuration.

use mwn_sim::SimDuration;

/// TCP parameters (paper Table 1 plus timer granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Maximum window advertised by the receiver (Table 1: 64 packets).
    pub wmax: u32,
    /// Initial window used in slow start and after a timeout (Table 1: 1).
    pub winit: u32,
    /// Vegas lower throughput threshold α in packets (Table 1: 2).
    pub alpha: u32,
    /// Vegas upper threshold β; the paper sets β = α for fairness.
    pub beta: u32,
    /// Vegas slow-start exit threshold γ (Table 1: γ = α).
    pub gamma: u32,
    /// Coarse timer granularity (ns-2 `tcpTick_`).
    pub tick: SimDuration,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// RTO used before the first RTT sample.
    pub initial_rto: SimDuration,
    /// Upper bound on the (backed-off) retransmission timeout.
    pub max_rto: SimDuration,
    /// Interval between ELFN probes while a route-failure notice has the
    /// sender frozen (extension; Holland & Vaidya use seconds-scale
    /// probing).
    pub probe_interval: SimDuration,
    /// Fault-injection hook for the invariant checker: when set, the
    /// sender's window-growth paths clamp `cwnd` to `4 × wmax` instead of
    /// `wmax`, so slow start overshoots the receiver's advertised window.
    /// Exists only so `mwn check` can demonstrate that the cwnd-bound
    /// invariant catches the bug; never set in real experiments.
    pub fault_cwnd_overshoot: bool,
}

impl TcpConfig {
    /// The paper's base parameter setting with Vegas `α = β = γ`.
    pub fn paper(alpha: u32) -> Self {
        TcpConfig {
            wmax: 64,
            winit: 1,
            alpha,
            beta: alpha,
            gamma: alpha,
            tick: SimDuration::from_millis(100),
            min_rto: SimDuration::from_millis(200),
            initial_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(64),
            probe_interval: SimDuration::from_secs(2),
            fault_cwnd_overshoot: false,
        }
    }

    /// The paper's setting with an artificially bounded window
    /// ("NewReno with optimal window", Fu et al.'s `MaxWin`).
    pub fn with_max_window(mut self, wmax: u32) -> Self {
        self.wmax = wmax;
        self
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self::paper(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = TcpConfig::default();
        assert_eq!(c.wmax, 64);
        assert_eq!(c.winit, 1);
        assert_eq!((c.alpha, c.beta, c.gamma), (2, 2, 2));
    }

    #[test]
    fn optimal_window_variant() {
        let c = TcpConfig::paper(2).with_max_window(3);
        assert_eq!(c.wmax, 3);
    }
}
