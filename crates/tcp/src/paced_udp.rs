//! The paper's optimally paced UDP reference transport (§4.2).
//!
//! A CBR source emits 1460-byte UDP packets every `t` seconds. The paper
//! derives the optimal `t` for an h-hop chain from the 4-hop propagation
//! delay (Table 2) and then sweeps `t` to find the goodput peak
//! (Figure 10, t_opt ≈ 35.7 ms at 2 Mbit/s).

use mwn_pkt::{Body, FlowId, NodeId, Packet, UdpDatagram};
use mwn_sim::{SimDuration, SimTime};

use crate::{TransportAction, TransportTimer};

/// Constant-bit-rate UDP source.
///
/// # Example
///
/// ```
/// use mwn_pkt::{FlowId, NodeId};
/// use mwn_sim::{SimDuration, SimTime};
/// use mwn_tcp::{PacedUdpSource, TransportAction, TransportTimer};
///
/// let gap = SimDuration::from_millis(36);
/// let mut src = PacedUdpSource::new(FlowId(0), NodeId(0), NodeId(7), gap, 0);
/// let mut actions = Vec::new();
/// src.start(SimTime::ZERO, &mut actions);
/// assert!(matches!(actions[0], TransportAction::SendPacket(_)));
/// assert!(matches!(actions[1], TransportAction::SetTimer { timer: TransportTimer::Pace, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct PacedUdpSource {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    gap: SimDuration,
    next_seq: u64,
    next_uid: u64,
}

impl PacedUdpSource {
    /// Creates a source sending one packet every `gap`.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is zero.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, gap: SimDuration, uid_base: u64) -> Self {
        assert!(!gap.is_zero(), "pacing gap must be positive");
        PacedUdpSource {
            flow,
            src,
            dst,
            gap,
            next_seq: 0,
            next_uid: uid_base,
        }
    }

    /// The configured inter-packet gap.
    pub fn gap(&self) -> SimDuration {
        self.gap
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    /// Starts the flow: sends the first packet and arms the pacing timer.
    pub fn start(&mut self, now: SimTime, out: &mut Vec<TransportAction>) {
        self.emit(now, out);
    }

    /// The pacing timer fired: send the next packet and re-arm.
    pub fn on_pace_timer(&mut self, now: SimTime, out: &mut Vec<TransportAction>) {
        self.emit(now, out);
    }

    fn emit(&mut self, _now: SimTime, out: &mut Vec<TransportAction>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let uid = self.next_uid;
        self.next_uid += 1;
        let packet = Packet::new(
            uid,
            self.src,
            self.dst,
            Body::Udp(UdpDatagram::cbr(self.flow, seq)),
        );
        out.push(TransportAction::SendPacket(packet));
        out.push(TransportAction::SetTimer {
            timer: TransportTimer::Pace,
            delay: self.gap,
        });
    }
}

/// Counts CBR packets arriving at the destination.
#[derive(Debug, Clone, Default)]
pub struct UdpSink {
    received: u64,
    highest_seq: Option<u64>,
}

impl UdpSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A datagram arrived.
    pub fn on_data(&mut self, seq: u64) {
        self.received += 1;
        self.highest_seq = Some(self.highest_seq.map_or(seq, |h| h.max(seq)));
    }

    /// Packets received — the paced-UDP goodput numerator (the paper
    /// "determines the actual number of packets received by the UDP sink").
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Highest sequence number observed, if any.
    pub fn highest_seq(&self) -> Option<u64> {
        self.highest_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_paces_at_fixed_gap() {
        let gap = SimDuration::from_millis(36);
        let mut s = PacedUdpSource::new(FlowId(0), NodeId(0), NodeId(7), gap, 0);
        let mut now = SimTime::ZERO;
        let mut a = Vec::new();
        s.start(now, &mut a);
        assert_eq!(a.len(), 2);
        for i in 1..10u64 {
            now += gap;
            a.clear();
            s.on_pace_timer(now, &mut a);
            match &a[0] {
                TransportAction::SendPacket(p) => match &p.body {
                    Body::Udp(d) => assert_eq!(d.seq, i),
                    other => panic!("unexpected body {other:?}"),
                },
                other => panic!("unexpected action {other:?}"),
            }
            assert!(matches!(
                a[1],
                TransportAction::SetTimer { timer: TransportTimer::Pace, delay } if delay == gap
            ));
        }
        assert_eq!(s.sent(), 10);
    }

    #[test]
    fn sink_counts_arrivals() {
        let mut sink = UdpSink::new();
        sink.on_data(0);
        sink.on_data(2);
        sink.on_data(1);
        assert_eq!(sink.received(), 3);
        assert_eq!(sink.highest_seq(), Some(2));
    }

    #[test]
    #[should_panic(expected = "pacing gap must be positive")]
    fn zero_gap_rejected() {
        PacedUdpSource::new(FlowId(0), NodeId(0), NodeId(1), SimDuration::ZERO, 0);
    }
}
