//! Retransmission-timeout estimation (RFC 6298 / ns-2 style).

use mwn_sim::SimDuration;

/// Smoothed RTT estimator with exponential backoff.
///
/// Follows the classic Jacobson/Karels algorithm: `srtt ← 7/8·srtt +
/// 1/8·sample`, `rttvar ← 3/4·rttvar + 1/4·|srtt − sample|`,
/// `RTO = srtt + max(G, 4·rttvar)` quantized up to the timer granularity
/// `G`, clamped to `[min_rto, max_rto]`, and doubled on each backoff.
///
/// # Example
///
/// ```
/// use mwn_sim::SimDuration;
/// use mwn_tcp::RtoEstimator;
///
/// let mut rto = RtoEstimator::new(
///     SimDuration::from_millis(100), // tick
///     SimDuration::from_millis(200), // min
///     SimDuration::from_secs(1),     // initial
///     SimDuration::from_secs(64),    // max
/// );
/// assert_eq!(rto.current(), SimDuration::from_secs(1));
/// rto.sample(SimDuration::from_millis(80));
/// assert!(rto.current() >= SimDuration::from_millis(200));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RtoEstimator {
    tick: SimDuration,
    min_rto: SimDuration,
    initial_rto: SimDuration,
    max_rto: SimDuration,
    /// Smoothed RTT in seconds; `None` before the first sample.
    srtt: Option<f64>,
    rttvar: f64,
    backoff: u32,
}

impl RtoEstimator {
    /// Creates an estimator.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero or the bounds are inverted.
    pub fn new(
        tick: SimDuration,
        min_rto: SimDuration,
        initial_rto: SimDuration,
        max_rto: SimDuration,
    ) -> Self {
        assert!(!tick.is_zero(), "tick must be positive");
        assert!(min_rto <= max_rto, "min_rto must not exceed max_rto");
        RtoEstimator {
            tick,
            min_rto,
            initial_rto,
            max_rto,
            srtt: None,
            rttvar: 0.0,
            backoff: 0,
        }
    }

    /// Feeds an RTT measurement (callers must apply Karn's rule: never
    /// sample a retransmitted packet). Resets any backoff.
    pub fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(s) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (s - r).abs();
                self.srtt = Some(0.875 * s + 0.125 * r);
            }
        }
        self.backoff = 0;
    }

    /// The smoothed RTT, if at least one sample arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// Current retransmission timeout including backoff.
    pub fn current(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial_rto,
            Some(s) => {
                let var = (4.0 * self.rttvar).max(self.tick.as_secs_f64());
                let raw = SimDuration::from_secs_f64(s + var);
                // Quantize up to the tick, like ns-2's coarse-grained timers.
                let ticks = raw.as_nanos().div_ceil(self.tick.as_nanos());
                self.tick * ticks
            }
        };
        let backed = base * (1u64 << self.backoff.min(16));
        backed.clamp(self.min_rto, self.max_rto)
    }

    /// Doubles the timeout after a retransmission timeout (Karn).
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RtoEstimator {
        RtoEstimator::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            SimDuration::from_secs(1),
            SimDuration::from_secs(64),
        )
    }

    #[test]
    fn initial_rto_used_before_samples() {
        assert_eq!(est().current(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        // srtt = 100ms, rttvar = 50ms -> rto = 100 + 200 = 300ms.
        assert_eq!(e.current(), SimDuration::from_millis(300));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn rto_quantized_to_tick() {
        let mut e = est();
        e.sample(SimDuration::from_millis(73));
        let rto = e.current();
        assert_eq!(rto.as_nanos() % SimDuration::from_millis(100).as_nanos(), 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let base = e.current();
        e.backoff();
        assert_eq!(e.current(), base * 2);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.current(), SimDuration::from_secs(64));
        // A fresh sample clears the backoff.
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.current(), base);
    }

    #[test]
    fn min_rto_enforced() {
        let mut e = est();
        for _ in 0..20 {
            e.sample(SimDuration::from_millis(10));
        }
        assert!(e.current() >= SimDuration::from_millis(200));
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..50 {
            stable.sample(SimDuration::from_millis(100));
            jittery.sample(SimDuration::from_millis(if i % 2 == 0 { 50 } else { 200 }));
        }
        assert!(jittery.current() > stable.current());
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_rejected() {
        RtoEstimator::new(
            SimDuration::ZERO,
            SimDuration::from_millis(200),
            SimDuration::from_secs(1),
            SimDuration::from_secs(64),
        );
    }

    #[test]
    #[should_panic(expected = "min_rto must not exceed max_rto")]
    fn inverted_bounds_rejected() {
        RtoEstimator::new(
            SimDuration::from_millis(100),
            SimDuration::from_secs(64),
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
        );
    }

    #[test]
    fn backoff_shift_saturates_at_sixteen() {
        // 2^16 on a 300 ms base is already past max_rto, so the cap on the
        // shift amount must never be observable through `current()` —
        // and must not overflow even after absurdly many backoffs.
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        for _ in 0..1_000 {
            e.backoff();
        }
        assert_eq!(e.current(), SimDuration::from_secs(64));
    }

    #[test]
    fn backoff_before_first_sample_clamps_to_max() {
        // initial_rto = 1 s; six doublings = 64 s = max_rto exactly, the
        // seventh must clamp rather than exceed it.
        let mut e = est();
        for _ in 0..6 {
            e.backoff();
        }
        assert_eq!(e.current(), SimDuration::from_secs(64));
        e.backoff();
        assert_eq!(e.current(), SimDuration::from_secs(64));
    }

    #[test]
    fn zero_rtt_sample_clamps_to_min() {
        // A zero-duration sample gives srtt = 0 and rttvar = 0; the
        // variance floor is one tick, so RTO = 100 ms, below min_rto.
        let mut e = est();
        e.sample(SimDuration::ZERO);
        assert_eq!(e.srtt(), Some(SimDuration::ZERO));
        assert_eq!(e.current(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_applies_before_min_clamp() {
        // Base RTO quantizes to 100 ms (below min); one backoff doubles
        // the *base* to 200 ms, which equals the floor — three backoffs
        // reach 800 ms, showing the clamp happens after the shift.
        let mut e = est();
        e.sample(SimDuration::ZERO);
        e.backoff();
        assert_eq!(e.current(), SimDuration::from_millis(200));
        e.backoff();
        assert_eq!(e.current(), SimDuration::from_millis(400));
        e.backoff();
        assert_eq!(e.current(), SimDuration::from_millis(800));
    }

    #[test]
    fn equal_bounds_pin_rto() {
        let mut e = RtoEstimator::new(
            SimDuration::from_millis(100),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
        );
        // Even the (smaller) initial RTO is pulled up to the min == max.
        assert_eq!(e.current(), SimDuration::from_secs(2));
        e.sample(SimDuration::from_millis(50));
        e.backoff();
        assert_eq!(e.current(), SimDuration::from_secs(2));
    }
}
