//! Packet-granularity transport protocols, in the style of ns-2's agents
//! (and therefore of the paper): TCP sequence numbers count MSS-sized
//! packets, the congestion window is measured in packets, and connections
//! need no handshake.
//!
//! Provided agents:
//!
//! * [`TcpSender`] running either [`Flavor::NewReno`] (reactive,
//!   loss-driven congestion control with fast retransmit/recovery and
//!   partial-ACK handling) or [`Flavor::Vegas`] (proactive, delay-driven
//!   congestion control with `α = β` thresholds, `γ` slow-start exit and
//!   fine-grained retransmission checks) feeding from an unbounded FTP
//!   backlog;
//! * [`TcpSink`] with per-packet ACKs or the dynamic ACK-thinning policy of
//!   Altman & Jiménez (`d` growing 1→4 at sequence thresholds 2/5/9, with a
//!   100 ms flush timeout);
//! * [`PacedUdpSource`]/[`UdpSink`] — the paper's optimally paced UDP
//!   reference transport.
//!
//! All agents are sans-IO: they consume ACKs/segments/timer expirations and
//! return [`TransportAction`]s for the host to apply.

mod config;
mod paced_udp;
mod rto;
mod sender;
mod sink;
pub mod vegas_model;

pub use config::TcpConfig;
pub use paced_udp::{PacedUdpSource, UdpSink};
pub use rto::RtoEstimator;
pub use sender::{Flavor, TcpSender, TcpSenderStats};
pub use sink::{AckPolicy, TcpSink, TcpSinkStats};

use mwn_pkt::Packet;
use mwn_sim::SimDuration;

/// Timers a transport agent may arm. Each `(flow, timer)` pair has at most
/// one outstanding instance; `SetTimer` replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportTimer {
    /// Sender retransmission timeout.
    Rtx,
    /// Receiver delayed-ACK flush (ACK thinning).
    DelayedAck,
    /// Paced-UDP inter-packet gap.
    Pace,
    /// ELFN probe while the route is down (extension; Holland & Vaidya).
    Probe,
}

impl TransportTimer {
    /// Number of timer kinds; hosts can keep per-flow timer state in a
    /// flat `[_; TransportTimer::COUNT]` array instead of a hash map.
    pub const COUNT: usize = 4;

    /// Dense index of this timer kind, in `0..Self::COUNT`.
    pub fn index(self) -> usize {
        match self {
            TransportTimer::Rtx => 0,
            TransportTimer::DelayedAck => 1,
            TransportTimer::Pace => 2,
            TransportTimer::Probe => 3,
        }
    }
}

/// Effects requested by a transport agent.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportAction {
    /// Hand a packet to the routing layer.
    SendPacket(Packet),
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// Which timer.
        timer: TransportTimer,
        /// Delay from now.
        delay: SimDuration,
    },
    /// Cancel a timer if armed.
    CancelTimer(TransportTimer),
}
