//! `mwn repro` — regenerate the paper's figures and tables.

use mwn::experiments::{self, FigureData, TableData};
use mwn::ExperimentScale;
use mwn_runner::pool;

use crate::args;

/// What one experiment produces: its figures and tables.
type Output = (Vec<FigureData>, Vec<TableData>);

/// One reproducible experiment: id, description, producer.
type Producer = fn(ExperimentScale) -> Output;

fn catalog() -> Vec<(&'static str, &'static str, Producer)> {
    vec![
        ("table2", "4-hop propagation delay per bandwidth", |_s| {
            (vec![], vec![experiments::table2()])
        }),
        (
            "fig2-3",
            "Vegas alpha sweep: goodput and window vs hops",
            |s| {
                let (a, b) = experiments::figs_2_3(s);
                (vec![a, b], vec![])
            },
        ),
        ("fig4", "Vegas goodput vs bandwidth (7 hops)", |s| {
            (vec![experiments::fig4(s)], vec![])
        }),
        ("fig5", "Vegas with ACK thinning vs hops", |s| {
            (vec![experiments::fig5(s)], vec![])
        }),
        (
            "fig6-9",
            "chain study: goodput/retx/window/route failures",
            |s| (experiments::figs_6_to_9(s).to_vec(), vec![]),
        ),
        ("fig10", "paced-UDP rate sweep (7 hops)", |s| {
            (vec![experiments::fig10(s)], vec![])
        }),
        ("fig11-14", "7-hop chain across bandwidths", |s| {
            (experiments::figs_11_to_14(s).to_vec(), vec![])
        }),
        ("fig16-17", "grid topology + Table 3 fairness", |s| {
            let (a, b, t) = experiments::grid_study(s);
            (vec![a, b], vec![t])
        }),
        ("fig18-19", "random topology + Table 4 fairness", |s| {
            let (a, b, t) = experiments::random_study(s);
            (vec![a, b], vec![t])
        }),
        ("ablation-capture", "physical capture on/off", |s| {
            (vec![experiments::ablation_capture(s)], vec![])
        }),
        (
            "ablation-basic-rate",
            "control frames at basic vs data rate",
            |s| (vec![experiments::ablation_basic_rate(s)], vec![]),
        ),
        (
            "ablation-cs-range",
            "carrier-sense range vs hidden terminals",
            |s| (vec![experiments::ablation_cs_range(s)], vec![]),
        ),
        ("ext-fu", "Fu et al. link-layer pacing + RED", |s| {
            (vec![experiments::extension_fu_enhancements(s)], vec![])
        }),
        ("ext-variants", "Tahoe/Reno/NewReno/Vegas comparison", |s| {
            (vec![experiments::extension_tcp_variants(s)], vec![])
        }),
        ("ext-optwin", "optimal window bound vs h/4 law", |s| {
            (vec![experiments::extension_optimal_window(s)], vec![])
        }),
        ("ext-80211g", "802.11g OFDM rates", |s| {
            (vec![experiments::extension_80211g(s)], vec![])
        }),
    ]
}

/// Prints the experiment catalog.
pub fn list() {
    println!("{:<20} description", "experiment");
    for (id, desc, _) in catalog() {
        println!("{id:<20} {desc}");
    }
    println!("{:<20} run every experiment above", "all");
}

pub fn command(rest: &[String]) -> Result<(), String> {
    let mut argv: Vec<String> = rest.to_vec();
    let mult: u64 = match args::take_value(&mut argv, "--scale")? {
        Some(v) => args::parse(&v, "scale")?,
        None => 1,
    };
    if mult == 0 {
        return Err("--scale must be at least 1".into());
    }
    let jobs: usize = match args::take_value(&mut argv, "--jobs")? {
        Some(v) => {
            let n: usize = args::parse(&v, "job count")?;
            if n == 0 {
                mwn_runner::default_workers()
            } else {
                n
            }
        }
        None => 1,
    };
    let csv = args::take_flag(&mut argv, "--csv");
    if let Some(v) = args::take_value(&mut argv, "--shards")? {
        let shards = args::parse::<usize>(&v, "shard count")?.max(1);
        // Experiment producers own their run loops, so the engine worker
        // count travels via the environment (see
        // `ObsConfig::effective_shards`). Results are unchanged either
        // way — the sharded engine is digest-identical to the oracle.
        std::env::set_var("MWN_SHARDS", shards.to_string());
    }
    let Some(which) = argv.first().cloned() else {
        return Err("repro needs an experiment id (see `mwn list`)".into());
    };
    argv.remove(0);
    args::reject_leftovers(&argv)?;

    let scale = ExperimentScale::scaled(mult);

    let catalog = catalog();
    let selected: Vec<_> = if which == "all" {
        catalog
    } else {
        let found: Vec<_> = catalog
            .into_iter()
            .filter(|(id, _, _)| *id == which)
            .collect();
        if found.is_empty() {
            return Err(format!("unknown experiment {which:?} (see `mwn list`)"));
        }
        found
    };

    // Experiments are independent, so with --jobs > 1 they run on a worker
    // pool; output is collected and printed in catalog order either way.
    let produced: Vec<(&str, Result<Output, String>)> = if jobs > 1 {
        let ids: Vec<&str> = selected.iter().map(|(id, _, _)| *id).collect();
        eprintln!(
            "[repro] {} experiment(s) on {jobs} worker(s) (scale x{mult})...",
            ids.len()
        );
        let results = pool::parallel_map(selected, jobs, |(_, _, produce)| produce(scale));
        ids.into_iter().zip(results).collect()
    } else {
        selected
            .into_iter()
            .map(|(id, desc, produce)| {
                eprintln!("[{id}] {desc} (scale x{mult})...");
                (id, Ok(produce(scale)))
            })
            .collect()
    };

    let mut failures = Vec::new();
    for (id, outcome) in produced {
        let (figures, tables) = match outcome {
            Ok(data) => data,
            Err(panic) => {
                eprintln!("[{id}] FAILED: {panic}");
                failures.push(id);
                continue;
            }
        };
        for f in figures {
            if csv {
                println!("# {} — {}", f.id, f.title);
                print!("{}", f.to_csv());
            } else {
                print!("{}", f.render());
            }
            println!();
        }
        for t in tables {
            print!("{}", t.render());
            println!();
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("experiment(s) failed: {}", failures.join(", ")))
    }
}
