//! `mwn` — command-line front end for the multihop-wireless TCP study.
//!
//! ```text
//! mwn repro <experiment|all> [--scale N] [--jobs N] [--shards N] [--csv]   regenerate paper figures/tables
//! mwn sweep [--suite chain|full|traffic|load] [--jobs N] [--out F]  parallel sweep into a JSONL store
//! mwn run [options]                                           run one scenario, print measures
//! mwn stats [options]                                         run instrumented, print metrics
//! mwn list                                                    list reproducible experiments
//! mwn trace [--hops H] [--events N] [--format text|jsonl]     print an annotated event trace
//! mwn check [--suite fast|full] [--bless] [--fuzz N]          invariants + golden-trace conformance
//! mwn bench [--quick] [--check] [--record LABEL]              engine events/sec vs committed baseline
//! mwn traffic [--nodes N] [--flows F] [--profile P]           open-loop workload, per-class FCT percentiles
//! mwn report [--store F] [--csv] [--curve] [--diff F2]        aggregate/diff a sweep's JSONL store
//! ```

use std::process::ExitCode;

mod bench_cmd;
mod check_cmd;
mod report_cmd;
mod repro;
mod run;
mod stats_cmd;
mod sweep;
mod trace_cmd;
mod traffic_cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("repro") => repro::command(&args[1..]),
        Some("sweep") => sweep::command(&args[1..]),
        Some("run") => run::command(&args[1..]),
        Some("stats") => stats_cmd::command(&args[1..]),
        Some("list") => {
            repro::list();
            Ok(())
        }
        Some("trace") => trace_cmd::command(&args[1..]),
        Some("check") => check_cmd::command(&args[1..]),
        Some("bench") => bench_cmd::command(&args[1..]),
        Some("traffic") => traffic_cmd::command(&args[1..]),
        Some("report") => report_cmd::command(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "mwn — TCP over multihop wireless 802.11, reproduction of \
         ElRakabawy/Lindemann/Vernon (DSN 2005)\n\n\
         USAGE:\n\
         \x20 mwn repro <experiment|all> [--scale N] [--jobs N] [--shards N] [--csv]\n\
         \x20     Regenerate a paper figure/table (see `mwn list`).\n\
         \x20     --scale N   batch size multiplier (1 = quick, 25 = paper scale)\n\
         \x20     --jobs N    run experiments on N worker threads (0 = one per CPU)\n\
         \x20     --shards N  engine worker threads per run (results identical)\n\
         \x20     --csv       emit CSV instead of aligned text\n\n\
         \x20 mwn sweep [--suite chain|full|traffic|load] [--jobs N] [--out results.jsonl] [--scale N]\n\
         \x20           [--metrics]\n\
         \x20     Run a suite of experiment jobs on a worker pool, appending\n\
         \x20     results to a JSONL store. Re-running with the same --out\n\
         \x20     resumes: completed jobs are skipped, failed ones retried.\n\
         \x20     --metrics   attach per-batch counter deltas and an engine\n\
         \x20                 profile to every result row\n\n\
         \x20 mwn run [--topology chain|grid|random] [--hops H] [--mbits 2|5.5|11]\n\
         \x20         [--variant vegas|vegas-thin|newreno|newreno-thin|reno|tahoe|optwin|udp]\n\
         \x20         [--seed S] [--scale N] [--shards N]\n\
         \x20     Run one scenario and print the steady-state measures\n\
         \x20     (--shards runs the engine on N workers, same results).\n\n\
         \x20 mwn stats [--topology chain|grid|random|random200|random500]\n\
         \x20           [--hops H] [--rate 2|5.5|11]\n\
         \x20           [--transport <variant>] [--seed S] [--scale N] [--series N]\n\
         \x20     Run one scenario with the observability layer on: unified\n\
         \x20     per-layer counters, per-batch dropping probability (Fig. 14),\n\
         \x20     a cwnd-vs-time series (Figs. 3-4) and the engine profile\n\
         \x20     (random200/random500 run under waypoint mobility and report\n\
         \x20     the medium_tick/medium_lazy timed sections).\n\n\
         \x20 mwn trace [--hops H] [--events N] [--transport <variant>]\n\
         \x20           [--rate 2|5.5|11] [--format text|jsonl]\n\
         \x20     Show the annotated event trace of a chain's first packets.\n\n\
         \x20 mwn check [--suite fast|full] [--bless] [--fuzz N] [--jobs N] [--shards N]\n\
         \x20           [--golden F]\n\
         \x20     Run the canonical scenarios under the cross-layer invariant\n\
         \x20     checker and compare trace digests against the committed\n\
         \x20     golden file. --shards N runs each case on the sharded\n\
         \x20     parallel engine (digests must still match); the full suite\n\
         \x20     adds a determinism stress re-running every case at shard\n\
         \x20     counts 2 and 8 plus a repeat. --bless regenerates the\n\
         \x20     digests (full suite, sequential, refused if any invariant\n\
         \x20     fails); --fuzz N adds N random checked scenarios with\n\
         \x20     shrinking on failure.\n\n\
         \x20 mwn bench [--quick] [--check] [--record LABEL] [--repeat N] [--out F] [--shards N]\n\
         \x20     Measure engine events/sec on the canonical benchmark\n\
         \x20     scenarios and compare against the committed baseline in\n\
         \x20     BENCH_engine.json. --record appends this run to the\n\
         \x20     baseline file; --check fails on a >20% regression\n\
         \x20     (CI sets MWN_BENCH_SKIP=1 on machines too noisy to gate).\n\n\
         \x20 mwn traffic [--nodes N] [--flows F] [--profile web|mixed|heavy]\n\
         \x20             [--load F] [--transport <variant>] [--rate 2|5.5|11]\n\
         \x20             [--seed S] [--reps R] [--jobs N] [--deadline SECS] [--shards N]\n\
         \x20             [--json]\n\
         \x20     Drive an open-loop workload (finite flows, flow churn) over\n\
         \x20     a connected random topology until every flow completes, and\n\
         \x20     report per-class FCT percentiles, goodput and the journal\n\
         \x20     digest (bit-identical across --jobs worker counts).\n\n\
         \x20 mwn report [--store results.jsonl] [--scenario S] [--variant V] [--seed N]\n\
         \x20            [--csv] [--curve] [--diff OTHER.jsonl]\n\
         \x20     Aggregate a sweep's JSONL store: per-cell goodput, summed\n\
         \x20     drop ledgers and averaged FCT percentiles across\n\
         \x20     replications, as aligned tables or CSV. --curve renders the\n\
         \x20     FCT-vs-offered-load relation from a `--suite load` sweep;\n\
         \x20     --diff compares two stores cell by cell (A/B).\n\n\
         \x20 mwn list\n\
         \x20     List the reproducible experiments."
    );
}

/// Shared argument helpers.
pub(crate) mod args {
    use mwn::{SimDuration, Transport};
    use mwn_phy::DataRate;

    /// Parses a bandwidth argument (Mbit/s) into a PHY data rate.
    pub fn parse_rate(mbits: &str) -> Result<DataRate, String> {
        match mbits {
            "2" => Ok(DataRate::MBPS_2),
            "5.5" => Ok(DataRate::MBPS_5_5),
            "11" => Ok(DataRate::MBPS_11),
            other => Err(format!(
                "unsupported bandwidth {other:?} (use 2, 5.5 or 11)"
            )),
        }
    }

    /// Parses a transport-variant name shared by `run`, `stats` and
    /// `trace`.
    pub fn parse_transport(variant: &str) -> Result<Transport, String> {
        match variant {
            "vegas" => Ok(Transport::vegas(2)),
            "vegas-thin" => Ok(Transport::vegas_thinning(2)),
            "newreno" => Ok(Transport::newreno()),
            "newreno-thin" => Ok(Transport::newreno_thinning()),
            "reno" => Ok(Transport::reno()),
            "tahoe" => Ok(Transport::tahoe()),
            "optwin" => Ok(Transport::newreno_optimal_window(3)),
            "udp" => Ok(Transport::paced_udp(SimDuration::from_millis(2))),
            other => Err(format!("unknown variant {other:?}")),
        }
    }

    /// Extracts `--key value` from `argv`, returning the remaining args.
    pub fn take_value(argv: &mut Vec<String>, key: &str) -> Result<Option<String>, String> {
        if let Some(pos) = argv.iter().position(|a| a == key) {
            if pos + 1 >= argv.len() {
                return Err(format!("{key} needs a value"));
            }
            let value = argv.remove(pos + 1);
            argv.remove(pos);
            Ok(Some(value))
        } else {
            Ok(None)
        }
    }

    /// Extracts a boolean `--flag`.
    pub fn take_flag(argv: &mut Vec<String>, key: &str) -> bool {
        if let Some(pos) = argv.iter().position(|a| a == key) {
            argv.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn parse<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
        value
            .parse()
            .map_err(|_| format!("invalid {what}: {value:?}"))
    }

    pub fn reject_leftovers(argv: &[String]) -> Result<(), String> {
        if let Some(first) = argv.first() {
            Err(format!("unrecognized argument {first:?}"))
        } else {
            Ok(())
        }
    }
}
