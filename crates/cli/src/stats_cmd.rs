//! `mwn stats` — run one scenario with the observability layer on and
//! print the unified metrics: per-layer counters, per-batch dropping
//! probability (paper Fig. 14), a cwnd-vs-time series (Figs. 3–4) and the
//! engine's self-profile.

use std::time::Instant;

use mwn::experiment::{run_instrumented, ObsConfig};
use mwn::{ExperimentScale, ProbeKind, ProbeSample, Scenario};
use mwn_obs::{CounterBlock, DropReason};

use crate::args;

/// Probe samples retained for the time-series section.
const PROBE_CAPACITY: usize = 1 << 18;

pub fn command(rest: &[String]) -> Result<(), String> {
    let mut argv: Vec<String> = rest.to_vec();
    let topology = args::take_value(&mut argv, "--topology")?.unwrap_or_else(|| "chain".into());
    let hops: usize = match args::take_value(&mut argv, "--hops")? {
        Some(v) => args::parse(&v, "hop count")?,
        None => 6,
    };
    let rate = args::take_value(&mut argv, "--rate")?.unwrap_or_else(|| "2".into());
    let variant = args::take_value(&mut argv, "--transport")?.unwrap_or_else(|| "newreno".into());
    let seed: u64 = match args::take_value(&mut argv, "--seed")? {
        Some(v) => args::parse(&v, "seed")?,
        None => 42,
    };
    let mult: u64 = match args::take_value(&mut argv, "--scale")? {
        Some(v) => args::parse(&v, "scale")?,
        None => 1,
    };
    let series: usize = match args::take_value(&mut argv, "--series")? {
        Some(v) => args::parse(&v, "series length")?,
        None => 24,
    };
    args::reject_leftovers(&argv)?;
    if hops == 0 {
        return Err("--hops must be positive".into());
    }
    let bandwidth = args::parse_rate(&rate)?;
    let transport = args::parse_transport(&variant)?;

    let scenario = match topology.as_str() {
        "chain" => Scenario::chain(hops, bandwidth, transport, seed),
        "grid" => Scenario::grid6(bandwidth, transport, seed),
        "random" => Scenario::random10(bandwidth, transport, seed),
        // The large presets run under waypoint mobility (like the
        // `random200-mobility` / `random500-mobility` benches), so the
        // profile includes the `medium_tick` timed section (and
        // `medium_lazy` for the transmission-time rebuilds).
        "random200" | "random500" => {
            let nodes = if topology == "random200" { 200 } else { 500 };
            let mut s = Scenario::random_large(nodes, bandwidth, transport, seed);
            let (width, height) = mwn::topology::random_large_dims(nodes);
            s.mobility = Some(mwn::mobility::RandomWaypoint {
                width,
                height,
                min_speed: 1.0,
                max_speed: 10.0,
                pause: mwn::SimDuration::from_secs(2),
                tick: mwn::SimDuration::from_millis(100),
            });
            s
        }
        other => {
            return Err(format!(
                "unknown topology {other:?} (chain|grid|random|random200|random500)"
            ))
        }
    };
    let scale = ExperimentScale::scaled(mult);

    eprintln!(
        "{} | {} nodes, {} flow(s), {bandwidth}, seed {seed}, {} batches x {} packets",
        scenario.flows[0].transport.label(),
        scenario.topology.len(),
        scenario.flows.len(),
        scale.batches,
        scale.batch_packets,
    );

    let wall = Instant::now();
    let r = run_instrumented(&scenario, scale, ObsConfig::full(PROBE_CAPACITY));
    let wall_secs = wall.elapsed().as_secs_f64();
    let m = r
        .metrics
        .as_ref()
        .expect("instrumented run reports metrics");

    println!("engine profile");
    println!("  events processed {:>12}", m.profile.events_processed());
    println!(
        "  events/sec       {:>12.0}  (wall {:.2} s)",
        m.profile.events_per_sec(wall_secs),
        wall_secs
    );
    println!("  peak event queue {:>12}", m.profile.peak_queue_depth());
    for (kind, count) in m.profile.by_kind() {
        println!("    {kind:<18} {count:>10}");
    }
    for (kind, invocations, secs) in m.profile.timed() {
        println!(
            "  {kind:<18} {invocations:>10} calls  {secs:>8.3} s  ({:.0}% of wall)",
            100.0 * secs / wall_secs.max(f64::MIN_POSITIVE)
        );
    }

    let totals = m.totals.node_totals();
    println!();
    println!("per-layer counter totals (all nodes, whole run)");
    print_block("phy", &totals.phy);
    print_block("mac", &totals.mac);
    print_block("aodv", &totals.aodv);
    println!(
        "  gauges: route_table_size {} ifq_depth {}",
        totals.route_table_size, totals.ifq_depth
    );

    println!();
    println!("transport counter totals (per flow)");
    for (i, f) in m.totals.flows.iter().enumerate() {
        if let Some(tx) = &f.sender {
            print_block(&format!("f{i} tx"), tx);
        }
        if let Some(rx) = &f.sink {
            print_block(&format!("f{i} rx"), rx);
        }
    }

    if let Some(ledger) = &m.drops {
        println!();
        println!(
            "drop ledger — {} dropped, {} terminal (* = takes custody)",
            ledger.grand_total(),
            ledger.terminal_total()
        );
        if ledger.is_empty() {
            println!("  (no drops recorded)");
        } else {
            let classes = ledger.class_names();
            print!("  {:<26}", "layer / reason");
            for name in classes {
                print!(" {name:>12}");
            }
            println!(" {:>12}", "total");
            let totals = ledger.totals();
            let mut last_layer = "";
            for reason in DropReason::ALL {
                if totals[reason.index()] == 0 {
                    continue;
                }
                if reason.layer() != last_layer {
                    last_layer = reason.layer();
                    println!("  {last_layer}");
                }
                let mark = if reason.is_terminal() { "*" } else { "" };
                print!("    {:<24}", format!("{}{mark}", reason.label()));
                for c in 0..classes.len() {
                    print!(" {:>12}", ledger.class_counts(c)[reason.index()]);
                }
                println!(" {:>12}", totals[reason.index()]);
            }
        }
    }
    if let Some(cons) = &r.conservation {
        println!();
        println!("conservation audit: {cons}");
    }

    println!();
    println!("link-layer dropping probability per batch (Fig. 14)");
    for (i, b) in m.batches.iter().enumerate() {
        let tag = if i == 0 { " (transient)" } else { "" };
        println!(
            "  batch {i:<2} [{:>8.1}..{:>8.1} s]  {:.4}{tag}",
            b.start.as_secs_f64(),
            b.end.as_secs_f64(),
            b.drop_probability()
        );
    }
    println!(
        "  steady-state mean (batch-means over measured batches): {:.4}",
        r.drop_probability.mean
    );

    let cwnd: Vec<&ProbeSample> = m
        .probes
        .iter()
        .filter(|p| p.kind == ProbeKind::Cwnd && p.id == 0)
        .collect();
    println!();
    println!(
        "cwnd vs time, flow 0 (Figs. 3-4) — {} change points, showing {}",
        cwnd.len(),
        series.min(cwnd.len())
    );
    println!("  {:>10}  {:>7}", "t (s)", "cwnd");
    for s in downsample(&cwnd, series) {
        println!("  {:>10.3}  {:>7.2}", s.time.as_secs_f64(), s.value);
    }
    Ok(())
}

fn print_block<B: CounterBlock>(label: &str, block: &B) {
    print!("  {label:<6}");
    for (name, v) in B::field_names().iter().zip(block.values()) {
        print!(" {name} {v}");
    }
    println!();
}

/// Evenly thins `samples` down to at most `limit` entries, always keeping
/// the first and last so the series' extent is visible.
fn downsample<'a>(samples: &[&'a ProbeSample], limit: usize) -> Vec<&'a ProbeSample> {
    if limit == 0 || samples.is_empty() {
        return Vec::new();
    }
    if samples.len() <= limit {
        return samples.to_vec();
    }
    let last = samples.len() - 1;
    let picks = limit.max(2);
    (0..picks)
        .map(|i| samples[i * last / (picks - 1)])
        .collect()
}
