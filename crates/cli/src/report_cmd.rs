//! `mwn report` — analytics over a sweep's JSONL results store: filter
//! rows, aggregate replications per cell (drop ledgers summed, goodput
//! and FCT percentiles averaged), and render aligned tables or CSV.
//! `--curve` extracts the FCT-vs-offered-load relation from a
//! `--suite load` sweep; `--diff` compares two stores cell by cell.

use std::path::Path;

use mwn_runner::query::{aggregate, GroupSummary, RowFilter, StoreView};

use crate::args;

pub fn command(rest: &[String]) -> Result<(), String> {
    let mut argv: Vec<String> = rest.to_vec();
    let store = args::take_value(&mut argv, "--store")?.unwrap_or_else(|| "results.jsonl".into());
    let filter = RowFilter {
        scenario: args::take_value(&mut argv, "--scenario")?,
        variant: args::take_value(&mut argv, "--variant")?,
        seed: match args::take_value(&mut argv, "--seed")? {
            Some(v) => Some(args::parse(&v, "seed")?),
            None => None,
        },
    };
    let csv = args::take_flag(&mut argv, "--csv");
    let curve = args::take_flag(&mut argv, "--curve");
    let diff = args::take_value(&mut argv, "--diff")?;
    args::reject_leftovers(&argv)?;

    let view = load(&store)?;
    let rows = view.select(&filter);
    if rows.is_empty() {
        return Err(format!(
            "no completed rows in {store:?} match the filter (store has {} row(s))",
            view.rows.len()
        ));
    }
    let failed = view.rows.iter().filter(|r| r.status == "failed").count();
    eprintln!(
        "{store}: {} completed row(s) selected of {} ({failed} failed)",
        rows.len(),
        view.rows.len(),
    );
    let groups = aggregate(&rows);

    if let Some(other_path) = diff {
        let other_view = load(&other_path)?;
        let other_rows = other_view.select(&filter);
        let other_groups = aggregate(&other_rows);
        print_diff(&groups, &other_groups, &store, &other_path, csv);
        return Ok(());
    }
    if curve {
        print_curve(&groups, csv);
        return Ok(());
    }
    if csv {
        print_csv(&groups);
    } else {
        print_tables(&groups);
    }
    Ok(())
}

fn load(path: &str) -> Result<StoreView, String> {
    let view = StoreView::load(Path::new(path))?;
    if view.rows.is_empty() {
        return Err(format!(
            "{path:?} has no result rows (run `mwn sweep --out {path}` first)"
        ));
    }
    Ok(view)
}

fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".into(),
    }
}

/// The summary + drop-ledger + FCT tables (the default output).
fn print_tables(groups: &[GroupSummary]) {
    println!(
        "{:<28} {:<16} {:>5} {:>4} {:>12} {:>9} {:>9}",
        "scenario", "variant", "load", "reps", "goodput_kbps", "drops", "terminal"
    );
    for g in groups {
        println!(
            "{:<28} {:<16} {:>5} {:>4} {:>12} {:>9} {:>9}",
            g.scenario,
            g.variant,
            fmt_opt(g.load, 2),
            g.reps,
            fmt_opt(g.goodput_kbps, 1),
            g.drop_total,
            g.drop_terminal
        );
    }

    let with_drops: Vec<&GroupSummary> = groups
        .iter()
        .filter(|g| !g.drop_reasons.is_empty())
        .collect();
    if !with_drops.is_empty() {
        println!();
        println!("drop ledger by reason (summed over replications)");
        for g in with_drops {
            println!("  {} | {}", g.scenario, g.variant);
            // One column per ledger class that dropped anything, plus a
            // total; reasons down the side.
            let classes = &g.drop_classes;
            if !classes.is_empty() {
                print!("    {:<22}", "reason");
                for (name, _) in classes {
                    print!(" {name:>12}");
                }
                println!(" {:>12}", "total");
            }
            for (reason, n) in &g.drop_reasons {
                print!("    {reason:<22}");
                for (_, counts) in classes {
                    print!(" {:>12}", counts.get(reason).copied().unwrap_or(0));
                }
                println!(" {n:>12}");
            }
        }
    }

    let with_fct: Vec<&GroupSummary> = groups.iter().filter(|g| !g.fct.is_empty()).collect();
    if !with_fct.is_empty() {
        println!();
        println!("flow completion times (percentiles averaged over replications)");
        println!(
            "  {:<28} {:<16} {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "scenario", "variant", "class", "arrivals", "done", "p50_s", "p95_s", "p99_s"
        );
        for g in with_fct {
            for c in &g.fct {
                println!(
                    "  {:<28} {:<16} {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    g.scenario,
                    g.variant,
                    c.class,
                    c.arrivals,
                    c.completions,
                    fmt_opt(c.fct_p50_secs, 3),
                    fmt_opt(c.fct_p95_secs, 3),
                    fmt_opt(c.fct_p99_secs, 3)
                );
            }
        }
    }
}

/// Flat CSV: one line per (cell, class); closed-loop cells emit one
/// line with an empty class column.
fn print_csv(groups: &[GroupSummary]) {
    println!(
        "scenario,variant,load,reps,goodput_kbps,drops_total,drops_terminal,class,arrivals,completions,fct_p50_secs,fct_p95_secs,fct_p99_secs"
    );
    let csv_opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
    for g in groups {
        let head = format!(
            "{},{},{},{},{},{},{}",
            g.scenario,
            g.variant,
            csv_opt(g.load),
            g.reps,
            csv_opt(g.goodput_kbps),
            g.drop_total,
            g.drop_terminal
        );
        if g.fct.is_empty() {
            println!("{head},,,,,,");
        } else {
            for c in &g.fct {
                println!(
                    "{head},{},{},{},{},{},{}",
                    c.class,
                    c.arrivals,
                    c.completions,
                    csv_opt(c.fct_p50_secs),
                    csv_opt(c.fct_p95_secs),
                    csv_opt(c.fct_p99_secs)
                );
            }
        }
    }
}

/// FCT vs offered load, the curve `TrafficModel::with_load` exists
/// for: traffic cells sorted by (variant, load), overall completion
/// percentiles per point.
fn print_curve(groups: &[GroupSummary], csv: bool) {
    let mut points: Vec<&GroupSummary> = groups.iter().filter(|g| g.load.is_some()).collect();
    if points.is_empty() {
        eprintln!("no traffic cells selected; --curve needs a `--suite load` (or traffic) sweep");
        return;
    }
    points.sort_by(|a, b| {
        (a.variant.as_str(), a.load)
            .partial_cmp(&(b.variant.as_str(), b.load))
            .expect("loads are finite")
    });
    if csv {
        println!("variant,load,reps,arrivals,completions,fct_p50_secs,fct_p95_secs,fct_p99_secs,goodput_kbps");
    } else {
        println!(
            "FCT vs offered load (per-class percentiles averaged over classes and replications)"
        );
        println!(
            "{:<16} {:>5} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
            "variant",
            "load",
            "reps",
            "arrivals",
            "done",
            "p50_s",
            "p95_s",
            "p99_s",
            "goodput_kbps"
        );
    }
    for g in points {
        // Weight class percentiles by completions when collapsing to one
        // per-point number.
        let mut arrivals = 0;
        let mut done = 0;
        let mut acc = [(0.0f64, 0u64); 3];
        for c in &g.fct {
            arrivals += c.arrivals;
            done += c.completions;
            for (slot, v) in [c.fct_p50_secs, c.fct_p95_secs, c.fct_p99_secs]
                .into_iter()
                .enumerate()
            {
                if let Some(x) = v {
                    acc[slot].0 += x * c.completions as f64;
                    acc[slot].1 += c.completions;
                }
            }
        }
        let pooled = |slot: usize| {
            let (sum, n) = acc[slot];
            (n > 0).then(|| sum / n as f64)
        };
        let load = g.load.expect("filtered to traffic cells");
        if csv {
            let csv_opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
            println!(
                "{},{load},{},{arrivals},{done},{},{},{},{}",
                g.variant,
                g.reps,
                csv_opt(pooled(0)),
                csv_opt(pooled(1)),
                csv_opt(pooled(2)),
                csv_opt(g.goodput_kbps)
            );
        } else {
            println!(
                "{:<16} {:>5.2} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
                g.variant,
                load,
                g.reps,
                arrivals,
                done,
                fmt_opt(pooled(0), 3),
                fmt_opt(pooled(1), 3),
                fmt_opt(pooled(2), 3),
                fmt_opt(g.goodput_kbps, 1)
            );
        }
    }
}

/// Cell-by-cell A/B comparison of two stores.
fn print_diff(a: &[GroupSummary], b: &[GroupSummary], a_path: &str, b_path: &str, csv: bool) {
    if csv {
        println!("cell,goodput_a_kbps,goodput_b_kbps,goodput_delta_pct,drops_a,drops_b");
    } else {
        println!("A = {a_path}");
        println!("B = {b_path}");
        println!(
            "{:<52} {:>12} {:>12} {:>8} {:>9} {:>9}",
            "cell", "goodput_A", "goodput_B", "Δ%", "drops_A", "drops_B"
        );
    }
    let mut b_seen = vec![false; b.len()];
    for ga in a {
        let gb = b.iter().position(|g| g.cell == ga.cell);
        if let Some(i) = gb {
            b_seen[i] = true;
        }
        let gb = gb.map(|i| &b[i]);
        let (gp_a, gp_b) = (ga.goodput_kbps, gb.and_then(|g| g.goodput_kbps));
        let delta = match (gp_a, gp_b) {
            (Some(x), Some(y)) if x.abs() > f64::EPSILON => Some(100.0 * (y - x) / x),
            _ => None,
        };
        let drops_b = gb
            .map(|g| g.drop_total.to_string())
            .unwrap_or_else(|| "-".into());
        if csv {
            let csv_opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
            println!(
                "{},{},{},{},{},{}",
                ga.cell,
                csv_opt(gp_a),
                csv_opt(gp_b),
                csv_opt(delta),
                ga.drop_total,
                gb.map(|g| g.drop_total.to_string()).unwrap_or_default()
            );
        } else {
            println!(
                "{:<52} {:>12} {:>12} {:>8} {:>9} {:>9}",
                ga.cell,
                fmt_opt(gp_a, 1),
                fmt_opt(gp_b, 1),
                fmt_opt(delta, 1),
                ga.drop_total,
                drops_b
            );
        }
    }
    let only_b = b.iter().zip(&b_seen).filter(|(_, seen)| !**seen).count();
    if only_b > 0 {
        eprintln!("({only_b} cell(s) present only in B)");
    }
}
