//! `mwn bench` — engine-throughput benchmark with a committed baseline.
//!
//! Runs a fixed set of canonical scenarios with [`mwn::EngineProfile`]
//! self-profiling enabled, reports wall-clock events per second for each,
//! and maintains `BENCH_engine.json` — the committed perf trajectory of
//! the event engine. Every entry records the same scenarios with the same
//! workloads, so entries are comparable row-by-row across commits.
//!
//! ```text
//! mwn bench                      run the full set, compare vs the baseline
//! mwn bench --quick              run the quick subset only (CI gate)
//! mwn bench --check              exit non-zero on >20% events/sec regression
//! mwn bench --record LABEL       append this run to BENCH_engine.json
//! mwn bench --repeat N           best-of-N wall time per scenario
//! mwn bench --out FILE           baseline path (default BENCH_engine.json)
//! mwn bench --shards N           run the engine on N shard workers
//! mwn bench --case SUBSTR        run only cases whose name contains SUBSTR
//! ```
//!
//! `--shards` runs the sharded parallel engine (results are digest-
//! identical to the sequential oracle, so events/sec is the only thing
//! that can move). Sharded entries get distinct labels when recorded, so
//! `--check` always compares like against like.

use std::time::Instant;

use mwn::mobility::RandomWaypoint;
use mwn::{
    topology, AodvConfig, FlowSpec, NodeId, Scenario, SimDuration, SimTime, TrafficModel, Transport,
};
use mwn_obs::json::Obj;
use mwn_phy::DataRate;

use crate::args::{parse, reject_leftovers, take_flag, take_value};

/// Version tag of the `BENCH_engine.json` schema.
const SCHEMA: &str = "mwn-bench-engine/1";

/// Relative events/sec drop (vs the committed baseline) that fails
/// `--check`.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// One benchmark scenario. Workloads are fixed forever: changing a target
/// or seed would silently invalidate every committed baseline entry.
struct BenchCase {
    name: &'static str,
    /// Included in the `--quick` CI subset.
    quick: bool,
    /// Delivery target passed to the run.
    target: u64,
    /// Simulated-time safety deadline (never binding on a healthy engine).
    deadline: SimDuration,
    build: fn() -> Scenario,
}

/// The 50-node random topology shared by the two heaviest cases: 50 nodes
/// on a 1500 × 500 m² field with five deterministic long TCP flows.
fn random50(transport: Transport, mobility: bool) -> Scenario {
    let seed = 4242;
    let topo = topology::random(50, 1500.0, 500.0, 250.0, seed);
    // Deterministic endpoints (no RNG): five src → src+25 pairs. The
    // topology is connected, so every pair is reachable.
    let flows = (0..5u32)
        .map(|i| FlowSpec {
            src: NodeId(i * 3),
            dst: NodeId(i * 3 + 25),
            transport,
        })
        .collect();
    let mut s = Scenario::new(topo, flows, DataRate::MBPS_2, seed);
    if mobility {
        s.mobility = Some(RandomWaypoint {
            width: 1500.0,
            height: 500.0,
            min_speed: 1.0,
            max_speed: 10.0,
            pause: SimDuration::from_secs(2),
            tick: SimDuration::from_millis(100),
        });
    }
    s
}

/// A large random-waypoint scenario: the `random_large` preset (200 or
/// 500 nodes at the paper's density) with ten random flows, every node
/// roaming the full field. These cases exercise the spatial-grid medium's
/// incremental `move_nodes` path at scale.
fn random_large_mobility(nodes: usize, transport: Transport) -> Scenario {
    let seed = 4242;
    let mut s = Scenario::random_large(nodes, DataRate::MBPS_2, transport, seed);
    let (width, height) = topology::random_large_dims(nodes);
    s.mobility = Some(RandomWaypoint {
        width,
        height,
        min_speed: 1.0,
        max_speed: 10.0,
        pause: SimDuration::from_secs(2),
        tick: SimDuration::from_millis(100),
    });
    s
}

/// A city-scale scenario: `nodes` at the paper's density with the
/// expanding-ring AODV preset and ten deterministic *local* TCP flows
/// (each source paired with a node 2.2–2.8 radio ranges away, ~3 hops).
/// City traffic is local by construction — at these field sizes a random
/// cross-field pair would exceed the 64-hop default TTL anyway — so these
/// cases measure discovery plus steady forwarding, not undeliverable
/// paths. The geometric pairing needs no BFS, keeping 50k-node setup
/// cheap. The topology is a ≥ 99 % giant-component draw
/// ([`topology::random_large_giant`]): past ~10k nodes at the paper's
/// density a fully connected field does not exist, and the delivery
/// target spans all ten flows, so an unlucky endpoint in an isolated
/// pocket cannot stall the run.
fn city(nodes: usize, mobility: bool) -> Scenario {
    let seed = 4242;
    let topo = topology::random_large_giant(nodes, seed);
    let positions = topo.positions();
    let flows = (0..10usize)
        .map(|i| {
            let src = (i * nodes / 10) as u32;
            let dst = (0..nodes as u32)
                .find(|&d| {
                    let m = positions[src as usize].distance_to(positions[d as usize]);
                    (550.0..700.0).contains(&m)
                })
                .expect("paper density guarantees a ~3-hop partner");
            FlowSpec {
                src: NodeId(src),
                dst: NodeId(dst),
                transport: Transport::newreno(),
            }
        })
        .collect();
    let mut s = Scenario::new(topo, flows, DataRate::MBPS_11, seed);
    s.aodv = AodvConfig::city();
    if mobility {
        let (width, height) = topology::random_large_dims(nodes);
        s.mobility = Some(RandomWaypoint {
            width,
            height,
            min_speed: 1.0,
            max_speed: 10.0,
            pause: SimDuration::from_secs(2),
            tick: SimDuration::from_millis(100),
        });
    }
    s
}

fn cases() -> Vec<BenchCase> {
    vec![
        BenchCase {
            name: "chain8-newreno-2m",
            quick: true,
            target: 4_000,
            deadline: SimDuration::from_secs(3_000),
            build: || Scenario::chain(8, DataRate::MBPS_2, Transport::newreno(), 1),
        },
        BenchCase {
            name: "grid6-newreno-11m",
            quick: true,
            target: 12_000,
            deadline: SimDuration::from_secs(3_000),
            build: || Scenario::grid6(DataRate::MBPS_11, Transport::newreno(), 1),
        },
        BenchCase {
            name: "random50-vegas-2m",
            quick: true,
            target: 12_000,
            deadline: SimDuration::from_secs(3_000),
            build: || random50(Transport::vegas(2), false),
        },
        BenchCase {
            name: "random50-mobility-newreno-2m",
            quick: false,
            target: 6_000,
            deadline: SimDuration::from_secs(3_000),
            build: || random50(Transport::newreno(), true),
        },
        BenchCase {
            name: "random200-mobility",
            quick: true,
            target: 3_000,
            deadline: SimDuration::from_secs(1_000),
            build: || random_large_mobility(200, Transport::newreno()),
        },
        BenchCase {
            name: "random500-mobility",
            quick: false,
            target: 3_000,
            deadline: SimDuration::from_secs(1_000),
            build: || random_large_mobility(500, Transport::newreno()),
        },
        // City-scale tier (PR 9): the flat per-node engine on 5k–50k
        // nodes. random5k adds full-field random-waypoint mobility; the
        // 20k and 50k cases are static and mostly measure discovery cost
        // and bytes/node at scale. None are quick — the 50k topology
        // alone takes a while to sample into a connected field.
        BenchCase {
            name: "random5k-mobility",
            quick: false,
            target: 3_000,
            deadline: SimDuration::from_secs(1_000),
            build: || city(5_000, true),
        },
        BenchCase {
            name: "random20k",
            quick: false,
            target: 3_000,
            deadline: SimDuration::from_secs(1_000),
            build: || city(20_000, false),
        },
        BenchCase {
            name: "random50k",
            quick: false,
            target: 1_500,
            deadline: SimDuration::from_secs(1_000),
            build: || city(50_000, false),
        },
        // City-scale *mobility* tier (PR 10): the lazy epoch-stamped
        // medium makes the tick O(moved nodes), so full-field
        // random-waypoint mobility is affordable at 20k and 50k. Same
        // targets as the static cousins for row comparability.
        BenchCase {
            name: "random20k-mobility",
            quick: false,
            target: 3_000,
            deadline: SimDuration::from_secs(1_000),
            build: || city(20_000, true),
        },
        BenchCase {
            name: "random50k-mobility",
            quick: false,
            target: 1_500,
            deadline: SimDuration::from_secs(1_000),
            build: || city(50_000, true),
        },
        // Open-loop flow churn: a 100 000-flow web workload (at a
        // sustainable 20% load) spawning, transferring and vacating
        // flow-table slots; the target samples the first ~2 700
        // transactions. Exercises the traffic engine, slab recycling and
        // per-flow timer management rather than steady-state forwarding.
        BenchCase {
            name: "traffic100k",
            quick: true,
            target: 20_000,
            deadline: SimDuration::from_secs(3_000),
            build: || {
                Scenario::open_loop(
                    20,
                    TrafficModel::web(100_000).with_load(0.2),
                    Transport::newreno(),
                    DataRate::MBPS_11,
                    4242,
                )
            },
        },
    ]
}

/// One measured scenario run.
struct Measurement {
    name: &'static str,
    events: u64,
    peak_queue_depth: usize,
    delivered: u64,
    sim_secs: f64,
    /// Best (smallest) wall time over the repeats.
    wall_secs: f64,
    /// Wall seconds the best run spent in the mobility tick proper:
    /// position diffs, grid relocation and epoch stamping (0 for static
    /// scenarios). `medium_tick` profile bucket.
    medium_tick_secs: f64,
    /// Wall seconds the best run spent in lazy transmission-time effect
    /// rebuilds. `medium_lazy` profile bucket.
    medium_lazy_secs: f64,
    /// Parallel bursts the best run executed (0 on the sequential path).
    bursts: u64,
    /// Accounted per-node engine state (structs + tracked heap) from
    /// [`mwn::Network::bytes_per_node`], measured at the end of the run.
    bytes_per_node: u64,
    /// Process peak RSS (`VmHWM`) in bytes, `None` where `/proc` is
    /// unavailable. Cumulative across the process, so within one bench
    /// invocation it only ever grows case-over-case.
    peak_rss_bytes: Option<u64>,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Total medium wall seconds: tick bookkeeping plus lazy rebuilds —
    /// the same quantity the pre-split `medium_recompute` bucket held,
    /// so entries stay comparable row-by-row across the PR 10 boundary.
    fn medium_secs(&self) -> f64 {
        self.medium_tick_secs + self.medium_lazy_secs
    }

    /// Medium share of wall time in percent (the at-a-glance regression
    /// signal for the lazy path).
    fn medium_pct(&self) -> f64 {
        if self.wall_secs > 0.0 {
            100.0 * self.medium_secs() / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        let obj = Obj::new()
            .str("name", self.name)
            .u64("events", self.events)
            .usize("peak_queue_depth", self.peak_queue_depth)
            .u64("delivered", self.delivered)
            .f64("sim_secs", self.sim_secs)
            .f64("wall_secs", self.wall_secs)
            .f64("medium_recompute_secs", self.medium_secs())
            .f64("medium_tick_secs", self.medium_tick_secs)
            .f64("medium_lazy_secs", self.medium_lazy_secs)
            .u64("bursts", self.bursts)
            .u64("bytes_per_node", self.bytes_per_node);
        let obj = match self.peak_rss_bytes {
            Some(b) => obj.u64("peak_rss_bytes", b),
            None => obj.raw("peak_rss_bytes", "null"),
        };
        obj.f64("events_per_sec", self.events_per_sec()).finish()
    }
}

fn run_case(case: &BenchCase, repeat: u32, shards: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for rep in 0..repeat.max(1) {
        let scenario = (case.build)();
        if rep == 0 && shards > 1 && scenario.traffic.is_some() {
            // Not silent: the engine accepts --shards but open-loop flow
            // churn re-keys slots mid-burst, so it runs sequentially.
            println!(
                "  note: {}: open-loop traffic runs on the sequential path \
                 (bursts will read 0)",
                case.name
            );
        }
        let mut net = scenario.build();
        net.set_shards(shards);
        net.enable_profiling();
        let started = Instant::now();
        net.run_until_delivered(case.target, SimTime::ZERO + case.deadline);
        let wall_secs = started.elapsed().as_secs_f64();
        let profile = net.profile().expect("profiling enabled above");
        if std::env::var_os("MWN_BENCH_HISTO").is_some() {
            for (kind, count) in profile.by_kind() {
                eprintln!("    {kind:<18} {count:>12}");
            }
        }
        let m = Measurement {
            name: case.name,
            events: profile.events_processed(),
            peak_queue_depth: profile.peak_queue_depth(),
            delivered: net.total_delivered(),
            sim_secs: net.now().as_secs_f64(),
            wall_secs,
            medium_tick_secs: profile.timed_secs("medium_tick"),
            medium_lazy_secs: profile.timed_secs("medium_lazy"),
            bursts: net.bursts_run(),
            bytes_per_node: net.bytes_per_node(),
            peak_rss_bytes: peak_rss_bytes(),
        };
        if best.as_ref().is_none_or(|b| m.wall_secs < b.wall_secs) {
            best = Some(m);
        }
    }
    best.expect("repeat >= 1")
}

/// Peak resident set size of this process in bytes — the `VmHWM` line of
/// Linux's `/proc/self/status` — or `None` wherever that interface does
/// not exist (recorded as JSON `null` so the schema stays stable).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

pub fn command(argv: &[String]) -> Result<(), String> {
    let mut argv = argv.to_vec();
    let quick = take_flag(&mut argv, "--quick");
    let check = take_flag(&mut argv, "--check");
    let record = take_value(&mut argv, "--record")?;
    let case_filter = take_value(&mut argv, "--case")?;
    let out = take_value(&mut argv, "--out")?.unwrap_or_else(|| "BENCH_engine.json".to_string());
    let repeat: u32 = match take_value(&mut argv, "--repeat")? {
        Some(v) => parse(&v, "repeat count")?,
        None => 1,
    };
    let shards: usize = match take_value(&mut argv, "--shards")? {
        Some(v) => parse::<usize>(&v, "shard count")?.max(1),
        None => 1,
    };
    reject_leftovers(&argv)?;
    if record.is_some() && quick {
        return Err("--record requires the full scenario set (drop --quick)".to_string());
    }
    if record.is_some() && case_filter.is_some() {
        return Err("--record requires the full scenario set (drop --case)".to_string());
    }
    // Sharded recordings get a `-sN` label suffix so sequential and
    // sharded trajectories never silently become each other's baseline.
    let record = record.map(|l| {
        if shards > 1 {
            format!("{l}-s{shards}")
        } else {
            l
        }
    });

    let baseline = std::fs::read_to_string(&out).ok();
    let baseline_eps = baseline.as_deref().map(last_entry_eps);

    let selected: Vec<BenchCase> = cases()
        .into_iter()
        .filter(|c| !quick || c.quick)
        .filter(|c| {
            case_filter
                .as_deref()
                .is_none_or(|pat| c.name.contains(pat))
        })
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "--case {:?} matches no benchmark scenario",
            case_filter.as_deref().unwrap_or_default()
        ));
    }
    println!(
        "running {} scenario(s), best of {} run(s) each, {} shard(s):",
        selected.len(),
        repeat.max(1),
        shards
    );

    let mut measurements = Vec::new();
    let mut worst_ratio: Option<(f64, &'static str)> = None;
    for case in &selected {
        let m = run_case(case, repeat, shards);
        let eps = m.events_per_sec();
        let vs = baseline_eps
            .as_ref()
            .and_then(|b| b.iter().find(|(n, _)| n == m.name))
            .map(|&(_, base)| eps / base);
        // Derived medium share of wall: a column on every row (static
        // cases read 0.0%), so lazy-path regressions are readable at a
        // glance without jq over BENCH_engine.json.
        let medium = format!("  medium {:>4.1}%", m.medium_pct());
        // Sharded runs always show the burst count — "bursts 0" under
        // --shards N is exactly the sequential-fallback signal.
        let bursts = if m.bursts > 0 || shards > 1 {
            format!("  bursts {}", m.bursts)
        } else {
            String::new()
        };
        let mut mem = format!("  {:.1} KiB/node", m.bytes_per_node as f64 / 1024.0);
        if let Some(rss) = m.peak_rss_bytes {
            mem.push_str(&format!("  rss {:.0} MiB", rss as f64 / (1024.0 * 1024.0)));
        }
        match vs {
            Some(r) => {
                println!(
                    "  {:<30} {:>12} events {:>8.2} s {:>12.0} ev/s  ({:.2}x vs baseline){mem}{medium}{bursts}",
                    m.name, m.events, m.wall_secs, eps, r
                );
                if worst_ratio.is_none_or(|(w, _)| r < w) {
                    worst_ratio = Some((r, m.name));
                }
            }
            None => println!(
                "  {:<30} {:>12} events {:>8.2} s {:>12.0} ev/s  (no baseline){mem}{medium}{bursts}",
                m.name, m.events, m.wall_secs, eps
            ),
        }
        measurements.push(m);
    }

    if let Some(label) = record {
        let text = render_file(baseline.as_deref(), &label, &measurements)?;
        std::fs::write(&out, text).map_err(|e| format!("writing {out}: {e}"))?;
        println!("recorded entry {label:?} in {out}");
    }

    if check {
        let Some((ratio, name)) = worst_ratio else {
            return Err(format!(
                "--check: no committed baseline in {out} (record one first)"
            ));
        };
        if ratio < 1.0 - REGRESSION_TOLERANCE {
            return Err(format!(
                "events/sec regression: {name} at {:.0}% of the committed baseline \
                 (tolerance {:.0}%)",
                ratio * 100.0,
                (1.0 - REGRESSION_TOLERANCE) * 100.0
            ));
        }
        println!(
            "check passed: worst scenario {name} at {:.2}x of the committed baseline",
            ratio
        );
    }
    Ok(())
}

// ---- BENCH_engine.json ----------------------------------------------------
//
// The file is JSON, laid out one entry per line so entries can be parsed
// (and preserved across `--record`) without a full JSON parser:
//
//   {
//     "schema": "mwn-bench-engine/1",
//     "entries": [
//       {"label":"...","scenarios":[{...},{...}]},
//       {"label":"...","scenarios":[{...},{...}]}
//     ]
//   }

/// Extracts the existing entry lines (everything inside `"entries": [...]`
/// that looks like an entry object).
fn entry_lines(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with(r#"{"label""#))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// Per-scenario events/sec of the *last* (most recent) entry.
fn last_entry_eps(text: &str) -> Vec<(String, f64)> {
    let Some(last) = entry_lines(text).into_iter().next_back() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // Scenario objects never nest, so splitting on '{' yields one chunk
    // per scenario object (plus the entry prefix, which has no "name").
    for chunk in last.split('{') {
        let Some(name) = extract_str(chunk, "name") else {
            continue;
        };
        if let Some(eps) = extract_num(chunk, "events_per_sec") {
            out.push((name, eps));
        }
    }
    out
}

fn extract_str(chunk: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = chunk.find(&pat)? + pat.len();
    let end = chunk[start..].find('"')?;
    Some(chunk[start..start + end].to_string())
}

fn extract_num(chunk: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = chunk.find(&pat)? + pat.len();
    let rest = &chunk[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn render_entry(label: &str, measurements: &[Measurement]) -> String {
    let scenarios: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
    format!(
        r#"{{"label":{},"scenarios":[{}]}}"#,
        quoted(label),
        scenarios.join(",")
    )
}

fn quoted(s: &str) -> String {
    Obj::new().str("l", s).finish()[5..]
        .trim_end_matches('}')
        .to_string()
}

fn render_file(
    existing: Option<&str>,
    label: &str,
    measurements: &[Measurement],
) -> Result<String, String> {
    let mut entries = existing.map(entry_lines).unwrap_or_default();
    let taken: Vec<String> = entries
        .iter()
        .filter_map(|e| extract_str(e, "label"))
        .collect();
    if taken.iter().any(|t| t == label) {
        // Suggest the first numeric suffix that is actually free.
        let suggestion = (2..)
            .map(|i| format!("{label}-{i}"))
            .find(|s| !taken.iter().any(|t| t == s))
            .expect("unbounded suffix search");
        return Err(format!(
            "entry {label:?} already recorded; baseline entries are append-only \
             (pick a new label, e.g. {suggestion:?})"
        ));
    }
    entries.push(render_entry(label, measurements));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"entries\": [\n");
    let n = entries.len();
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    ");
        out.push_str(e);
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(name: &'static str, events: u64, wall: f64) -> Measurement {
        Measurement {
            name,
            events,
            peak_queue_depth: 9,
            delivered: 100,
            sim_secs: 2.5,
            wall_secs: wall,
            medium_tick_secs: 0.045,
            medium_lazy_secs: 0.08,
            bursts: 0,
            bytes_per_node: 2_048,
            peak_rss_bytes: Some(64 << 20),
        }
    }

    #[test]
    fn file_roundtrip_preserves_entries() {
        let first = render_file(None, "pre", &[meas("a", 1000, 0.5)]).unwrap();
        assert!(first.contains(SCHEMA));
        let second = render_file(Some(&first), "post", &[meas("a", 4000, 0.5)]).unwrap();
        assert_eq!(entry_lines(&second).len(), 2);
        // The comparison baseline is the most recent entry.
        let eps = last_entry_eps(&second);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].0, "a");
        assert!((eps[0].1 - 8000.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_label_rejected_with_a_free_suggestion() {
        let first = render_file(None, "pre", &[meas("a", 1000, 0.5)]).unwrap();
        let err = render_file(Some(&first), "pre", &[meas("a", 1, 1.0)]).unwrap_err();
        assert!(err.contains("\"pre-2\""), "unhelpful error: {err}");
        // The suggestion skips suffixes that are themselves taken.
        let second = render_file(Some(&first), "pre-2", &[meas("a", 1000, 0.5)]).unwrap();
        let err = render_file(Some(&second), "pre", &[meas("a", 1, 1.0)]).unwrap_err();
        assert!(err.contains("\"pre-3\""), "suggestion not free: {err}");
    }

    #[test]
    fn fmt_f64_in_scenario_json_is_parseable() {
        let line = meas("chain", 123, 0.25).to_json();
        assert_eq!(extract_str(&line, "name").as_deref(), Some("chain"));
        assert_eq!(extract_num(&line, "events"), Some(123.0));
        assert_eq!(extract_num(&line, "events_per_sec"), Some(492.0));
        assert_eq!(extract_num(&line, "bytes_per_node"), Some(2048.0));
        assert_eq!(
            extract_num(&line, "peak_rss_bytes"),
            Some((64u64 << 20) as f64)
        );
        // The split medium buckets ride along, and the pre-split sum
        // keeps its historical key so old and new entries compare
        // row-by-row.
        assert_eq!(extract_num(&line, "medium_tick_secs"), Some(0.045));
        assert_eq!(extract_num(&line, "medium_lazy_secs"), Some(0.08));
        assert_eq!(extract_num(&line, "medium_recompute_secs"), Some(0.125));
    }

    #[test]
    fn medium_share_of_wall_is_derived_per_row() {
        let m = meas("chain", 123, 0.25);
        assert!((m.medium_secs() - 0.125).abs() < 1e-12);
        assert!((m.medium_pct() - 50.0).abs() < 1e-9);
        let mut idle = meas("idle", 0, 0.0);
        idle.medium_tick_secs = 0.0;
        idle.medium_lazy_secs = 0.0;
        assert_eq!(idle.medium_pct(), 0.0, "zero wall must not divide");
    }

    /// Peak RSS is best-effort: where `/proc/self/status` does not exist
    /// the field must degrade to JSON `null`, never vanish from the
    /// schema.
    #[test]
    fn missing_peak_rss_renders_as_null() {
        let mut m = meas("chain", 123, 0.25);
        m.peak_rss_bytes = None;
        let line = m.to_json();
        assert!(
            line.contains(r#""peak_rss_bytes":null"#),
            "schema lost the field: {line}"
        );
        assert_eq!(extract_num(&line, "peak_rss_bytes"), None);
        // The numeric fields around it still parse.
        assert_eq!(extract_num(&line, "bytes_per_node"), Some(2048.0));
        assert_eq!(extract_num(&line, "events_per_sec"), Some(492.0));
    }

    #[test]
    fn bench_cases_have_unique_names_and_a_quick_subset() {
        let all = cases();
        let mut names: Vec<&str> = all.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(all.iter().any(|c| c.quick) && all.iter().any(|c| !c.quick));
        assert!(names.contains(&"random50-vegas-2m"));
        assert!(names.contains(&"random200-mobility"));
        assert!(names.contains(&"random500-mobility"));
        // traffic100k is the CI smoke for open-loop flow churn.
        assert!(all.iter().any(|c| c.name == "traffic100k" && c.quick));
        // random200 is the CI smoke for the spatial-grid mobility path;
        // random500 is full-run only.
        assert!(all
            .iter()
            .any(|c| c.name == "random200-mobility" && c.quick));
        assert!(all
            .iter()
            .any(|c| c.name == "random500-mobility" && !c.quick));
        // The city-scale tier is full-run only (minutes, not CI seconds).
        for name in [
            "random5k-mobility",
            "random20k",
            "random50k",
            "random20k-mobility",
            "random50k-mobility",
        ] {
            assert!(
                all.iter().any(|c| c.name == name && !c.quick),
                "{name} missing or marked quick"
            );
        }
        // The PR 10 mobility tiers reuse their static cousins' targets so
        // rows compare across entries.
        let target_of = |n: &str| all.iter().find(|c| c.name == n).unwrap().target;
        assert_eq!(target_of("random20k-mobility"), target_of("random20k"));
        assert_eq!(target_of("random50k-mobility"), target_of("random50k"));
    }
}
