//! `mwn sweep` — run an experiment suite on a worker pool, streaming
//! results into a resumable JSONL store.

use mwn::jobs::{self, JobSpec};
use mwn::{ExperimentScale, RunResults};
use mwn_runner::{default_workers, run_sweep, simulate, simulate_instrumented, SweepOptions};

use crate::args;

pub fn command(rest: &[String]) -> Result<(), String> {
    let mut argv: Vec<String> = rest.to_vec();
    let workers: usize = match args::take_value(&mut argv, "--jobs")? {
        Some(v) => args::parse(&v, "job count")?,
        None => 0, // auto: one worker per CPU
    };
    let out = args::take_value(&mut argv, "--out")?.unwrap_or_else(|| "results.jsonl".into());
    let mult: u64 = match args::take_value(&mut argv, "--scale")? {
        Some(v) => args::parse(&v, "scale")?,
        None => 1,
    };
    if mult == 0 {
        return Err("--scale must be at least 1".into());
    }
    let suite = args::take_value(&mut argv, "--suite")?.unwrap_or_else(|| "chain".into());
    let metrics = args::take_flag(&mut argv, "--metrics");
    args::reject_leftovers(&argv)?;

    let scale = ExperimentScale::scaled(mult);
    let jobs = match suite.as_str() {
        "chain" => jobs::chain_study(scale),
        "full" => jobs::full_suite(scale),
        "traffic" => jobs::traffic_study(scale),
        "load" => jobs::traffic_load_study(scale),
        other => {
            return Err(format!(
                "unknown suite {other:?} (use chain, full, traffic or load)"
            ))
        }
    };

    let shown = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    eprintln!(
        "suite {suite:?}: {} job(s) at scale x{mult}, {shown} worker(s)",
        jobs.len()
    );
    let opts = SweepOptions::new(&out).workers(workers);
    let exec: &(dyn Fn(&JobSpec) -> RunResults + Sync) = if metrics {
        &simulate_instrumented
    } else {
        &simulate
    };
    let summary =
        run_sweep(&jobs, &opts, exec).map_err(|e| format!("results store {out:?}: {e}"))?;
    if summary.failed > 0 {
        return Err(format!(
            "{} of {} job(s) failed; see \"status\":\"failed\" lines in {out}",
            summary.failed, summary.total
        ));
    }
    Ok(())
}
