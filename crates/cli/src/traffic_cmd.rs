//! `mwn traffic` — drive an open-loop workload over a random topology
//! and report per-class flow-completion-time percentiles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mwn::{Scenario, SimDuration, SimTime, StepOutcome, TrafficModel, Transport};

use crate::args::{parse, parse_rate, parse_transport, reject_leftovers, take_flag, take_value};

/// One replication's result.
struct RepResult {
    seed: u64,
    outcome: StepOutcome,
    end: SimTime,
    live_at_end: usize,
    journal: (u64, u64),
    arrivals: (u64, u64),
    /// Parallel bursts the engine executed ([`mwn::Network::bursts_run`]):
    /// 0 whenever the open-loop workload forced the sequential path, so
    /// "did --shards actually engage?" is visible per replication.
    bursts: u64,
    /// Pre-rendered per-class report (text or JSON).
    report: String,
}

pub fn command(argv: &[String]) -> Result<(), String> {
    let mut argv = argv.to_vec();
    let nodes: usize = match take_value(&mut argv, "--nodes")? {
        Some(v) => parse(&v, "node count")?,
        None => 20,
    };
    let flows: u64 = match take_value(&mut argv, "--flows")? {
        Some(v) => parse(&v, "flow count")?,
        None => 2_000,
    };
    let profile = take_value(&mut argv, "--profile")?.unwrap_or_else(|| "web".to_string());
    let load: f64 = match take_value(&mut argv, "--load")? {
        Some(v) => parse(&v, "load factor")?,
        None => 1.0,
    };
    let transport = match take_value(&mut argv, "--transport")? {
        Some(v) => parse_transport(&v)?,
        None => Transport::newreno(),
    };
    let rate = match take_value(&mut argv, "--rate")? {
        Some(v) => parse_rate(&v)?,
        None => mwn_phy::DataRate::MBPS_11,
    };
    let seed: u64 = match take_value(&mut argv, "--seed")? {
        Some(v) => parse(&v, "seed")?,
        None => 1,
    };
    let reps: u64 = match take_value(&mut argv, "--reps")? {
        Some(v) => parse::<u64>(&v, "replication count")?.max(1),
        None => 1,
    };
    let jobs: usize = match take_value(&mut argv, "--jobs")? {
        Some(v) => parse(&v, "job count")?,
        None => 0,
    };
    let deadline_secs: u64 = match take_value(&mut argv, "--deadline")? {
        Some(v) => parse(&v, "deadline (simulated seconds)")?,
        None => 1_000_000,
    };
    let shards: usize = match take_value(&mut argv, "--shards")? {
        Some(v) => parse::<usize>(&v, "shard count")?.max(1),
        None => 1,
    };
    let json = take_flag(&mut argv, "--json");
    reject_leftovers(&argv)?;

    if !(load > 0.0 && load.is_finite()) {
        return Err("--load must be a positive finite factor".to_string());
    }
    let model = TrafficModel::profile(&profile, flows)
        .ok_or_else(|| {
            format!(
                "unknown profile {profile:?} (use {})",
                TrafficModel::PROFILES.join(", ")
            )
        })?
        .with_load(load);
    if !matches!(transport, Transport::Tcp { .. }) {
        return Err("open-loop traffic needs a TCP transport (not udp)".to_string());
    }
    if nodes < 2 {
        return Err("traffic needs at least two nodes".to_string());
    }
    if shards > 1 {
        // Not silent: the engine accepts --shards but open-loop flow
        // churn re-keys flow-table slots mid-burst, so batching is
        // declined and the run proceeds sequentially (ROADMAP sharded
        // residual (b)). The per-rep `bursts=` field confirms it.
        println!(
            "note: --shards {shards} accepted, but open-loop traffic runs on the \
             sequential path; bursts will read 0"
        );
    }

    let results = run_reps(
        nodes,
        &model,
        transport,
        rate,
        seed,
        reps,
        jobs,
        deadline_secs,
        shards,
        json,
    );

    let mut failures = 0usize;
    for r in &results {
        println!(
            "rep seed={} journal={}:{:016x} arrivals={}:{:016x} bursts={}",
            r.seed, r.journal.0, r.journal.1, r.arrivals.0, r.arrivals.1, r.bursts
        );
        print!("{}", r.report);
        if r.outcome != StepOutcome::TargetReached {
            failures += 1;
            println!(
                "FAIL seed={}: {:?} at t={:.1}s with {} flows still live",
                r.seed,
                r.outcome,
                r.end.as_secs_f64(),
                r.live_at_end
            );
        }
    }
    if failures > 0 {
        Err(format!("{failures} replication(s) did not complete"))
    } else {
        Ok(())
    }
}

/// Runs `reps` independent replications (seeds `seed..seed+reps`) on a
/// worker pool, preserving seed order in the output.
#[allow(clippy::too_many_arguments)]
fn run_reps(
    nodes: usize,
    model: &TrafficModel,
    transport: Transport,
    rate: mwn_phy::DataRate,
    seed: u64,
    reps: u64,
    jobs: usize,
    deadline_secs: u64,
    shards: usize,
    json: bool,
) -> Vec<RepResult> {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
    .min(reps as usize);

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<RepResult>>> = Mutex::new((0..reps).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i as u64 >= reps {
                    break;
                }
                let rep_seed = seed + i as u64;
                let result = run_one(
                    nodes,
                    model.clone(),
                    transport,
                    rate,
                    rep_seed,
                    deadline_secs,
                    shards,
                    json,
                );
                slots.lock().unwrap()[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every replication ran"))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    nodes: usize,
    model: TrafficModel,
    transport: Transport,
    rate: mwn_phy::DataRate,
    seed: u64,
    deadline_secs: u64,
    shards: usize,
    json: bool,
) -> RepResult {
    let scenario = Scenario::open_loop(nodes, model, transport, rate, seed);
    let mut net = scenario.build();
    // Open-loop churn currently degrades to the sequential path inside
    // the engine (`command` prints a notice and `bursts` records the
    // engagement); it becomes live the day the traffic engine joins the
    // batch path, with no CLI change.
    net.set_shards(shards);
    let deadline = SimTime::ZERO + SimDuration::from_secs(deadline_secs);
    let outcome = net.run_until_traffic_done(deadline);
    let summary = net.traffic_summary().expect("open-loop run has a summary");
    let report = if json {
        format!("{}\n", summary.to_json(net.now()))
    } else {
        let mut out = String::new();
        out.push_str(
            "  class        arrivals  completions  fct_p50_s  fct_p95_s  fct_p99_s  gput_p50_kbps\n",
        );
        for c in summary.classes() {
            let q = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.4}"));
            out.push_str(&format!(
                "  {:<12} {:>8}  {:>11}  {:>9}  {:>9}  {:>9}  {:>13}\n",
                c.name(),
                c.arrivals(),
                c.completions(),
                q(c.fct().p50()),
                q(c.fct().p95()),
                q(c.fct().p99()),
                c.goodput()
                    .p50()
                    .map_or("-".to_string(), |x| format!("{x:.1}")),
            ));
        }
        out
    };
    RepResult {
        seed,
        outcome,
        end: net.now(),
        live_at_end: net.live_flow_count(),
        journal: net.traffic_digest().expect("traffic digest"),
        arrivals: net.traffic_arrival_digest().expect("arrival digest"),
        bursts: net.bursts_run(),
        report,
    }
}
