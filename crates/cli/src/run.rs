//! `mwn run` — one scenario, full measures.

use mwn::{experiment, ExperimentScale, ObsConfig, Scenario};

use crate::args;

pub fn command(rest: &[String]) -> Result<(), String> {
    let mut argv: Vec<String> = rest.to_vec();
    let topology = args::take_value(&mut argv, "--topology")?.unwrap_or_else(|| "chain".into());
    let hops: usize = match args::take_value(&mut argv, "--hops")? {
        Some(v) => args::parse(&v, "hop count")?,
        None => 7,
    };
    let mbits = args::take_value(&mut argv, "--mbits")?.unwrap_or_else(|| "2".into());
    let variant = args::take_value(&mut argv, "--variant")?.unwrap_or_else(|| "vegas".into());
    let seed: u64 = match args::take_value(&mut argv, "--seed")? {
        Some(v) => args::parse(&v, "seed")?,
        None => 42,
    };
    let mult: u64 = match args::take_value(&mut argv, "--scale")? {
        Some(v) => args::parse(&v, "scale")?,
        None => 1,
    };
    let shards: usize = match args::take_value(&mut argv, "--shards")? {
        Some(v) => args::parse::<usize>(&v, "shard count")?.max(1),
        None => 1,
    };
    args::reject_leftovers(&argv)?;

    let bandwidth = args::parse_rate(&mbits)?;
    let transport = args::parse_transport(&variant)?;
    if hops == 0 {
        return Err("--hops must be positive".into());
    }

    let scenario = match topology.as_str() {
        "chain" => Scenario::chain(hops, bandwidth, transport, seed),
        "grid" => Scenario::grid6(bandwidth, transport, seed),
        "random" => Scenario::random10(bandwidth, transport, seed),
        other => return Err(format!("unknown topology {other:?} (chain|grid|random)")),
    };

    let scale = ExperimentScale::scaled(mult);

    eprintln!(
        "{} | {} nodes, {} flow(s), {bandwidth}, seed {seed}, {} batches x {} packets",
        scenario.flows[0].transport.label(),
        scenario.topology.len(),
        scenario.flows.len(),
        scale.batches,
        scale.batch_packets,
    );

    let r = experiment::run_instrumented(&scenario, scale, ObsConfig::off().with_shards(shards));
    println!(
        "aggregate goodput      {:>10.1} kbit/s (±{:.1})",
        r.aggregate_goodput_kbps.mean, r.aggregate_goodput_kbps.half_width
    );
    println!("fairness (Jain)        {:>10.3}", r.fairness.mean);
    println!("link-layer drop prob   {:>10.4}", r.drop_probability.mean);
    println!("false route failures   {:>10}", r.false_route_failures);
    println!("energy per packet      {:>10.3} J", r.energy_per_packet);
    println!(
        "simulated time         {:>10.1} s",
        r.measured_time.as_secs_f64()
    );
    println!("outcome                {:>10?}", r.outcome);
    println!();
    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "flow", "goodput", "retx/pkt", "window"
    );
    for f in &r.per_flow {
        println!(
            "{:<6} {:>8.1} kb/s {:>12.4} {:>10.2}",
            format!("{}", f.flow),
            f.goodput_kbps.mean,
            f.retx_per_packet.mean,
            f.avg_window.mean
        );
    }
    Ok(())
}
