//! `mwn trace` — annotated event trace of a chain's first packets.

use mwn::{Scenario, SimDuration, SimTime};

use crate::args;

pub fn command(rest: &[String]) -> Result<(), String> {
    let mut argv: Vec<String> = rest.to_vec();
    let hops: usize = match args::take_value(&mut argv, "--hops")? {
        Some(v) => args::parse(&v, "hop count")?,
        None => 2,
    };
    let events: usize = match args::take_value(&mut argv, "--events")? {
        Some(v) => args::parse(&v, "event count")?,
        None => 60,
    };
    let rate = args::take_value(&mut argv, "--rate")?.unwrap_or_else(|| "2".into());
    let variant = args::take_value(&mut argv, "--transport")?.unwrap_or_else(|| "newreno".into());
    let format = args::take_value(&mut argv, "--format")?.unwrap_or_else(|| "text".into());
    args::reject_leftovers(&argv)?;
    if hops == 0 {
        return Err("--hops must be positive".into());
    }
    let bandwidth = args::parse_rate(&rate)?;
    let transport = args::parse_transport(&variant)?;
    if !matches!(format.as_str(), "text" | "jsonl") {
        return Err(format!("unknown format {format:?} (use text or jsonl)"));
    }

    let scenario = Scenario::chain(hops, bandwidth, transport, 1);
    let label = scenario.flows[0].transport.label();
    let mut net = scenario.build();
    net.enable_trace(events.max(16));
    net.run_until_delivered(2, SimTime::ZERO + SimDuration::from_secs(30));
    net.run_until(net.now() + SimDuration::from_millis(50));

    if format == "jsonl" {
        for record in net.trace().into_iter().take(events) {
            println!("{}", record.to_jsonl());
        }
    } else {
        println!("{hops}-hop chain, {label}, first two data packets:");
        println!("{:>12}  {:>4} {:>4}  event", "time", "node", "lyr");
        for record in net.trace().into_iter().take(events) {
            println!("{record}");
        }
    }
    Ok(())
}
