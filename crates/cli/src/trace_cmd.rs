//! `mwn trace` — annotated event trace of a chain's first packets.

use mwn::{Scenario, SimDuration, SimTime, Transport};
use mwn_phy::DataRate;

use crate::args;

pub fn command(rest: &[String]) -> Result<(), String> {
    let mut argv: Vec<String> = rest.to_vec();
    let hops: usize = match args::take_value(&mut argv, "--hops")? {
        Some(v) => args::parse(&v, "hop count")?,
        None => 2,
    };
    let events: usize = match args::take_value(&mut argv, "--events")? {
        Some(v) => args::parse(&v, "event count")?,
        None => 60,
    };
    args::reject_leftovers(&argv)?;
    if hops == 0 {
        return Err("--hops must be positive".into());
    }

    let scenario = Scenario::chain(hops, DataRate::MBPS_2, Transport::newreno(), 1);
    let mut net = scenario.build();
    net.enable_trace(events.max(16));
    net.run_until_delivered(2, SimTime::ZERO + SimDuration::from_secs(30));
    net.run_until(net.now() + SimDuration::from_millis(50));

    println!("{hops}-hop chain, TCP NewReno, first two data packets:");
    println!("{:>12}  {:>4} {:>4}  event", "time", "node", "lyr");
    for record in net.trace().into_iter().take(events) {
        println!("{record}");
    }
    Ok(())
}
