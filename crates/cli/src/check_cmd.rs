//! `mwn check` — run the cross-layer invariant checker and golden-trace
//! conformance over the canonical scenarios, optionally fuzzing random
//! scenarios on top.
//!
//! With `--shards N` the canonical runs execute on the sharded parallel
//! engine; the committed digests don't change, so conformance doubles as
//! a proof that the parallel engine is byte-identical to the sequential
//! oracle. The full suite additionally runs a determinism stress: every
//! case is re-run at shard counts 2 and 8 plus one repeat, and every
//! digest line and traffic journal must match the base run exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mwn_check::golden::{conformance, format_digests, parse_digests, BUILTIN_DIGESTS};
use mwn_check::{canonical_cases, fast_cases, fuzz, CanonicalCase, CaseReport};

use crate::args::{parse, reject_leftovers, take_flag, take_value};

/// Where `--bless` writes (and where the build embeds the digests from),
/// relative to the repository root.
const GOLDEN_PATH: &str = "crates/check/golden/digests.txt";

/// Shard counts the full-suite determinism stress re-runs every case at
/// (on top of the base run and one base-shard repeat).
const STRESS_SHARDS: [usize; 2] = [2, 8];

pub fn command(argv: &[String]) -> Result<(), String> {
    let mut argv = argv.to_vec();
    let suite = take_value(&mut argv, "--suite")?.unwrap_or_else(|| "full".to_string());
    let bless = take_flag(&mut argv, "--bless");
    let fuzz_cases: u32 = match take_value(&mut argv, "--fuzz")? {
        Some(v) => parse(&v, "fuzz case count")?,
        None => 0,
    };
    let jobs: usize = match take_value(&mut argv, "--jobs")? {
        Some(v) => parse(&v, "job count")?,
        None => 0,
    };
    let shards: usize = match take_value(&mut argv, "--shards")? {
        Some(v) => parse::<usize>(&v, "shard count")?.max(1),
        None => 1,
    };
    let golden_path = take_value(&mut argv, "--golden")?;
    reject_leftovers(&argv)?;

    // Blessing always regenerates the complete digest file; a partial
    // suite would silently drop the other scenarios' lines. It also
    // always uses the sequential oracle — goldens define the reference
    // behavior the sharded engine is held to.
    if bless && shards > 1 {
        return Err("--bless records the sequential oracle (drop --shards)".to_string());
    }
    let cases = if bless {
        canonical_cases()
    } else {
        match suite.as_str() {
            "full" => canonical_cases(),
            "fast" => fast_cases(),
            other => return Err(format!("unknown suite {other:?} (use fast or full)")),
        }
    };

    let runs = run_cases(&cases, jobs, shards);
    let mut failures = 0usize;
    for (report, _) in &runs {
        for v in &report.violations {
            failures += 1;
            print!("{v}");
        }
    }

    if bless {
        if failures > 0 {
            return Err(format!(
                "{failures} invariant violation(s); refusing to bless a non-conforming trace"
            ));
        }
        let reports: Vec<CaseReport> = runs.into_iter().map(|(r, _)| r).collect();
        let path = golden_path.unwrap_or_else(|| GOLDEN_PATH.to_string());
        std::fs::write(&path, format_digests(&reports))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("blessed {} scenario digests -> {path}", reports.len());
        return Ok(());
    }

    let from_file;
    let golden_text = match &golden_path {
        Some(path) => {
            from_file =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            from_file.as_str()
        }
        None => BUILTIN_DIGESTS,
    };
    let golden = parse_digests(golden_text)?;
    for (report, _) in &runs {
        match conformance(report, &golden) {
            Some(msg) => {
                failures += 1;
                println!("FAIL {}: {msg}", report.name);
            }
            None => println!("ok   {} ({} records)", report.name, report.count),
        }
    }

    // Determinism stress (full suite only): the committed digests pin
    // the sequential behavior; this pins the *equivalence* — every case
    // byte-identical across shard counts and across repeated runs.
    if suite == "full" {
        failures += determinism_stress(&cases, &runs, jobs, shards);
    }

    if fuzz_cases > 0 {
        match fuzz("mwn-check-cli", fuzz_cases) {
            Ok(n) => println!("fuzz: {n} cases, no violations"),
            Err(failure) => {
                failures += 1;
                print!("{failure}");
            }
        }
    }

    if failures > 0 {
        Err(format!("{failures} check failure(s)"))
    } else {
        Ok(())
    }
}

/// One canonical run: the report plus the open-loop traffic journal
/// digest (`None` for closed-loop cases).
type CaseRun = (CaseReport, Option<(u64, u64)>);

/// Re-runs every case at [`STRESS_SHARDS`] worker counts plus one repeat
/// at `base_shards`, comparing digest lines and traffic journals against
/// the base `runs`. Returns the number of mismatches.
fn determinism_stress(
    cases: &[CanonicalCase],
    runs: &[CaseRun],
    jobs: usize,
    base_shards: usize,
) -> usize {
    let mut failures = 0;
    let mut passes: Vec<usize> = STRESS_SHARDS.to_vec();
    passes.push(base_shards); // repeat: same engine, run twice
    for shards in passes {
        let rerun = run_cases(cases, jobs, shards);
        let mut mismatches = 0;
        for ((base, base_journal), (again, journal)) in runs.iter().zip(&rerun) {
            if base.digest_line() != again.digest_line() {
                mismatches += 1;
                println!(
                    "FAIL determinism {} shards={shards}: {} != {}",
                    base.name,
                    again.digest_line(),
                    base.digest_line()
                );
            }
            if base_journal != journal {
                mismatches += 1;
                println!(
                    "FAIL determinism {} shards={shards}: traffic journal {journal:?} != {base_journal:?}",
                    base.name
                );
            }
        }
        if mismatches == 0 {
            println!("ok   determinism shards={shards} ({} cases)", cases.len());
        }
        failures += mismatches;
    }
    failures
}

/// Runs the canonical cases on `jobs` worker threads (0 = one per CPU),
/// preserving case order in the returned reports. Each case itself runs
/// on `shards` engine workers (1 = the sequential oracle).
fn run_cases(cases: &[CanonicalCase], jobs: usize, shards: usize) -> Vec<CaseRun> {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
    .min(cases.len().max(1));

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CaseRun>>> = Mutex::new((0..cases.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else { break };
                let run = case.run_sharded(shards);
                slots.lock().unwrap()[i] = Some(run);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every case ran"))
        .collect()
}
