//! `mwn check` — run the cross-layer invariant checker and golden-trace
//! conformance over the canonical scenarios, optionally fuzzing random
//! scenarios on top.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mwn_check::golden::{conformance, format_digests, parse_digests, BUILTIN_DIGESTS};
use mwn_check::{canonical_cases, fast_cases, fuzz, CanonicalCase, CaseReport};

use crate::args::{parse, reject_leftovers, take_flag, take_value};

/// Where `--bless` writes (and where the build embeds the digests from),
/// relative to the repository root.
const GOLDEN_PATH: &str = "crates/check/golden/digests.txt";

pub fn command(argv: &[String]) -> Result<(), String> {
    let mut argv = argv.to_vec();
    let suite = take_value(&mut argv, "--suite")?.unwrap_or_else(|| "full".to_string());
    let bless = take_flag(&mut argv, "--bless");
    let fuzz_cases: u32 = match take_value(&mut argv, "--fuzz")? {
        Some(v) => parse(&v, "fuzz case count")?,
        None => 0,
    };
    let jobs: usize = match take_value(&mut argv, "--jobs")? {
        Some(v) => parse(&v, "job count")?,
        None => 0,
    };
    let golden_path = take_value(&mut argv, "--golden")?;
    reject_leftovers(&argv)?;

    // Blessing always regenerates the complete digest file; a partial
    // suite would silently drop the other scenarios' lines.
    let cases = if bless {
        canonical_cases()
    } else {
        match suite.as_str() {
            "full" => canonical_cases(),
            "fast" => fast_cases(),
            other => return Err(format!("unknown suite {other:?} (use fast or full)")),
        }
    };

    let reports = run_cases(&cases, jobs);
    let mut failures = 0usize;
    for report in &reports {
        for v in &report.violations {
            failures += 1;
            print!("{v}");
        }
    }

    if bless {
        if failures > 0 {
            return Err(format!(
                "{failures} invariant violation(s); refusing to bless a non-conforming trace"
            ));
        }
        let path = golden_path.unwrap_or_else(|| GOLDEN_PATH.to_string());
        std::fs::write(&path, format_digests(&reports))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("blessed {} scenario digests -> {path}", reports.len());
    } else {
        let from_file;
        let golden_text = match &golden_path {
            Some(path) => {
                from_file =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                from_file.as_str()
            }
            None => BUILTIN_DIGESTS,
        };
        let golden = parse_digests(golden_text)?;
        for report in &reports {
            match conformance(report, &golden) {
                Some(msg) => {
                    failures += 1;
                    println!("FAIL {}: {msg}", report.name);
                }
                None => println!("ok   {} ({} records)", report.name, report.count),
            }
        }
    }

    if fuzz_cases > 0 {
        match fuzz("mwn-check-cli", fuzz_cases) {
            Ok(n) => println!("fuzz: {n} cases, no violations"),
            Err(failure) => {
                failures += 1;
                print!("{failure}");
            }
        }
    }

    if failures > 0 {
        Err(format!("{failures} check failure(s)"))
    } else {
        Ok(())
    }
}

/// Runs the canonical cases on `jobs` worker threads (0 = one per CPU),
/// preserving case order in the returned reports.
fn run_cases(cases: &[CanonicalCase], jobs: usize) -> Vec<CaseReport> {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
    .min(cases.len().max(1));

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CaseReport>>> =
        Mutex::new((0..cases.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else { break };
                let report = case.run();
                slots.lock().unwrap()[i] = Some(report);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every case ran"))
        .collect()
}
