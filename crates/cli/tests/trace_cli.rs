//! Pins the `mwn trace` CLI contract that downstream tooling (JSONL
//! consumers, shell pipelines) relies on.

use std::process::Command;

fn mwn(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mwn"))
        .args(args)
        .output()
        .expect("spawn mwn")
}

/// JSONL output is line-oriented: every record is one line and the
/// stream ends with exactly one trailing newline, so `wc -l`, `jq` and
/// appending streams all see clean record boundaries.
#[test]
fn trace_jsonl_ends_with_exactly_one_trailing_newline() {
    let out = mwn(&[
        "trace", "--hops", "1", "--events", "20", "--format", "jsonl",
    ]);
    assert!(out.status.success(), "trace failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(!stdout.is_empty());
    assert!(stdout.ends_with('\n'), "missing trailing newline");
    assert!(!stdout.ends_with("\n\n"), "more than one trailing newline");
    for line in stdout.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line:?}"
        );
    }
}

/// Unknown transport variants are a usage error: exit code 2 with a
/// diagnostic on stderr, nothing on stdout.
#[test]
fn trace_unknown_transport_exits_2() {
    let out = mwn(&["trace", "--transport", "carrier-pigeon"]);
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        !stdout.lines().any(|l| l.starts_with('{')),
        "usage errors must not emit records"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf-8");
    assert!(
        stderr.contains("carrier-pigeon"),
        "diagnostic should name the bad variant: {stderr}"
    );
}
