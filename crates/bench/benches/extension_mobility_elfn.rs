//! Extension: mobility + ELFN (Holland & Vaidya), the line of work the
//! paper's related-work section defers to for mobile scenarios.

fn main() {
    mwn_bench::reproduce_figure(
        "Extension — mobility and ELFN",
        "Holland & Vaidya: TCP goodput degrades with node speed, and explicit \
         link failure notification recovers a large share of it; the paper \
         suggests combining its Vegas findings with ELFN",
        mwn::experiments::extension_mobility_elfn,
    );
}
