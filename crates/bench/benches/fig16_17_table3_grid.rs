//! Figures 16–17 and Table 3: the 21-node grid with six competing flows.

fn main() {
    mwn_bench::reproduce(
        "Figs 16-17 + Table 3 — grid topology",
        "aggregate goodputs comparable across variants; NewReno starves flows \
         (fairness 0.32-0.52); Vegas much fairer (0.54-0.73); Vegas+thinning \
         fairest (0.69-0.94) at ~10% aggregate cost vs NewReno+thinning",
        |scale| {
            let (f16, f17, t3) = mwn::experiments::grid_study(scale);
            (vec![f16, f17], vec![t3])
        },
    );
}
