//! Extension: the h/4 optimal-window law (paper §2, citing Fu et al.).

fn main() {
    mwn_bench::reproduce_figure(
        "Extension — optimal window bound vs chain length",
        "the paper: 'for the h-hop chain the optimum TCP window size is given by \
         h/4' — expect goodput maxima near MaxWin = 1, 2 and 4 for 4-, 8- and \
         16-hop chains",
        mwn::experiments::extension_optimal_window,
    );
}
