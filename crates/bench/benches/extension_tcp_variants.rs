//! Extension: Tahoe / Reno / NewReno / Vegas side by side, the comparison
//! of the paper's reference [15] (Xu & Saadawi).

fn main() {
    mwn_bench::reproduce_figure(
        "Extension — four TCP variants on the chain",
        "Xu & Saadawi (WCMC 2002) report 15-20% more goodput for Vegas over the \
         reactive variants on chains of up to 7 hops; the paper, with alpha=2, \
         finds up to 83%",
        mwn::experiments::extension_tcp_variants,
    );
}
