//! Figures 11–14: 7-hop chain across bandwidths — goodput,
//! retransmissions, window size and link-layer drop probability for six
//! transport variants.

fn main() {
    mwn_bench::reproduce(
        "Figs 11-14 — 7-hop chain across bandwidths",
        "goodput grows sub-linearly; ACK thinning gains ~20% at 11 Mbit/s; Vegas \
         matches NewReno-with-optimal-window; Vegas variants retransmit least",
        |scale| (mwn::experiments::figs_11_to_14(scale).to_vec(), vec![]),
    );
}
