//! Criterion benchmark of the observability layer's event-loop overhead:
//! the same 6-hop NewReno chain with instrumentation disabled, with the
//! trace buffer enabled, and with every probe on. The disabled case is
//! the one that must stay within a few percent of the seed — tracing is
//! gated behind `Option`s and lazy closures, so a dark run should do no
//! formatting or allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use mwn::{Scenario, SimDuration, SimTime, Transport};
use mwn_phy::DataRate;

const PACKETS: u64 = 200;

fn chain6() -> mwn::Network {
    Scenario::chain(6, DataRate::MBPS_2, Transport::newreno(), 11).build()
}

fn run(net: &mut mwn::Network) -> u64 {
    net.run_until_delivered(PACKETS, SimTime::ZERO + SimDuration::from_secs(300));
    net.total_delivered()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    g.bench_function("chain6_newreno_disabled", |b| {
        b.iter(|| {
            let mut net = chain6();
            run(&mut net)
        })
    });
    g.bench_function("chain6_newreno_trace", |b| {
        b.iter(|| {
            let mut net = chain6();
            net.enable_trace(4096);
            run(&mut net)
        })
    });
    g.bench_function("chain6_newreno_full", |b| {
        b.iter(|| {
            let mut net = chain6();
            net.enable_trace(4096);
            net.enable_probes(1 << 16);
            net.enable_profiling();
            run(&mut net)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
