//! Figures 2 and 3: TCP Vegas α ∈ {2,3,4} on the 2 Mbit/s chain —
//! goodput and average window vs hops.

fn main() {
    mwn_bench::reproduce(
        "Figs 2-3 — Vegas alpha sweep on the chain",
        "alpha=2 has the highest goodput for 4-20 hops and the smallest window; \
         goodput converges for long chains",
        |scale| {
            let (f2, f3) = mwn::experiments::figs_2_3(scale);
            (vec![f2, f3], vec![])
        },
    );
}
