//! Criterion micro-benchmarks of the simulation engine itself: event
//! queue, RNG, and end-to-end events-per-second of a realistic scenario.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mwn::{Scenario, SimDuration, SimTime, Transport};
use mwn_phy::DataRate;
use mwn_sim::{EventQueue, Pcg32, SimTime as T};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        let mut rng = Pcg32::new(7);
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                for i in 0..1000u64 {
                    q.schedule(T::from_nanos(rng.next_u64() % 1_000_000), i);
                }
                q
            },
            |mut q| {
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("event_queue_cancel_heavy", |b| {
        let mut rng = Pcg32::new(9);
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                let ids: Vec<_> = (0..1000u64)
                    .map(|i| q.schedule(T::from_nanos(rng.next_u64() % 1_000_000), i))
                    .collect();
                (q, ids)
            },
            |(mut q, ids)| {
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("pcg32_next_u32_x1k", |b| {
        let mut rng = Pcg32::new(3);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u32());
            }
            acc
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("chain4_newreno_200pkts", |b| {
        b.iter(|| {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), 11);
            let mut net = s.build();
            net.run_until_delivered(200, SimTime::ZERO + SimDuration::from_secs(300));
            net.total_delivered()
        })
    });
    g.bench_function("grid6_vegas_200pkts", |b| {
        b.iter(|| {
            let s = Scenario::grid6(DataRate::MBPS_11, Transport::vegas(2), 11);
            let mut net = s.build();
            net.run_until_delivered(200, SimTime::ZERO + SimDuration::from_secs(300));
            net.total_delivered()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_end_to_end);
criterion_main!(benches);
