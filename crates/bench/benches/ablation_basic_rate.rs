//! Ablation B: control frames at the basic rate vs the data rate
//! (DESIGN.md §4.3).

fn main() {
    mwn_bench::reproduce_figure(
        "Ablation B — basic-rate control frames",
        "expectation: with control frames at the data rate, goodput scales nearly \
         linearly in bandwidth; at the fixed 1 Mbit/s basic rate it is sub-linear \
         (the paper's Figs 4/11 behaviour)",
        mwn::experiments::ablation_basic_rate,
    );
}
