//! Ablation C: carrier-sense range vs hidden-terminal losses
//! (DESIGN.md §4.1).

fn main() {
    mwn_bench::reproduce_figure(
        "Ablation C — carrier-sense range",
        "expectation: with CS range >= 600 m (3 hops) the chain has no hidden \
         terminals and NewReno's retransmission rate falls sharply; shrinking the \
         range below 550 m makes it worse",
        mwn::experiments::ablation_cs_range,
    );
}
