//! Figures 6–9: the main chain comparison at 2 Mbit/s — goodput,
//! retransmissions, window size and false route failures vs hops for
//! Vegas, NewReno, NewReno+thinning and paced UDP.

fn main() {
    mwn_bench::reproduce(
        "Figs 6-9 — chain study at 2 Mbit/s",
        "Vegas up to 83% more goodput and up to 99% fewer retransmissions than \
         NewReno; NewReno window much larger; NewReno causes 93-100% more false \
         route failures; paced UDP upper-bounds everyone",
        |scale| (mwn::experiments::figs_6_to_9(scale).to_vec(), vec![]),
    );
}
