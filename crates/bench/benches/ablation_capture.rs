//! Ablation A: physical capture on/off (DESIGN.md §4.1/§4.6).

fn main() {
    mwn_bench::reproduce_figure(
        "Ablation A — physical capture",
        "expectation: without ns-2's 10x capture threshold, same-direction chain \
         traffic corrupts itself and goodput collapses for every variant",
        mwn::experiments::ablation_capture,
    );
}
