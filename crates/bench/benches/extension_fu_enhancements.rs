//! Extension: Fu et al.'s link-layer adaptive pacing and link-RED under
//! TCP NewReno — the link-layer alternative the paper's related work
//! compares Vegas against.

fn main() {
    mwn_bench::reproduce_figure(
        "Extension — Fu et al. link-layer enhancements",
        "Fu et al. (INFOCOM 2003) report 5-30% NewReno goodput improvement from \
         adaptive pacing + link RED; the paper argues Vegas achieves the same end \
         by transport-layer means",
        mwn::experiments::extension_fu_enhancements,
    );
}
