//! Extension: 802.11g OFDM rates (the future bandwidths the paper's
//! introduction motivates).

fn main() {
    mwn_bench::reproduce_figure(
        "Extension — 802.11g OFDM rates",
        "expectation: goodput keeps growing sub-linearly as the data rate rises \
         to 54 Mbit/s — fixed preamble + basic-rate control frames dominate; \
         Vegas/NewReno ordering unchanged",
        mwn::experiments::extension_80211g,
    );
}
