//! Figure 4: 7-hop chain, Vegas goodput for different bandwidths.

fn main() {
    mwn_bench::reproduce_figure(
        "Fig 4 — Vegas goodput vs bandwidth (7 hops)",
        "sub-linear growth with bandwidth; alpha=2 best at 2 Mbit/s, \
         differences vanish at 11 Mbit/s",
        mwn::experiments::fig4,
    );
}
