//! Figure 5: Vegas with ACK thinning, α ∈ {2,3,4}, vs plain Vegas α=2.

fn main() {
    mwn_bench::reproduce_figure(
        "Fig 5 — Vegas + ACK thinning on the chain (2 Mbit/s)",
        "plain Vegas alpha=2 slightly better than thinning variants for h > 6",
        mwn::experiments::fig5,
    );
}
