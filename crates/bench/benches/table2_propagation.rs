//! Table 2: 4-hop propagation delay for different bandwidths.

fn main() {
    mwn_bench::reproduce(
        "Table 2 — 4-hop propagation delay",
        "29 ms at 2 Mbit/s, 12 ms at 5.5 Mbit/s, 8 ms at 11 Mbit/s",
        |_scale| (vec![], vec![mwn::experiments::table2()]),
    );
}
