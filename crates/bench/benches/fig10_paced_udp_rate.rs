//! Figure 10: paced-UDP goodput vs inter-sending time on the 7-hop chain.

fn main() {
    mwn_bench::reproduce_figure(
        "Fig 10 — paced UDP rate sweep (7 hops, 2 Mbit/s)",
        "optimum near t=35.7 ms (~330 kbit/s); gentle decline above the optimum. \
         (Deviation: our MAC recovers overload losses via retries, so below the \
         optimum goodput plateaus instead of collapsing.)",
        mwn::experiments::fig10,
    );
}
