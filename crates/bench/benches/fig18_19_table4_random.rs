//! Figures 18–19 and Table 4: 120 random nodes, ten concurrent flows.

fn main() {
    mwn_bench::reproduce(
        "Figs 18-19 + Table 4 — random topology",
        "Vegas and NewReno comparable in aggregate; NewReno lets flows starve; \
         Vegas+thinning achieves the best fairness (0.62-0.90) without \
         sacrificing aggregate goodput",
        |scale| {
            let (f18, f19, t4) = mwn::experiments::random_study(scale);
            (vec![f18, f19], vec![t4])
        },
    );
}
