//! Shared plumbing for the figure/table bench targets.
//!
//! Each `cargo bench` target in this crate regenerates one figure or table
//! of the paper. These are *reproduction* benches — they print the data
//! series the paper reports rather than measuring wall-clock time (the
//! Criterion target `engine_micro` covers simulator performance).
//!
//! Scale is controlled by `MWN_SCALE` (default 1 = 11 × 400-packet runs;
//! `MWN_SCALE=25` reproduces the paper's 11 × 10 000 packets).

use std::time::Instant;

use mwn::experiments::{FigureData, TableData};
use mwn::ExperimentScale;

/// Runs one reproduction bench: prints the banner, produces the figures
/// and tables, and prints them with timing.
pub fn reproduce(
    name: &str,
    paper_expectation: &str,
    produce: impl FnOnce(ExperimentScale) -> (Vec<FigureData>, Vec<TableData>),
) {
    let scale = ExperimentScale::from_env();
    println!("=== {name} ===");
    println!(
        "scale: {} batches x {} packets (MWN_SCALE={}; 25 = paper scale)",
        scale.batches,
        scale.batch_packets,
        std::env::var("MWN_SCALE").unwrap_or_else(|_| "1".into()),
    );
    println!("paper: {paper_expectation}");
    let started = Instant::now();
    let (figures, tables) = produce(scale);
    for f in &figures {
        println!();
        print!("{}", f.render());
    }
    for t in &tables {
        println!();
        print!("{}", t.render());
    }
    println!(
        "\n[{name} completed in {:.1}s]",
        started.elapsed().as_secs_f64()
    );
}

/// Convenience for single-figure benches.
pub fn reproduce_figure(
    name: &str,
    paper_expectation: &str,
    produce: impl FnOnce(ExperimentScale) -> FigureData,
) {
    reproduce(name, paper_expectation, |scale| {
        (vec![produce(scale)], vec![])
    });
}
