//! The network: every protocol layer wired to one event loop.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mwn_aodv::{AodvAction, AodvCounters, AodvDropReason, Router};
use mwn_mac80211::{Dcf, MacAction, MacCounters, MacDropReason, MacTimer};
use mwn_obs::flight::{self, FlightKind, FlightRecord, FlightRecorder, NO_REASON};
use mwn_obs::{
    ConservationAudit, ConservationReport, CounterBlock, DropLedger, DropReason, FctSummary,
    FlowCounters, MetricsSnapshot, NodeCounters, ProbeBuffer, ProbeKind,
};
use mwn_phy::{EnergyMeter, EnergyParams, Medium, RadioEvent, Transceiver, TxId};
use mwn_pkt::{Body, FlowId, MacFrame, NodeId, Packet};
use mwn_sim::stats::TimeWeightedAverage;
use mwn_sim::{EngineProfile, EventId, EventQueue, FxHashMap, Pcg32, SimDuration, SimTime};
use mwn_tcp::{
    PacedUdpSource, TcpSender, TcpSenderStats, TcpSink, TcpSinkStats, TransportAction,
    TransportTimer, UdpSink,
};
use mwn_traffic::TrafficEngine;

use crate::mobility::MobilityModel;
use crate::scenario::{Scenario, Transport};
use crate::trace::{TraceBuffer, TraceEvent, TraceRecord};

/// Which end of a flow a transport timer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Role {
    Source,
    Sink,
}

impl Role {
    /// Dense index into the per-flow timer table.
    fn index(self) -> usize {
        match self {
            Role::Source => 0,
            Role::Sink => 1,
        }
    }
}

#[derive(Debug)]
enum Event {
    /// A signal begins arriving at `node`.
    SignalStart {
        node: NodeId,
        tx: TxId,
        class: mwn_phy::SignalClass,
    },
    /// A signal stops arriving at `node`.
    SignalEnd { node: NodeId, tx: TxId },
    /// `node`'s own transmission ends.
    TxEnd { node: NodeId },
    /// A MAC timer fires at `node`.
    Mac { node: NodeId, timer: MacTimer },
    /// A jittered AODV transmission is due.
    AodvSend {
        node: NodeId,
        next_hop: NodeId,
        packet: Packet,
    },
    /// An AODV route-discovery timer fires.
    AodvDiscovery { node: NodeId, dst: NodeId },
    /// A transport timer fires.
    Transport {
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    },
    /// A flow opens.
    FlowStart { flow: FlowId },
    /// The next open-loop traffic flow of `class` arrives.
    TrafficArrival { class: usize },
    /// Mobility model tick: reposition nodes and recompute the medium.
    MobilityTick,
}

/// Stable event-kind name for the engine profile's histogram.
fn event_kind(event: &Event) -> &'static str {
    match event {
        Event::SignalStart { .. } => "signal_start",
        Event::SignalEnd { .. } => "signal_end",
        Event::TxEnd { .. } => "tx_end",
        Event::Mac { .. } => "mac_timer",
        Event::AodvSend { .. } => "aodv_send",
        Event::AodvDiscovery { .. } => "aodv_discovery",
        Event::Transport { .. } => "transport_timer",
        Event::FlowStart { .. } => "flow_start",
        Event::TrafficArrival { .. } => "traffic_arrival",
        Event::MobilityTick => "mobility_tick",
    }
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one agent per flow; size is irrelevant
enum SourceAgent {
    Tcp(TcpSender),
    Udp(PacedUdpSource),
}

#[derive(Debug)]
enum SinkAgent {
    Tcp(TcpSink),
    Udp(UdpSink),
}

/// Class marker for persistent (scenario-listed) flows, which never
/// complete and never free their slot.
const PERSISTENT: u32 = u32::MAX;

#[derive(Debug)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    source: SourceAgent,
    sink: SinkAgent,
    /// Packets delivered in order at the sink (goodput numerator).
    delivered: u64,
    /// When the sink last advanced (for latency measurements).
    last_delivery: Option<SimTime>,
    /// Time-weighted congestion window (TCP only).
    cwnd_twa: TimeWeightedAverage,
    /// Traffic class index, or [`PERSISTENT`].
    class: u32,
    /// When the transaction this leg belongs to started (the request
    /// arrival, even for a response leg).
    started: SimTime,
    /// Packets completed by earlier legs of the same transaction.
    carried: u64,
    /// Response-leg size to spawn once this leg completes (`None` for
    /// the final leg).
    response: Option<u64>,
}

/// One slot of the flow slab. The generation counter increments every
/// time the slot is vacated, so a stale [`FlowId`] (packets or timers
/// from a finished flow) can never reach the slot's next tenant.
#[derive(Debug)]
struct FlowSlot {
    generation: u32,
    flow: Option<Flow>,
}

/// Generation-checked slot lookup. A free function (not a method) so
/// callers can keep borrowing `Network`'s other fields while the flow
/// is held mutably.
fn lookup_flow(flows: &mut [FlowSlot], flow: FlowId) -> Option<&mut Flow> {
    let slot = flows.get_mut(flow.slot() as usize)?;
    if slot.generation != flow.generation() {
        return None;
    }
    slot.flow.as_mut()
}

/// The flow a transport-bodied packet belongs to (`FlowId::raw`); `None`
/// for AODV control traffic, which the custody audit excludes.
fn transport_flow(packet: &Packet) -> Option<u32> {
    match &packet.body {
        Body::Tcp(seg) => Some(seg.flow.raw()),
        Body::Udp(d) => Some(d.flow.raw()),
        Body::Aodv(_) => None,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds one value into an FNV-1a64 running hash, byte by byte.
fn fnv_mix(hash: &mut u64, value: u64) {
    for b in value.to_le_bytes() {
        *hash = (*hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
}

/// Journal-record tags for the traffic digest (distinct so an arrival
/// and a completion can never hash alike).
const JOURNAL_ARRIVAL: u64 = 0xA5;
const JOURNAL_COMPLETION: u64 = 0xC7;

/// Everything the network tracks for an open-loop workload: the
/// generator, per-class FCT accounting and two streaming digests.
///
/// The *journal* digest folds every spawn and completion (with times),
/// so two runs agree iff their whole traffic histories agree. The
/// *arrival* digest folds only first-leg arrivals, whose times and
/// draws are a pure function of the scenario seed — it is invariant
/// across deadline subdivision and worker counts by construction.
struct TrafficState {
    engine: TrafficEngine,
    transport: Transport,
    /// Legs spawned so far (requests and responses); names the uid
    /// namespace of each leg.
    spawn_counter: u64,
    /// Flows currently occupying slots.
    live: u64,
    fct: FctSummary,
    journal_count: u64,
    journal_hash: u64,
    arrival_count: u64,
    arrival_hash: u64,
}

/// Network-wide aggregate counters (sums over nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkTotals {
    /// Sum of per-node MAC counters.
    pub mac: MacCounters,
    /// Sum of per-node AODV counters.
    pub aodv: AodvCounters,
}

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The delivery target was reached.
    TargetReached,
    /// The simulated-time deadline passed first.
    DeadlineExpired,
    /// The event queue drained (network dead — indicates a bug or an
    /// unreachable destination with no retry source).
    Quiescent,
}

/// A fully wired multihop wireless network.
///
/// Build one from a [`Scenario`] via [`Scenario::build`], then drive it
/// with [`Network::run_until_delivered`].
pub struct Network {
    now: SimTime,
    queue: EventQueue<Event>,
    medium: Medium,
    params: mwn_mac80211::MacParams,
    transceivers: Vec<Transceiver>,
    macs: Vec<Dcf>,
    routers: Vec<Router>,
    energy: Vec<EnergyMeter>,
    /// Flow slab: persistent flows occupy slots `0..n` forever; traffic
    /// flows churn through the remainder via `free_slots`, so steady-state
    /// churn recycles slots (and their timer rows) without allocating.
    flows: Vec<FlowSlot>,
    /// Vacated slot indices, reused LIFO.
    free_slots: Vec<u32>,
    /// Open-loop workload state, if the scenario has one.
    traffic: Option<TrafficState>,
    /// Frames on the air: one shared payload per transmission plus the
    /// outstanding SignalEnd count. Every receiver decodes the same
    /// `Rc<MacFrame>`; the list is linear-scanned because only a handful
    /// of transmissions overlap at any instant.
    in_flight: Vec<(TxId, Rc<MacFrame>, usize)>,
    next_tx_id: u64,
    /// Flat per-node MAC timer table, indexed by [`MacTimer::index`].
    mac_timers: Vec<[Option<EventId>; MacTimer::COUNT]>,
    discovery_timers: FxHashMap<(NodeId, NodeId), EventId>,
    /// Flat per-flow transport timer table, `[role][timer]`.
    transport_timers: Vec<[[Option<EventId>; TransportTimer::COUNT]; 2]>,
    total_delivered: u64,
    trace: Option<TraceBuffer>,
    probes: Option<ProbeBuffer>,
    profile: Option<EngineProfile>,
    /// Always-on loss ledger: one array increment per drop event.
    ledger: DropLedger,
    /// Opt-in custody tracking for the conservation audit.
    audit: Option<ConservationAudit>,
    /// Always-on flight recorder of the rare events, shared with the
    /// panic hook via [`mwn_obs::flight::register`].
    flight: Rc<RefCell<FlightRecorder>>,
    mobility: Option<MobilityModel>,
    /// Reused moved-node batch for the mobility tick: only nodes whose
    /// position actually changed (paused nodes don't) are handed to the
    /// medium's incremental update.
    moved: Vec<(NodeId, mwn_phy::Position)>,
    /// Recycled action/event buffers. Dispatch re-enters (a delivered
    /// frame can start a new transmission), so each taker pops its own
    /// buffer and the apply path returns it once drained — the steady
    /// state allocates nothing.
    mac_pool: Vec<Vec<MacAction>>,
    aodv_pool: Vec<Vec<AodvAction>>,
    transport_pool: Vec<Vec<TransportAction>>,
    radio_pool: Vec<Vec<RadioEvent>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.macs.len())
            .field("flows", &self.flows.len())
            .field("total_delivered", &self.total_delivered)
            .finish_non_exhaustive()
    }
}

impl Network {
    pub(crate) fn build(scenario: &Scenario) -> Network {
        let n = scenario.topology.len();
        let params = scenario.mac_params();
        let medium = Medium::new(scenario.topology.positions().to_vec(), scenario.ranges);
        let mut root = Pcg32::new(scenario.seed);

        let transceivers = vec![Transceiver::with_capture(scenario.ranges.capture_threshold); n];
        let macs: Vec<Dcf> = (0..n)
            .map(|i| Dcf::new(NodeId(i as u32), params, root.fork()))
            .collect();
        let routers: Vec<Router> = (0..n)
            .map(|i| {
                Router::new(
                    NodeId(i as u32),
                    scenario.aodv,
                    root.fork(),
                    // uid namespace: top bit set, node id in the next bits.
                    (1 << 63) | ((i as u64) << 40),
                )
            })
            .collect();
        let energy = vec![EnergyMeter::new(EnergyParams::wavelan()); n];

        let mut queue = EventQueue::new();
        let mut flows = Vec::with_capacity(scenario.flows.len());
        for (i, spec) in scenario.flows.iter().enumerate() {
            let flow_id = FlowId(i as u32);
            let uid_base = (2 << 61) | ((i as u64) << 40);
            let (source, sink) = match spec.transport {
                Transport::Tcp {
                    flavor,
                    config,
                    ack_policy,
                } => (
                    SourceAgent::Tcp(TcpSender::new(
                        config, flavor, flow_id, spec.src, spec.dst, uid_base,
                    )),
                    SinkAgent::Tcp(TcpSink::new(
                        ack_policy,
                        flow_id,
                        spec.dst,
                        spec.src,
                        uid_base | (1 << 39),
                    )),
                ),
                Transport::PacedUdp { gap } => (
                    SourceAgent::Udp(PacedUdpSource::new(
                        flow_id, spec.src, spec.dst, gap, uid_base,
                    )),
                    SinkAgent::Udp(UdpSink::new()),
                ),
            };
            flows.push(FlowSlot {
                generation: 0,
                flow: Some(Flow {
                    src: spec.src,
                    dst: spec.dst,
                    source,
                    sink,
                    delivered: 0,
                    last_delivery: None,
                    cwnd_twa: TimeWeightedAverage::new(SimTime::ZERO, 1.0),
                    class: PERSISTENT,
                    started: SimTime::ZERO,
                    carried: 0,
                    response: None,
                }),
            });
            // Stagger flow starts slightly to de-synchronise discoveries.
            let start = SimTime::ZERO + SimDuration::from_millis(10 * i as u64);
            queue.schedule(start, Event::FlowStart { flow: flow_id });
        }

        let mobility = scenario.mobility.map(|params| {
            MobilityModel::new(params, scenario.topology.positions().to_vec(), root.fork())
        });
        if let Some(m) = &mobility {
            queue.schedule(SimTime::ZERO + m.tick(), Event::MobilityTick);
        }

        // The traffic fork comes after every other consumer of `root`, so
        // scenarios without traffic draw exactly the pre-traffic stream
        // (golden traces stay bit-identical).
        let mut traffic = scenario.traffic.as_ref().map(|spec| {
            assert!(
                matches!(spec.transport, Transport::Tcp { .. }),
                "open-loop traffic needs a TCP transport (completion is ACK-driven)"
            );
            let engine = TrafficEngine::new(spec.model.clone(), n as u32, &mut root);
            let fct = FctSummary::new(&spec.model.class_names());
            TrafficState {
                engine,
                transport: spec.transport,
                spawn_counter: 0,
                live: 0,
                fct,
                journal_count: 0,
                journal_hash: FNV_OFFSET,
                arrival_count: 0,
                arrival_hash: FNV_OFFSET,
            }
        });
        if let Some(t) = &mut traffic {
            for class in 0..t.engine.class_count() {
                let gap = t.engine.next_gap(class, 0.0);
                queue.schedule(SimTime::ZERO + gap, Event::TrafficArrival { class });
            }
        }

        // Ledger classes: the workload's traffic classes, then a class for
        // the scenario's persistent flows, then a catch-all for losses that
        // cannot be attributed to a live flow (stale generations, PHY
        // frame-level tallies).
        let mut class_names: Vec<String> = scenario
            .traffic
            .as_ref()
            .map(|spec| {
                spec.model
                    .class_names()
                    .iter()
                    .map(|n| n.to_string())
                    .collect()
            })
            .unwrap_or_default();
        class_names.push("persistent".into());
        class_names.push("unattributed".into());
        let ledger = DropLedger::new(n, class_names);
        let flight = Rc::new(RefCell::new(FlightRecorder::new(
            mwn_obs::flight::DEFAULT_CAPACITY,
        )));
        flight::register(&flight);

        Network {
            now: SimTime::ZERO,
            queue,
            medium,
            params,
            transceivers,
            macs,
            routers,
            energy,
            flows,
            free_slots: Vec::new(),
            traffic,
            in_flight: Vec::new(),
            next_tx_id: 0,
            mac_timers: vec![[None; MacTimer::COUNT]; n],
            discovery_timers: FxHashMap::default(),
            transport_timers: vec![[[None; TransportTimer::COUNT]; 2]; scenario.flows.len()],
            total_delivered: 0,
            trace: None,
            probes: None,
            profile: None,
            ledger,
            audit: None,
            flight,
            mobility,
            moved: Vec::new(),
            mac_pool: Vec::new(),
            aodv_pool: Vec::new(),
            transport_pool: Vec::new(),
            radio_pool: Vec::new(),
        }
    }

    /// Enables structured event tracing into a ring buffer of `capacity`
    /// records. See [`crate::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The retained trace records (empty unless tracing was enabled).
    pub fn trace(&self) -> Vec<&TraceRecord> {
        self.trace
            .as_ref()
            .map(|t| t.records().collect())
            .unwrap_or_default()
    }

    /// Trace records evicted because the ring buffer was full (zero means
    /// the retained trace is complete).
    pub fn trace_dropped(&self) -> u64 {
        self.trace
            .as_ref()
            .map_or(0, mwn_obs::trace::TraceBuffer::dropped)
    }

    /// Enables on-change time-series probes (cwnd, srtt, Vegas diff,
    /// interface-queue depth) into a ring buffer of `capacity` samples.
    pub fn enable_probes(&mut self, capacity: usize) {
        self.probes = Some(ProbeBuffer::new(capacity));
    }

    /// The probe buffer, if probes were enabled.
    pub fn probes(&self) -> Option<&ProbeBuffer> {
        self.probes.as_ref()
    }

    /// Enables event-loop self-profiling (events processed, histogram by
    /// kind, peak pending-event depth).
    pub fn enable_profiling(&mut self) {
        self.profile = Some(EngineProfile::new());
    }

    /// The engine profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_ref()
    }

    /// Enables custody tracking so [`Network::conservation_report`] can
    /// verify `created = destroyed + residual` per node and per flow.
    /// Call before running; the equations only balance when every custody
    /// event since time zero was seen.
    pub fn enable_audit(&mut self) {
        self.audit = Some(ConservationAudit::new(self.macs.len()));
    }

    /// `true` if custody tracking is on.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// The loss ledger with PHY frame-level tallies synthesized from the
    /// transceiver counters (collision, capture loss, undecodable). PHY
    /// losses are per frame, not per packet, so they land in the
    /// `unattributed` class.
    pub fn drop_report(&self) -> DropLedger {
        let mut ledger = self.ledger.clone();
        let unattributed = ledger.class_names().len() - 1;
        for (i, t) in self.transceivers.iter().enumerate() {
            let c = t.counters();
            ledger.add(i, unattributed, DropReason::PhyCollision, c.collisions);
            ledger.add(i, unattributed, DropReason::PhyCaptureLoss, c.captures);
            ledger.add(i, unattributed, DropReason::PhyUndecodable, c.undecoded);
        }
        ledger
    }

    /// Verifies packet conservation: for every node and every flow,
    /// packets created (originated + delivered up) must equal packets
    /// destroyed (handed off + consumed + terminally dropped) plus the
    /// copies still buffered in interface queues, in-service MAC slots
    /// and AODV discovery buffers. `None` unless
    /// [`Network::enable_audit`] was called before the run.
    pub fn conservation_report(&self) -> Option<ConservationReport> {
        let audit = self.audit.as_ref()?;
        let mut node_residual = vec![0u64; self.macs.len()];
        let mut flow_residual: HashMap<u32, u64> = HashMap::new();
        {
            let mut count = |i: usize, p: &Packet| {
                if let Some(flow) = transport_flow(p) {
                    node_residual[i] += 1;
                    *flow_residual.entry(flow).or_insert(0) += 1;
                }
            };
            for (i, mac) in self.macs.iter().enumerate() {
                for p in mac.queued_packets() {
                    count(i, p);
                }
                if let Some(p) = mac.current_packet() {
                    count(i, p);
                }
            }
            for (i, router) in self.routers.iter().enumerate() {
                for p in router.buffered_packets() {
                    count(i, p);
                }
            }
        }
        Some(audit.verify(&node_residual, &flow_residual))
    }

    /// The flight recorder's ring rendered as display lines (header plus
    /// the retained events, oldest first).
    pub fn flight_dump(&self) -> Vec<String> {
        self.flight.borrow().dump_lines()
    }

    /// Flight-recorder events written so far (retained or evicted).
    pub fn flight_written(&self) -> u64 {
        self.flight.borrow().written()
    }

    /// The ledger class a packet's losses are attributed to: its flow's
    /// traffic class, the `persistent` class for scenario-listed flows,
    /// or the trailing `unattributed` class when no live flow matches.
    fn packet_class(&self, packet: &Packet) -> usize {
        let unattributed = self.ledger.class_names().len() - 1;
        let flow_id = match &packet.body {
            Body::Tcp(seg) => seg.flow,
            Body::Udp(d) => d.flow,
            Body::Aodv(_) => return unattributed,
        };
        match self.flow_ref(flow_id) {
            Some(f) if f.class == PERSISTENT => unattributed - 1,
            Some(f) => f.class as usize,
            None => unattributed,
        }
    }

    /// Records a drop in the flight recorder and — for transport-bodied
    /// packets — in the ledger (the ledger is a *data-plane* account;
    /// dropped AODV control messages would muddy the per-cause tables)
    /// and, when the reason ends custody, in the audit.
    fn record_drop(&mut self, node: NodeId, packet: &Packet, reason: DropReason) {
        if let Some(flow) = transport_flow(packet) {
            let class = self.packet_class(packet);
            self.ledger.record(node.index(), class, reason);
            if reason.is_terminal() {
                if let Some(audit) = self.audit.as_mut() {
                    audit.terminal_drop(node.index(), flow);
                }
            }
        }
        self.flight.borrow_mut().record(FlightRecord {
            t_nanos: self.now.as_nanos(),
            id: packet.uid,
            node: node.raw(),
            kind: FlightKind::Drop,
            reason: reason.index() as u8,
        });
    }

    /// Appends a non-drop record to the flight recorder.
    fn flight_note(&mut self, node: NodeId, kind: FlightKind, id: u64) {
        self.flight.borrow_mut().record(FlightRecord {
            t_nanos: self.now.as_nanos(),
            id,
            node: node.raw(),
            kind,
            reason: NO_REASON,
        });
    }

    /// Records a trace event; the closure never runs (no formatting, no
    /// allocation) when tracing is disabled.
    fn trace_event(&mut self, node: NodeId, event: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &mut self.trace {
            buf.push(TraceRecord {
                time: self.now,
                node,
                event: event(),
            });
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total in-order packets delivered across all flows.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Number of flow *slots* (persistent flows plus the churn slab's
    /// high-water mark — not all slots are occupied).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of currently occupied flow slots.
    pub fn live_flow_count(&self) -> usize {
        self.flows.iter().filter(|s| s.flow.is_some()).count()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.macs.len()
    }

    /// Generation-checked read access; `None` for vacated or recycled
    /// slots.
    fn flow_ref(&self, flow: FlowId) -> Option<&Flow> {
        let slot = self.flows.get(flow.slot() as usize)?;
        if slot.generation != flow.generation() {
            return None;
        }
        slot.flow.as_ref()
    }

    /// The live flow id occupying `slot`, if any (traffic churn means a
    /// slot's generation moves on; callers must re-key per batch).
    pub fn flow_at(&self, slot: usize) -> Option<FlowId> {
        let s = self.flows.get(slot)?;
        s.flow
            .as_ref()
            .map(|_| FlowId::from_parts(slot as u32, s.generation))
    }

    /// In-order packets delivered by `flow`'s sink (0 once the flow has
    /// completed and its slot was vacated).
    pub fn flow_delivered(&self, flow: FlowId) -> u64 {
        self.flow_ref(flow).map_or(0, |f| f.delivered)
    }

    /// Sender statistics for a TCP flow (`None` for paced UDP or a
    /// vacated slot).
    pub fn flow_sender_stats(&self, flow: FlowId) -> Option<&TcpSenderStats> {
        match &self.flow_ref(flow)?.source {
            SourceAgent::Tcp(s) => Some(s.stats()),
            SourceAgent::Udp(_) => None,
        }
    }

    /// Sink statistics for a TCP flow (`None` for paced UDP or a vacated
    /// slot).
    pub fn flow_sink_stats(&self, flow: FlowId) -> Option<&TcpSinkStats> {
        match &self.flow_ref(flow)?.sink {
            SinkAgent::Tcp(s) => Some(s.stats()),
            SinkAgent::Udp(_) => None,
        }
    }

    /// When `flow`'s sink last advanced, if it ever did.
    pub fn flow_last_delivery(&self, flow: FlowId) -> Option<SimTime> {
        self.flow_ref(flow)?.last_delivery
    }

    /// Time-weighted average congestion window of `flow` since the last
    /// [`Network::reset_window_averages`] (1.0 for paced UDP or a
    /// vacated slot).
    pub fn flow_avg_window(&self, flow: FlowId) -> f64 {
        self.flow_ref(flow)
            .map_or(1.0, |f| f.cwnd_twa.average(self.now))
    }

    /// Restarts the per-flow window averages (called at batch boundaries).
    pub fn reset_window_averages(&mut self) {
        for s in &mut self.flows {
            if let Some(f) = &mut s.flow {
                f.cwnd_twa.reset(self.now);
            }
        }
    }

    /// Aggregate MAC and AODV counters over all nodes.
    pub fn totals(&self) -> NetworkTotals {
        let mut t = NetworkTotals::default();
        for m in &self.macs {
            t.mac = t.mac.plus(m.counters());
        }
        for r in &self.routers {
            t.aodv = t.aodv.plus(r.counters());
        }
        t
    }

    /// A whole-network counter snapshot (every layer, every node, every
    /// flow) at the current instant, for [`mwn_obs::MetricsRegistry`]
    /// batch-boundary deltas.
    pub fn collect_metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            time: self.now,
            nodes: (0..self.macs.len())
                .map(|i| NodeCounters {
                    phy: *self.transceivers[i].counters(),
                    mac: *self.macs[i].counters(),
                    aodv: *self.routers[i].counters(),
                    route_table_size: self.routers[i].table().len() as u64,
                    ifq_depth: self.macs[i].queue_len() as u64,
                })
                .collect(),
            flows: self
                .flows
                .iter()
                .map(|slot| match &slot.flow {
                    Some(f) => FlowCounters {
                        sender: match &f.source {
                            SourceAgent::Tcp(s) => Some(*s.stats()),
                            SourceAgent::Udp(_) => None,
                        },
                        sink: match &f.sink {
                            SinkAgent::Tcp(s) => Some(*s.stats()),
                            SinkAgent::Udp(_) => None,
                        },
                    },
                    None => FlowCounters {
                        sender: None,
                        sink: None,
                    },
                })
                .collect(),
        }
    }

    /// Total radio energy consumed by `node` so far, in joules.
    pub fn node_energy_joules(&self, node: NodeId) -> f64 {
        self.energy[node.index()].consumed(self.now)
    }

    /// Total radio energy over all nodes, in joules.
    pub fn total_energy_joules(&self) -> f64 {
        (0..self.energy.len())
            .map(|i| self.energy[i].consumed(self.now))
            .sum()
    }

    /// Runs until `target` total packets are delivered, the simulated-time
    /// `deadline` passes, or the event queue drains.
    pub fn run_until_delivered(&mut self, target: u64, deadline: SimTime) -> StepOutcome {
        while self.total_delivered < target {
            match self.queue.peek_time() {
                None => return StepOutcome::Quiescent,
                Some(t) if t > deadline => return StepOutcome::DeadlineExpired,
                Some(_) => self.step(),
            }
        }
        StepOutcome::TargetReached
    }

    /// `true` once the open-loop workload has spawned its whole arrival
    /// budget and every flow has completed (vacuously true without a
    /// workload).
    pub fn traffic_done(&self) -> bool {
        self.traffic
            .as_ref()
            .is_none_or(|t| t.engine.exhausted() && t.live == 0)
    }

    /// Runs until [`Network::traffic_done`], the simulated-time
    /// `deadline` passes, or the event queue drains.
    pub fn run_until_traffic_done(&mut self, deadline: SimTime) -> StepOutcome {
        while !self.traffic_done() {
            match self.queue.peek_time() {
                None => return StepOutcome::Quiescent,
                Some(t) if t > deadline => return StepOutcome::DeadlineExpired,
                Some(_) => self.step(),
            }
        }
        StepOutcome::TargetReached
    }

    /// Streaming per-class FCT/goodput accounting for the open-loop
    /// workload, if the scenario has one.
    pub fn traffic_summary(&self) -> Option<&FctSummary> {
        self.traffic.as_ref().map(|t| &t.fct)
    }

    /// `(records, fnv1a64)` digest of the full traffic journal — every
    /// spawn and completion with its time. Two runs of the same scenario
    /// match iff their traffic histories are identical.
    pub fn traffic_digest(&self) -> Option<(u64, u64)> {
        self.traffic
            .as_ref()
            .map(|t| (t.journal_count, t.journal_hash))
    }

    /// `(arrivals, fnv1a64)` digest of first-leg arrivals only. A pure
    /// function of the scenario seed: invariant across deadline
    /// subdivision and `--jobs` worker counts.
    pub fn traffic_arrival_digest(&self) -> Option<(u64, u64)> {
        self.traffic
            .as_ref()
            .map(|t| (t.arrival_count, t.arrival_hash))
    }

    /// Traffic legs spawned so far (requests plus response legs).
    pub fn traffic_spawned(&self) -> u64 {
        self.traffic.as_ref().map_or(0, |t| t.spawn_counter)
    }

    /// Runs until simulated time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Processes a single event. No-op if the queue is empty.
    pub fn step(&mut self) {
        let Some((t, event)) = self.queue.pop() else {
            return;
        };
        self.now = t;
        if let Some(p) = &mut self.profile {
            p.record(event_kind(&event), self.queue.len());
        }
        self.handle(event);
    }

    // ---- event dispatch --------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::SignalStart { node, tx, class } => {
                let mut evs = self.radio_pool.pop().unwrap_or_default();
                self.transceivers[node.index()].signal_start(tx, class, &mut evs);
                self.process_radio_events(node, evs);
            }
            Event::SignalEnd { node, tx } => {
                let mut evs = self.radio_pool.pop().unwrap_or_default();
                self.transceivers[node.index()].signal_end(tx, &mut evs);
                self.process_radio_events(node, evs);
                self.release_in_flight(tx);
            }
            Event::TxEnd { node } => {
                let mut evs = self.radio_pool.pop().unwrap_or_default();
                self.transceivers[node.index()].tx_end(&mut evs);
                let mut actions = self.mac_pool.pop().unwrap_or_default();
                self.macs[node.index()].on_tx_done(self.now, &mut actions);
                self.apply_mac_actions(node, actions);
                self.process_radio_events(node, evs);
            }
            Event::Mac { node, timer } => {
                self.mac_timers[node.index()][timer.index()] = None;
                let mut actions = self.mac_pool.pop().unwrap_or_default();
                self.macs[node.index()].on_timer(self.now, timer, &mut actions);
                self.apply_mac_actions(node, actions);
            }
            Event::AodvSend {
                node,
                next_hop,
                packet,
            } => {
                let mut actions = self.mac_pool.pop().unwrap_or_default();
                self.macs[node.index()].enqueue(self.now, next_hop, packet, &mut actions);
                self.apply_mac_actions(node, actions);
            }
            Event::AodvDiscovery { node, dst } => {
                self.discovery_timers.remove(&(node, dst));
                let mut actions = self.aodv_pool.pop().unwrap_or_default();
                self.routers[node.index()].on_discovery_timeout(self.now, dst, &mut actions);
                self.apply_aodv_actions(node, actions);
            }
            Event::Transport { flow, role, timer } => {
                // A completed traffic flow cancels its timers, so a stale
                // generation firing here should be impossible — but if one
                // ever slipped through, clearing the slot would wipe the
                // next tenant's timer id, so guard anyway.
                if self
                    .flows
                    .get(flow.slot() as usize)
                    .is_some_and(|s| s.generation == flow.generation())
                {
                    self.transport_timers[flow.slot() as usize][role.index()][timer.index()] = None;
                    self.dispatch_transport_timer(flow, role, timer);
                }
            }
            Event::MobilityTick => {
                if let Some(m) = &mut self.mobility {
                    let started = std::time::Instant::now();
                    let positions = m.step();
                    // Diff against the medium's current positions so the
                    // incremental update only touches nodes that moved
                    // (paused nodes hold their position across ticks).
                    self.moved.clear();
                    for (i, (&new, &old)) in
                        positions.iter().zip(self.medium.positions()).enumerate()
                    {
                        if new != old {
                            self.moved.push((NodeId(i as u32), new));
                        }
                    }
                    self.medium.move_nodes(&self.moved);
                    if let Some(p) = &mut self.profile {
                        p.record_timed("medium_recompute", started.elapsed().as_secs_f64());
                    }
                    let next = self.now + m.tick();
                    self.queue.schedule(next, Event::MobilityTick);
                }
            }
            Event::FlowStart { flow } => {
                let mut actions = self.transport_pool.pop().unwrap_or_default();
                let Some(f) = lookup_flow(&mut self.flows, flow) else {
                    self.transport_pool.push(actions);
                    return;
                };
                let node = f.src;
                match &mut f.source {
                    SourceAgent::Tcp(s) => s.start(self.now, &mut actions),
                    SourceAgent::Udp(s) => s.start(self.now, &mut actions),
                }
                self.note_window(flow);
                self.apply_transport_actions(flow, Role::Source, node, actions);
            }
            Event::TrafficArrival { class } => self.handle_traffic_arrival(class),
        }
    }

    /// One open-loop arrival: draw the flow, reschedule the class's next
    /// arrival, and spawn the request leg.
    fn handle_traffic_arrival(&mut self, class: usize) {
        let Some(t) = &mut self.traffic else {
            return;
        };
        if t.engine.exhausted() {
            return;
        }
        let draw = t.engine.draw(class);
        let response = t.engine.response_packets(class);
        let next =
            (!t.engine.exhausted()).then(|| t.engine.next_gap(class, self.now.as_secs_f64()));
        t.fct.class_mut(class).record_arrival();
        if let Some(gap) = next {
            self.queue
                .schedule(self.now + gap, Event::TrafficArrival { class });
        }
        self.spawn_traffic_flow(
            class as u32,
            NodeId(draw.src),
            NodeId(draw.dst),
            draw.packets,
            response,
            self.now,
            0,
        );
    }

    /// Admits one traffic leg into the slab: reuses a vacated slot (or
    /// grows the slab and its timer table once, at the high-water mark),
    /// builds the TCP pair with an app-limited budget, journals the
    /// spawn and starts the sender immediately.
    #[allow(clippy::too_many_arguments)]
    fn spawn_traffic_flow(
        &mut self,
        class: u32,
        src: NodeId,
        dst: NodeId,
        packets: u64,
        response: Option<u64>,
        started: SimTime,
        carried: u64,
    ) -> FlowId {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.flows.len() as u32;
                self.flows.push(FlowSlot {
                    generation: 0,
                    flow: None,
                });
                self.transport_timers
                    .push([[None; TransportTimer::COUNT]; 2]);
                s
            }
        };
        let generation = self.flows[slot as usize].generation;
        let flow_id = FlowId::from_parts(slot, generation);

        let t = self
            .traffic
            .as_mut()
            .expect("traffic flows need a traffic state");
        let k = t.spawn_counter;
        assert!(
            k < 1 << 21,
            "traffic spawn counter exhausted its uid namespace"
        );
        t.spawn_counter += 1;
        t.live += 1;
        let transport = t.transport;
        let t_ns = started.as_nanos();
        fnv_mix(&mut t.journal_hash, JOURNAL_ARRIVAL);
        fnv_mix(&mut t.journal_hash, k);
        fnv_mix(&mut t.journal_hash, u64::from(class));
        fnv_mix(&mut t.journal_hash, u64::from(src.raw()));
        fnv_mix(&mut t.journal_hash, u64::from(dst.raw()));
        fnv_mix(&mut t.journal_hash, packets);
        fnv_mix(&mut t.journal_hash, t_ns);
        t.journal_count += 1;
        if carried == 0 {
            // First legs only: response legs spawn at completion times,
            // which depend on how the network is coping.
            fnv_mix(&mut t.arrival_hash, u64::from(class));
            fnv_mix(&mut t.arrival_hash, u64::from(src.raw()));
            fnv_mix(&mut t.arrival_hash, u64::from(dst.raw()));
            fnv_mix(&mut t.arrival_hash, packets);
            fnv_mix(&mut t.arrival_hash, t_ns);
            t.arrival_count += 1;
        }

        let uid_base = (3 << 61) | (k << 40);
        let Transport::Tcp {
            flavor,
            config,
            ack_policy,
        } = transport
        else {
            unreachable!("build() rejects non-TCP traffic transports");
        };
        let mut sender = TcpSender::new(config, flavor, flow_id, src, dst, uid_base);
        sender.set_budget(packets);
        let sink = TcpSink::new(ack_policy, flow_id, dst, src, uid_base | (1 << 39));
        self.flows[slot as usize].flow = Some(Flow {
            src,
            dst,
            source: SourceAgent::Tcp(sender),
            sink: SinkAgent::Tcp(sink),
            delivered: 0,
            last_delivery: None,
            cwnd_twa: TimeWeightedAverage::new(self.now, 1.0),
            class,
            started,
            carried,
            response,
        });
        self.trace_event(src, || TraceEvent::FlowOpen {
            flow: flow_id,
            src,
            dst,
            packets,
        });
        self.flight_note(src, FlightKind::FlowOpen, u64::from(flow_id.raw()));

        let mut actions = self.transport_pool.pop().unwrap_or_default();
        let f = lookup_flow(&mut self.flows, flow_id).expect("slot was just filled");
        let SourceAgent::Tcp(s) = &mut f.source else {
            unreachable!("traffic flows are TCP");
        };
        s.start(self.now, &mut actions);
        self.note_window(flow_id);
        self.apply_transport_actions(flow_id, Role::Source, src, actions);
        flow_id
    }

    /// Retires a completed traffic leg: cancels its remaining timers,
    /// vacates and generation-bumps the slot, then either spawns the
    /// response leg or journals the finished transaction.
    fn complete_traffic_flow(&mut self, flow: FlowId) {
        let slot = flow.slot() as usize;
        for role in &mut self.transport_timers[slot] {
            for timer in role {
                if let Some(old) = timer.take() {
                    self.queue.cancel(old);
                }
            }
        }
        let entry = &mut self.flows[slot];
        debug_assert_eq!(entry.generation, flow.generation(), "stale completion");
        let f = entry.flow.take().expect("completing an empty slot");
        entry.generation = (entry.generation + 1) % FlowId::GENERATIONS;
        self.free_slots.push(slot as u32);

        let budget = match &f.source {
            SourceAgent::Tcp(s) => s.budget().expect("traffic sender has a budget"),
            SourceAgent::Udp(_) => unreachable!("traffic flows are TCP"),
        };
        let total = f.carried + budget;
        let t = self.traffic.as_mut().expect("traffic flow without state");
        t.live -= 1;
        if let Some(resp) = f.response {
            // Response leg runs the other way; the transaction's clock
            // and packet tally keep running.
            self.spawn_traffic_flow(f.class, f.dst, f.src, resp, None, f.started, total);
            return;
        }
        let fct = self.now.saturating_duration_since(f.started);
        fnv_mix(&mut t.journal_hash, JOURNAL_COMPLETION);
        fnv_mix(&mut t.journal_hash, u64::from(flow.raw()));
        fnv_mix(&mut t.journal_hash, u64::from(f.class));
        fnv_mix(&mut t.journal_hash, total);
        fnv_mix(&mut t.journal_hash, self.now.as_nanos());
        t.journal_count += 1;
        t.fct
            .class_mut(f.class as usize)
            .record_completion(fct, total);
        self.trace_event(f.src, || TraceEvent::FlowClose {
            flow,
            packets: total,
            fct_nanos: fct.as_nanos(),
        });
        self.flight_note(f.src, FlightKind::FlowClose, u64::from(flow.raw()));
    }

    fn dispatch_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer) {
        let mut actions = self.transport_pool.pop().unwrap_or_default();
        let Some(f) = lookup_flow(&mut self.flows, flow) else {
            self.transport_pool.push(actions);
            return;
        };
        let mut note = false;
        let node = match (role, timer, &mut f.source, &mut f.sink) {
            (Role::Source, TransportTimer::Rtx, SourceAgent::Tcp(s), _) => {
                s.on_rtx_timeout(self.now, &mut actions);
                note = true;
                f.src
            }
            (Role::Source, TransportTimer::Probe, SourceAgent::Tcp(s), _) => {
                s.on_probe_timer(self.now, &mut actions);
                f.src
            }
            (Role::Source, TransportTimer::Pace, SourceAgent::Udp(s), _) => {
                s.on_pace_timer(self.now, &mut actions);
                f.src
            }
            (Role::Sink, TransportTimer::DelayedAck, _, SinkAgent::Tcp(s)) => {
                s.on_delayed_ack_timer(self.now, &mut actions);
                f.dst
            }
            _ => {
                self.transport_pool.push(actions);
                return;
            }
        };
        if note {
            self.note_window(flow);
        }
        self.apply_transport_actions(flow, role, node, actions);
    }

    // ---- PHY plumbing ----------------------------------------------------

    fn process_radio_events(&mut self, node: NodeId, mut events: Vec<RadioEvent>) {
        for ev in events.drain(..) {
            let mut actions = self.mac_pool.pop().unwrap_or_default();
            match ev {
                RadioEvent::CarrierBusy => {
                    self.macs[node.index()].on_carrier_busy(self.now, &mut actions);
                }
                RadioEvent::CarrierIdle => {
                    self.macs[node.index()].on_carrier_idle(self.now, &mut actions);
                }
                RadioEvent::RxStart(_) => {}
                RadioEvent::UndecodedEnd => {
                    self.trace_event(node, || TraceEvent::PhyCorrupt);
                    self.macs[node.index()].on_rx_corrupt(self.now);
                }
                RadioEvent::RxEnd { tx, ok } => {
                    if ok {
                        let frame = self
                            .lookup_in_flight(tx)
                            .expect("RxEnd for unknown transmission");
                        self.trace_event(node, || TraceEvent::PhyRxOk);
                        self.macs[node.index()].on_rx_frame(self.now, &frame, &mut actions);
                    } else {
                        self.trace_event(node, || TraceEvent::PhyCorrupt);
                        self.macs[node.index()].on_rx_corrupt(self.now);
                    }
                }
            }
            self.apply_mac_actions(node, actions);
        }
        self.radio_pool.push(events);
    }

    /// The shared payload of transmission `tx`, if still on the air.
    fn lookup_in_flight(&self, tx: TxId) -> Option<Rc<MacFrame>> {
        self.in_flight
            .iter()
            .rev()
            .find(|(id, ..)| *id == tx)
            .map(|(_, f, _)| Rc::clone(f))
    }

    fn release_in_flight(&mut self, tx: TxId) {
        let Some(pos) = self.in_flight.iter().position(|(id, ..)| *id == tx) else {
            debug_assert!(false, "SignalEnd released unknown transmission {tx:?}");
            return;
        };
        let remaining = &mut self.in_flight[pos].2;
        *remaining -= 1;
        if *remaining == 0 {
            self.in_flight.swap_remove(pos);
        }
    }

    fn start_transmission(&mut self, node: NodeId, frame: MacFrame) {
        let duration = self.params.airtime(&frame);
        self.trace_event(node, || TraceEvent::MacTx {
            kind: frame.kind(),
            dst: frame.dst(),
            bytes: frame.size_bytes(),
            airtime: duration,
            nav: frame.nav(),
        });
        self.energy[node.index()].add_tx(duration);
        // `effects` borrows the medium in place; the loop only touches
        // disjoint fields (queue, energy), so no copy of the list is made.
        let effects = self.medium.effects_of(node);
        if !effects.is_empty() {
            let tx = TxId(self.next_tx_id);
            self.next_tx_id += 1;
            self.in_flight.push((tx, Rc::new(frame), effects.len()));
            for e in effects {
                self.queue.schedule(
                    self.now + e.delay,
                    Event::SignalStart {
                        node: e.node,
                        tx,
                        class: e.class,
                    },
                );
                self.queue.schedule(
                    self.now + e.delay + duration,
                    Event::SignalEnd { node: e.node, tx },
                );
                if e.class.decodable {
                    self.energy[e.node.index()].add_rx(duration);
                }
            }
        }
        self.queue
            .schedule(self.now + duration, Event::TxEnd { node });
        let mut evs = self.radio_pool.pop().unwrap_or_default();
        self.transceivers[node.index()].tx_start(&mut evs);
        self.process_radio_events(node, evs);
    }

    // ---- action application ----------------------------------------------

    fn apply_mac_actions(&mut self, node: NodeId, mut actions: Vec<MacAction>) {
        for action in actions.drain(..) {
            match action {
                MacAction::StartTx(frame) => self.start_transmission(node, frame),
                MacAction::SetTimer { timer, delay } => {
                    if timer == MacTimer::Defer {
                        self.trace_event(node, || TraceEvent::MacDefer {
                            nanos: delay.as_nanos(),
                        });
                    }
                    let slot = &mut self.mac_timers[node.index()][timer.index()];
                    if let Some(old) = slot.take() {
                        self.queue.cancel(old);
                    }
                    *slot = Some(
                        self.queue
                            .schedule(self.now + delay, Event::Mac { node, timer }),
                    );
                }
                MacAction::CancelTimer(timer) => {
                    if let Some(old) = self.mac_timers[node.index()][timer.index()].take() {
                        self.queue.cancel(old);
                    }
                }
                MacAction::Deliver { from, packet } => {
                    self.trace_event(node, || TraceEvent::MacRx {
                        uid: packet.uid,
                        from,
                    });
                    // Custody: this node now holds a fresh copy.
                    if let (Some(audit), Some(flow)) =
                        (self.audit.as_mut(), transport_flow(&packet))
                    {
                        audit.deliver_up(node.index(), flow);
                    }
                    let mut aodv = self.aodv_pool.pop().unwrap_or_default();
                    self.routers[node.index()].on_received(self.now, from, packet, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                MacAction::TxConfirm {
                    next_hop,
                    packet,
                    success,
                } => {
                    if success {
                        // Custody: the next hop's deliver-up created its
                        // own copy; this node's copy is done.
                        if let (Some(audit), Some(flow)) =
                            (self.audit.as_mut(), transport_flow(&packet))
                        {
                            audit.handoff(node.index(), flow);
                        }
                    } else {
                        self.trace_event(node, || TraceEvent::MacRetryExhausted {
                            uid: packet.uid,
                            next_hop,
                        });
                        // Frame-level loss: the router still holds the
                        // packet and decides its terminal fate (always a
                        // `RouteError` drop), so no custody event here.
                        if transport_flow(&packet).is_some() {
                            let class = self.packet_class(&packet);
                            self.ledger
                                .record(node.index(), class, DropReason::MacRetryExhausted);
                        }
                        self.flight_note(node, FlightKind::TxFail, packet.uid);
                    }
                    let mut aodv = self.aodv_pool.pop().unwrap_or_default();
                    self.routers[node.index()]
                        .on_tx_confirm(self.now, next_hop, packet, success, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                MacAction::Dropped { ref packet, reason } => {
                    let uid = packet.uid;
                    self.trace_event(node, || TraceEvent::MacQueueDrop { uid });
                    let reason = match reason {
                        MacDropReason::QueueFull => DropReason::IfqOverflow,
                        MacDropReason::EarlyDrop => DropReason::MacEarlyDrop,
                    };
                    self.record_drop(node, packet, reason);
                }
            }
        }
        if let Some(p) = &mut self.probes {
            let depth = self.macs[node.index()].queue_len();
            p.record(self.now, ProbeKind::IfqDepth, node.raw(), depth as f64);
        }
        self.mac_pool.push(actions);
    }

    fn apply_aodv_actions(&mut self, node: NodeId, mut actions: Vec<AodvAction>) {
        for action in actions.drain(..) {
            match action {
                AodvAction::Send {
                    packet,
                    next_hop,
                    delay,
                } => {
                    if delay.is_zero() {
                        let mut mac = self.mac_pool.pop().unwrap_or_default();
                        self.macs[node.index()].enqueue(self.now, next_hop, packet, &mut mac);
                        self.apply_mac_actions(node, mac);
                    } else {
                        self.queue.schedule(
                            self.now + delay,
                            Event::AodvSend {
                                node,
                                next_hop,
                                packet,
                            },
                        );
                    }
                }
                AodvAction::Deliver(packet) => {
                    self.trace_event(node, || TraceEvent::RouteDeliver { uid: packet.uid });
                    self.deliver_to_transport(node, packet)
                }
                AodvAction::SetDiscoveryTimer { dst, delay } => {
                    if let Some(old) = self.discovery_timers.remove(&(node, dst)) {
                        self.queue.cancel(old);
                    }
                    let id = self
                        .queue
                        .schedule(self.now + delay, Event::AodvDiscovery { node, dst });
                    self.discovery_timers.insert((node, dst), id);
                }
                AodvAction::CancelDiscoveryTimer { dst } => {
                    if let Some(old) = self.discovery_timers.remove(&(node, dst)) {
                        self.queue.cancel(old);
                    }
                }
                AodvAction::NotifyRouteFailure { dst } => {
                    self.trace_event(node, || TraceEvent::RouteFailure { dst });
                    self.flight_note(node, FlightKind::RouteFail, u64::from(dst.raw()));
                    self.notify_route_failure(node, dst);
                }
                AodvAction::RouteInstalled {
                    dst,
                    next_hop,
                    hop_count,
                    dst_seq,
                } => {
                    self.trace_event(node, || TraceEvent::RouteUpdate {
                        dst,
                        next_hop,
                        hop_count,
                        dst_seq,
                    });
                }
                AodvAction::RouteLost { dst, dst_seq } => {
                    self.trace_event(node, || TraceEvent::RouteInvalidate { dst, dst_seq });
                }
                AodvAction::Drop { ref packet, reason } => {
                    let uid = packet.uid;
                    self.trace_event(node, || TraceEvent::RouteDrop { uid, reason });
                    let reason = match reason {
                        AodvDropReason::NoRoute => DropReason::NoRoute,
                        AodvDropReason::LinkFailure => DropReason::RouteError,
                        AodvDropReason::TtlExpired => DropReason::TtlExpired,
                        AodvDropReason::BufferFull => DropReason::RouteBufferFull,
                    };
                    self.record_drop(node, packet, reason);
                }
            }
        }
        self.aodv_pool.push(actions);
    }

    fn deliver_to_transport(&mut self, node: NodeId, packet: Packet) {
        match &packet.body {
            Body::Tcp(seg) => {
                let flow_id = seg.flow;
                let flow_raw = flow_id.raw();
                let (seq, ack, is_data) = (seg.seq, seg.ack, seg.is_data());
                let mut actions = self.transport_pool.pop().unwrap_or_default();
                let Some(f) = lookup_flow(&mut self.flows, flow_id) else {
                    // Stale generation: a straggler from a finished flow.
                    self.transport_pool.push(actions);
                    self.record_drop(node, &packet, DropReason::FlowTeardown);
                    return;
                };
                if is_data && node == f.dst {
                    let SinkAgent::Tcp(sink) = &mut f.sink else {
                        self.transport_pool.push(actions);
                        return;
                    };
                    let before = sink.stats().delivered;
                    sink.on_data(self.now, seq, &mut actions);
                    let after = sink.stats().delivered;
                    if after > before {
                        f.last_delivery = Some(self.now);
                    }
                    f.delivered += after - before;
                    self.total_delivered += after - before;
                    // Custody: the endpoint consumed this copy (duplicate
                    // or not).
                    if let Some(audit) = self.audit.as_mut() {
                        audit.consume(node.index(), flow_raw);
                    }
                    let dst = f.dst;
                    self.apply_transport_actions(flow_id, Role::Sink, dst, actions);
                } else if !is_data && node == f.src {
                    let SourceAgent::Tcp(sender) = &mut f.source else {
                        self.transport_pool.push(actions);
                        return;
                    };
                    sender.on_ack(self.now, ack, &mut actions);
                    if let Some(audit) = self.audit.as_mut() {
                        audit.consume(node.index(), flow_raw);
                    }
                    let src = f.src;
                    self.note_window(flow_id);
                    self.apply_transport_actions(flow_id, Role::Source, src, actions);
                    // The ACK may have been the flow's last: an app-limited
                    // sender with its whole budget acknowledged retires.
                    let done = lookup_flow(&mut self.flows, flow_id).is_some_and(|f| {
                        f.class != PERSISTENT
                            && matches!(&f.source, SourceAgent::Tcp(s) if s.is_complete())
                    });
                    if done {
                        self.complete_traffic_flow(flow_id);
                    }
                } else {
                    self.transport_pool.push(actions);
                    // Wrong node or wrong direction: nothing consumes it.
                    self.record_drop(node, &packet, DropReason::SinkDiscard);
                }
            }
            Body::Udp(d) => {
                let flow_id = d.flow;
                let flow_raw = flow_id.raw();
                let Some(f) = lookup_flow(&mut self.flows, flow_id) else {
                    self.record_drop(node, &packet, DropReason::FlowTeardown);
                    return;
                };
                if node == f.dst {
                    let SinkAgent::Udp(sink) = &mut f.sink else {
                        return;
                    };
                    sink.on_data(d.seq);
                    f.delivered += 1;
                    f.last_delivery = Some(self.now);
                    self.total_delivered += 1;
                    if let Some(audit) = self.audit.as_mut() {
                        audit.consume(node.index(), flow_raw);
                    }
                } else {
                    self.record_drop(node, &packet, DropReason::SinkDiscard);
                }
            }
            Body::Aodv(_) => {
                // Routing messages never reach the transport layer.
            }
        }
    }

    /// ELFN: tells every local TCP sender whose flow targets `dst` that
    /// its route just failed.
    fn notify_route_failure(&mut self, node: NodeId, dst: NodeId) {
        for i in 0..self.flows.len() {
            let Some(f) = &self.flows[i].flow else {
                continue;
            };
            if f.src != node || f.dst != dst || !matches!(f.source, SourceAgent::Tcp(_)) {
                continue;
            }
            let flow_id = FlowId::from_parts(i as u32, self.flows[i].generation);
            let mut actions = self.transport_pool.pop().unwrap_or_default();
            let Some(SourceAgent::Tcp(sender)) = self.flows[i].flow.as_mut().map(|f| &mut f.source)
            else {
                unreachable!("checked above");
            };
            sender.on_route_failure(self.now, &mut actions);
            self.apply_transport_actions(flow_id, Role::Source, node, actions);
        }
    }

    fn note_window(&mut self, flow: FlowId) {
        let Some(f) = lookup_flow(&mut self.flows, flow) else {
            return;
        };
        let SourceAgent::Tcp(s) = &f.source else {
            return;
        };
        let node = f.src;
        let cwnd = s.cwnd();
        let srtt = s.srtt();
        let diff = s.vegas_diff();
        f.cwnd_twa.record(self.now, cwnd);
        // Fixed-point milli-packets keep the trace event `Eq`/hashable.
        self.trace_event(node, || TraceEvent::TcpCwnd {
            flow,
            cwnd_milli: (cwnd * 1000.0).round() as u64,
        });
        if let Some(diff) = diff {
            self.trace_event(node, || TraceEvent::TcpVegasDiff {
                flow,
                diff_milli: (diff * 1000.0).round() as i64,
            });
        }
        if let Some(p) = &mut self.probes {
            p.record(self.now, ProbeKind::Cwnd, flow.raw(), cwnd);
            if let Some(srtt) = srtt {
                p.record(self.now, ProbeKind::Srtt, flow.raw(), srtt.as_secs_f64());
            }
            if let Some(diff) = diff {
                p.record(self.now, ProbeKind::VegasDiff, flow.raw(), diff);
            }
        }
    }

    fn apply_transport_actions(
        &mut self,
        flow: FlowId,
        role: Role,
        node: NodeId,
        mut actions: Vec<TransportAction>,
    ) {
        for action in actions.drain(..) {
            match action {
                TransportAction::SendPacket(packet) => {
                    self.trace_event(node, || match &packet.body {
                        Body::Tcp(seg) if seg.is_data() => {
                            TraceEvent::TcpData { flow, seq: seg.seq }
                        }
                        Body::Tcp(seg) => TraceEvent::TcpAck { flow, ack: seg.ack },
                        Body::Udp(d) => TraceEvent::UdpData { flow, seq: d.seq },
                        Body::Aodv(_) => unreachable!("transport never sends AODV"),
                    });
                    // Custody: a fresh copy enters the network here.
                    if let (Some(audit), Some(flow_raw)) =
                        (self.audit.as_mut(), transport_flow(&packet))
                    {
                        audit.originate(node.index(), flow_raw);
                    }
                    let mut aodv = self.aodv_pool.pop().unwrap_or_default();
                    self.routers[node.index()].send(self.now, packet, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                TransportAction::SetTimer { timer, delay } => {
                    let slot = &mut self.transport_timers[flow.slot() as usize][role.index()]
                        [timer.index()];
                    if let Some(old) = slot.take() {
                        self.queue.cancel(old);
                    }
                    *slot = Some(
                        self.queue
                            .schedule(self.now + delay, Event::Transport { flow, role, timer }),
                    );
                }
                TransportAction::CancelTimer(timer) => {
                    if let Some(old) = self.transport_timers[flow.slot() as usize][role.index()]
                        [timer.index()]
                    .take()
                    {
                        self.queue.cancel(old);
                    }
                }
            }
        }
        self.transport_pool.push(actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FlowSpec, Transport};
    use crate::topology;
    use mwn_phy::DataRate;

    fn deadline(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn one_hop_tcp_delivers_packets() {
        let s = Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 1);
        let mut net = s.build();
        let outcome = net.run_until_delivered(50, deadline(60));
        assert_eq!(outcome, StepOutcome::TargetReached);
        assert!(net.flow_delivered(FlowId(0)) >= 50);
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn three_hop_vegas_delivers_packets() {
        let s = Scenario::chain(3, DataRate::MBPS_2, Transport::vegas(2), 2);
        let mut net = s.build();
        let outcome = net.run_until_delivered(50, deadline(120));
        assert_eq!(outcome, StepOutcome::TargetReached);
    }

    #[test]
    fn paced_udp_delivers_at_configured_rate() {
        let gap = SimDuration::from_millis(40);
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::paced_udp(gap), 3);
        let mut net = s.build();
        net.run_until(deadline(10));
        let got = net.flow_delivered(FlowId(0));
        // 10 s / 40 ms = 250 packets offered; expect most delivered.
        assert!(got > 200, "only {got} of ~250 CBR packets arrived");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), 42);
            let mut net = s.build();
            net.run_until_delivered(100, deadline(120));
            (net.now(), net.total_delivered(), net.totals())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_different_trace() {
        let run = |seed| {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), seed);
            let mut net = s.build();
            net.run_until_delivered(100, deadline(120));
            net.now()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn higher_bandwidth_is_faster() {
        let time_for = |rate| {
            let s = Scenario::chain(2, rate, Transport::newreno(), 7);
            let mut net = s.build();
            net.run_until_delivered(200, deadline(300));
            net.now()
        };
        assert!(time_for(DataRate::MBPS_11) < time_for(DataRate::MBPS_2));
    }

    #[test]
    fn energy_accumulates_with_traffic() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 5);
        let mut net = s.build();
        net.run_until_delivered(20, deadline(60));
        let idle_only = 0.74 * net.now().as_secs_f64();
        assert!(net.node_energy_joules(NodeId(0)) > idle_only);
        assert!(net.total_energy_joules() > 3.0 * idle_only);
    }

    #[test]
    fn two_flow_cross_traffic_makes_progress() {
        let t = topology::chain(4);
        let flows = vec![
            FlowSpec {
                src: NodeId(0),
                dst: NodeId(4),
                transport: Transport::vegas(2),
            },
            FlowSpec {
                src: NodeId(4),
                dst: NodeId(0),
                transport: Transport::vegas(2),
            },
        ];
        let s = Scenario::new(t, flows, DataRate::MBPS_2, 11);
        let mut net = s.build();
        net.run_until_delivered(100, deadline(240));
        assert!(net.flow_delivered(FlowId(0)) > 0);
        assert!(net.flow_delivered(FlowId(1)) > 0);
    }

    fn traffic_scenario(max_flows: u64, seed: u64) -> Scenario {
        use crate::scenario::TrafficSpec;
        use mwn_traffic::{Arrival, SizeDist, TrafficClass, TrafficModel};
        // Arrivals paced well apart from completions (0.5 s mean gap vs
        // ~0.1 s transfers), so slots genuinely churn instead of piling
        // up concurrently.
        let model = TrafficModel {
            classes: vec![TrafficClass {
                name: "short".into(),
                arrival: Arrival::Poisson { rate_fps: 2.0 },
                size: SizeDist::Fixed { packets: 3 },
                response: None,
            }],
            max_flows,
            zipf_skew: 0.5,
            diurnal: None,
        };
        let mut s = Scenario::new(topology::chain(3), Vec::new(), DataRate::MBPS_2, seed);
        s.traffic = Some(TrafficSpec {
            model,
            transport: Transport::newreno(),
        });
        s
    }

    #[test]
    fn open_loop_traffic_completes_with_slot_churn() {
        let mut net = traffic_scenario(60, 21).build();
        let out = net.run_until_traffic_done(deadline(4000));
        assert_eq!(out, StepOutcome::TargetReached);
        let sum = net
            .traffic_summary()
            .expect("traffic scenario has a summary");
        assert_eq!(sum.arrivals(), 60);
        assert_eq!(sum.completions(), 60);
        assert_eq!(net.live_flow_count(), 0);
        // 60 flows churned through a handful of recycled slots.
        assert!(
            net.flow_count() < 30,
            "slab grew to {} slots for 60 sequentially-completing flows",
            net.flow_count()
        );
        // heavy has no response legs: one spawn + one completion each.
        let (records, _) = net.traffic_digest().unwrap();
        assert_eq!(records, 120);
        let fct = sum.classes()[0].fct();
        assert!(fct.p99().expect("completions recorded") > 0.0);
        // Slab invariants: free slots are unique and genuinely vacant,
        // and every recycled slot's generation moved past zero.
        let mut fs = net.free_slots.clone();
        fs.sort_unstable();
        fs.dedup();
        assert_eq!(fs.len(), net.free_slots.len(), "free list has duplicates");
        for &slot in &net.free_slots {
            assert!(net.flows[slot as usize].flow.is_none());
            assert!(net.flows[slot as usize].generation > 0);
        }
    }

    #[test]
    fn traffic_digest_is_deterministic_and_seed_sensitive() {
        let digest = |seed| {
            let mut net = traffic_scenario(40, seed).build();
            assert_eq!(
                net.run_until_traffic_done(deadline(4000)),
                StepOutcome::TargetReached
            );
            net.traffic_digest().unwrap()
        };
        assert_eq!(digest(5), digest(5));
        assert_ne!(digest(5), digest(6));
    }

    #[test]
    fn traffic_digests_are_invariant_across_deadline_subdivision() {
        let run_chunked = |chunks: u64| {
            let mut net = traffic_scenario(40, 9).build();
            for c in 1..=chunks {
                net.run_until(deadline(40 * c / chunks));
            }
            assert_eq!(
                net.run_until_traffic_done(deadline(100_000)),
                StepOutcome::TargetReached
            );
            (
                net.traffic_arrival_digest().unwrap(),
                net.traffic_digest().unwrap(),
            )
        };
        assert_eq!(run_chunked(1), run_chunked(7));
    }

    #[test]
    fn scenarios_without_traffic_are_vacuously_done() {
        let s = Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 1);
        let mut net = s.build();
        assert!(net.traffic_done());
        assert!(net.traffic_digest().is_none());
        assert!(net.traffic_summary().is_none());
        assert_eq!(
            net.run_until_traffic_done(deadline(60)),
            StepOutcome::TargetReached
        );
        assert_eq!(net.live_flow_count(), 1);
    }

    #[test]
    fn window_average_tracks_tcp_only() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 9);
        let mut net = s.build();
        net.run_until_delivered(100, deadline(120));
        assert!(net.flow_avg_window(FlowId(0)) >= 1.0);
        net.reset_window_averages();
        // After a reset with no elapsed time, the average equals current.
        let w = net.flow_avg_window(FlowId(0));
        assert!(w >= 1.0);
    }
}
