//! The network: every protocol layer wired to one event loop.

use std::rc::Rc;

use mwn_aodv::{AodvAction, AodvCounters, Router};
use mwn_mac80211::{Dcf, MacAction, MacCounters, MacTimer};
use mwn_obs::{CounterBlock, FlowCounters, MetricsSnapshot, NodeCounters, ProbeBuffer, ProbeKind};
use mwn_phy::{EnergyMeter, EnergyParams, Medium, RadioEvent, Transceiver, TxId};
use mwn_pkt::{Body, FlowId, MacFrame, NodeId, Packet};
use mwn_sim::stats::TimeWeightedAverage;
use mwn_sim::{EngineProfile, EventId, EventQueue, FxHashMap, Pcg32, SimDuration, SimTime};
use mwn_tcp::{
    PacedUdpSource, TcpSender, TcpSenderStats, TcpSink, TcpSinkStats, TransportAction,
    TransportTimer, UdpSink,
};

use crate::mobility::MobilityModel;
use crate::scenario::{Scenario, Transport};
use crate::trace::{TraceBuffer, TraceEvent, TraceRecord};

/// Which end of a flow a transport timer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Role {
    Source,
    Sink,
}

impl Role {
    /// Dense index into the per-flow timer table.
    fn index(self) -> usize {
        match self {
            Role::Source => 0,
            Role::Sink => 1,
        }
    }
}

#[derive(Debug)]
enum Event {
    /// A signal begins arriving at `node`.
    SignalStart {
        node: NodeId,
        tx: TxId,
        class: mwn_phy::SignalClass,
    },
    /// A signal stops arriving at `node`.
    SignalEnd { node: NodeId, tx: TxId },
    /// `node`'s own transmission ends.
    TxEnd { node: NodeId },
    /// A MAC timer fires at `node`.
    Mac { node: NodeId, timer: MacTimer },
    /// A jittered AODV transmission is due.
    AodvSend {
        node: NodeId,
        next_hop: NodeId,
        packet: Packet,
    },
    /// An AODV route-discovery timer fires.
    AodvDiscovery { node: NodeId, dst: NodeId },
    /// A transport timer fires.
    Transport {
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    },
    /// A flow opens.
    FlowStart { flow: FlowId },
    /// Mobility model tick: reposition nodes and recompute the medium.
    MobilityTick,
}

/// Stable event-kind name for the engine profile's histogram.
fn event_kind(event: &Event) -> &'static str {
    match event {
        Event::SignalStart { .. } => "signal_start",
        Event::SignalEnd { .. } => "signal_end",
        Event::TxEnd { .. } => "tx_end",
        Event::Mac { .. } => "mac_timer",
        Event::AodvSend { .. } => "aodv_send",
        Event::AodvDiscovery { .. } => "aodv_discovery",
        Event::Transport { .. } => "transport_timer",
        Event::FlowStart { .. } => "flow_start",
        Event::MobilityTick => "mobility_tick",
    }
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one agent per flow; size is irrelevant
enum SourceAgent {
    Tcp(TcpSender),
    Udp(PacedUdpSource),
}

#[derive(Debug)]
enum SinkAgent {
    Tcp(TcpSink),
    Udp(UdpSink),
}

#[derive(Debug)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    source: SourceAgent,
    sink: SinkAgent,
    /// Packets delivered in order at the sink (goodput numerator).
    delivered: u64,
    /// When the sink last advanced (for latency measurements).
    last_delivery: Option<SimTime>,
    /// Time-weighted congestion window (TCP only).
    cwnd_twa: TimeWeightedAverage,
}

/// Network-wide aggregate counters (sums over nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkTotals {
    /// Sum of per-node MAC counters.
    pub mac: MacCounters,
    /// Sum of per-node AODV counters.
    pub aodv: AodvCounters,
}

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The delivery target was reached.
    TargetReached,
    /// The simulated-time deadline passed first.
    DeadlineExpired,
    /// The event queue drained (network dead — indicates a bug or an
    /// unreachable destination with no retry source).
    Quiescent,
}

/// A fully wired multihop wireless network.
///
/// Build one from a [`Scenario`] via [`Scenario::build`], then drive it
/// with [`Network::run_until_delivered`].
pub struct Network {
    now: SimTime,
    queue: EventQueue<Event>,
    medium: Medium,
    params: mwn_mac80211::MacParams,
    transceivers: Vec<Transceiver>,
    macs: Vec<Dcf>,
    routers: Vec<Router>,
    energy: Vec<EnergyMeter>,
    flows: Vec<Flow>,
    /// Frames on the air: one shared payload per transmission plus the
    /// outstanding SignalEnd count. Every receiver decodes the same
    /// `Rc<MacFrame>`; the list is linear-scanned because only a handful
    /// of transmissions overlap at any instant.
    in_flight: Vec<(TxId, Rc<MacFrame>, usize)>,
    next_tx_id: u64,
    /// Flat per-node MAC timer table, indexed by [`MacTimer::index`].
    mac_timers: Vec<[Option<EventId>; MacTimer::COUNT]>,
    discovery_timers: FxHashMap<(NodeId, NodeId), EventId>,
    /// Flat per-flow transport timer table, `[role][timer]`.
    transport_timers: Vec<[[Option<EventId>; TransportTimer::COUNT]; 2]>,
    total_delivered: u64,
    trace: Option<TraceBuffer>,
    probes: Option<ProbeBuffer>,
    profile: Option<EngineProfile>,
    mobility: Option<MobilityModel>,
    /// Reused moved-node batch for the mobility tick: only nodes whose
    /// position actually changed (paused nodes don't) are handed to the
    /// medium's incremental update.
    moved: Vec<(NodeId, mwn_phy::Position)>,
    /// Recycled action/event buffers. Dispatch re-enters (a delivered
    /// frame can start a new transmission), so each taker pops its own
    /// buffer and the apply path returns it once drained — the steady
    /// state allocates nothing.
    mac_pool: Vec<Vec<MacAction>>,
    aodv_pool: Vec<Vec<AodvAction>>,
    transport_pool: Vec<Vec<TransportAction>>,
    radio_pool: Vec<Vec<RadioEvent>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.macs.len())
            .field("flows", &self.flows.len())
            .field("total_delivered", &self.total_delivered)
            .finish_non_exhaustive()
    }
}

impl Network {
    pub(crate) fn build(scenario: &Scenario) -> Network {
        let n = scenario.topology.len();
        let params = scenario.mac_params();
        let medium = Medium::new(scenario.topology.positions().to_vec(), scenario.ranges);
        let mut root = Pcg32::new(scenario.seed);

        let transceivers = vec![Transceiver::with_capture(scenario.ranges.capture_threshold); n];
        let macs: Vec<Dcf> = (0..n)
            .map(|i| Dcf::new(NodeId(i as u32), params, root.fork()))
            .collect();
        let routers: Vec<Router> = (0..n)
            .map(|i| {
                Router::new(
                    NodeId(i as u32),
                    scenario.aodv,
                    root.fork(),
                    // uid namespace: top bit set, node id in the next bits.
                    (1 << 63) | ((i as u64) << 40),
                )
            })
            .collect();
        let energy = vec![EnergyMeter::new(EnergyParams::wavelan()); n];

        let mut queue = EventQueue::new();
        let mut flows = Vec::with_capacity(scenario.flows.len());
        for (i, spec) in scenario.flows.iter().enumerate() {
            let flow_id = FlowId(i as u32);
            let uid_base = (2 << 61) | ((i as u64) << 40);
            let (source, sink) = match spec.transport {
                Transport::Tcp {
                    flavor,
                    config,
                    ack_policy,
                } => (
                    SourceAgent::Tcp(TcpSender::new(
                        config, flavor, flow_id, spec.src, spec.dst, uid_base,
                    )),
                    SinkAgent::Tcp(TcpSink::new(
                        ack_policy,
                        flow_id,
                        spec.dst,
                        spec.src,
                        uid_base | (1 << 39),
                    )),
                ),
                Transport::PacedUdp { gap } => (
                    SourceAgent::Udp(PacedUdpSource::new(
                        flow_id, spec.src, spec.dst, gap, uid_base,
                    )),
                    SinkAgent::Udp(UdpSink::new()),
                ),
            };
            flows.push(Flow {
                src: spec.src,
                dst: spec.dst,
                source,
                sink,
                delivered: 0,
                last_delivery: None,
                cwnd_twa: TimeWeightedAverage::new(SimTime::ZERO, 1.0),
            });
            // Stagger flow starts slightly to de-synchronise discoveries.
            let start = SimTime::ZERO + SimDuration::from_millis(10 * i as u64);
            queue.schedule(start, Event::FlowStart { flow: flow_id });
        }

        let mobility = scenario.mobility.map(|params| {
            MobilityModel::new(params, scenario.topology.positions().to_vec(), root.fork())
        });
        if let Some(m) = &mobility {
            queue.schedule(SimTime::ZERO + m.tick(), Event::MobilityTick);
        }

        Network {
            now: SimTime::ZERO,
            queue,
            medium,
            params,
            transceivers,
            macs,
            routers,
            energy,
            flows,
            in_flight: Vec::new(),
            next_tx_id: 0,
            mac_timers: vec![[None; MacTimer::COUNT]; n],
            discovery_timers: FxHashMap::default(),
            transport_timers: vec![[[None; TransportTimer::COUNT]; 2]; scenario.flows.len()],
            total_delivered: 0,
            trace: None,
            probes: None,
            profile: None,
            mobility,
            moved: Vec::new(),
            mac_pool: Vec::new(),
            aodv_pool: Vec::new(),
            transport_pool: Vec::new(),
            radio_pool: Vec::new(),
        }
    }

    /// Enables structured event tracing into a ring buffer of `capacity`
    /// records. See [`crate::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The retained trace records (empty unless tracing was enabled).
    pub fn trace(&self) -> Vec<&TraceRecord> {
        self.trace
            .as_ref()
            .map(|t| t.records().collect())
            .unwrap_or_default()
    }

    /// Trace records evicted because the ring buffer was full (zero means
    /// the retained trace is complete).
    pub fn trace_dropped(&self) -> u64 {
        self.trace
            .as_ref()
            .map_or(0, mwn_obs::trace::TraceBuffer::dropped)
    }

    /// Enables on-change time-series probes (cwnd, srtt, Vegas diff,
    /// interface-queue depth) into a ring buffer of `capacity` samples.
    pub fn enable_probes(&mut self, capacity: usize) {
        self.probes = Some(ProbeBuffer::new(capacity));
    }

    /// The probe buffer, if probes were enabled.
    pub fn probes(&self) -> Option<&ProbeBuffer> {
        self.probes.as_ref()
    }

    /// Enables event-loop self-profiling (events processed, histogram by
    /// kind, peak pending-event depth).
    pub fn enable_profiling(&mut self) {
        self.profile = Some(EngineProfile::new());
    }

    /// The engine profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_ref()
    }

    /// Records a trace event; the closure never runs (no formatting, no
    /// allocation) when tracing is disabled.
    fn trace_event(&mut self, node: NodeId, event: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &mut self.trace {
            buf.push(TraceRecord {
                time: self.now,
                node,
                event: event(),
            });
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total in-order packets delivered across all flows.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.macs.len()
    }

    /// In-order packets delivered by `flow`'s sink.
    pub fn flow_delivered(&self, flow: FlowId) -> u64 {
        self.flows[flow.index()].delivered
    }

    /// Sender statistics for a TCP flow (`None` for paced UDP).
    pub fn flow_sender_stats(&self, flow: FlowId) -> Option<&TcpSenderStats> {
        match &self.flows[flow.index()].source {
            SourceAgent::Tcp(s) => Some(s.stats()),
            SourceAgent::Udp(_) => None,
        }
    }

    /// Sink statistics for a TCP flow (`None` for paced UDP).
    pub fn flow_sink_stats(&self, flow: FlowId) -> Option<&TcpSinkStats> {
        match &self.flows[flow.index()].sink {
            SinkAgent::Tcp(s) => Some(s.stats()),
            SinkAgent::Udp(_) => None,
        }
    }

    /// When `flow`'s sink last advanced, if it ever did.
    pub fn flow_last_delivery(&self, flow: FlowId) -> Option<SimTime> {
        self.flows[flow.index()].last_delivery
    }

    /// Time-weighted average congestion window of `flow` since the last
    /// [`Network::reset_window_averages`] (1.0 for paced UDP).
    pub fn flow_avg_window(&self, flow: FlowId) -> f64 {
        self.flows[flow.index()].cwnd_twa.average(self.now)
    }

    /// Restarts the per-flow window averages (called at batch boundaries).
    pub fn reset_window_averages(&mut self) {
        for f in &mut self.flows {
            f.cwnd_twa.reset(self.now);
        }
    }

    /// Aggregate MAC and AODV counters over all nodes.
    pub fn totals(&self) -> NetworkTotals {
        let mut t = NetworkTotals::default();
        for m in &self.macs {
            t.mac = t.mac.plus(m.counters());
        }
        for r in &self.routers {
            t.aodv = t.aodv.plus(r.counters());
        }
        t
    }

    /// A whole-network counter snapshot (every layer, every node, every
    /// flow) at the current instant, for [`mwn_obs::MetricsRegistry`]
    /// batch-boundary deltas.
    pub fn collect_metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            time: self.now,
            nodes: (0..self.macs.len())
                .map(|i| NodeCounters {
                    phy: *self.transceivers[i].counters(),
                    mac: *self.macs[i].counters(),
                    aodv: *self.routers[i].counters(),
                    route_table_size: self.routers[i].table().len() as u64,
                    ifq_depth: self.macs[i].queue_len() as u64,
                })
                .collect(),
            flows: self
                .flows
                .iter()
                .map(|f| FlowCounters {
                    sender: match &f.source {
                        SourceAgent::Tcp(s) => Some(*s.stats()),
                        SourceAgent::Udp(_) => None,
                    },
                    sink: match &f.sink {
                        SinkAgent::Tcp(s) => Some(*s.stats()),
                        SinkAgent::Udp(_) => None,
                    },
                })
                .collect(),
        }
    }

    /// Total radio energy consumed by `node` so far, in joules.
    pub fn node_energy_joules(&self, node: NodeId) -> f64 {
        self.energy[node.index()].consumed(self.now)
    }

    /// Total radio energy over all nodes, in joules.
    pub fn total_energy_joules(&self) -> f64 {
        (0..self.energy.len())
            .map(|i| self.energy[i].consumed(self.now))
            .sum()
    }

    /// Runs until `target` total packets are delivered, the simulated-time
    /// `deadline` passes, or the event queue drains.
    pub fn run_until_delivered(&mut self, target: u64, deadline: SimTime) -> StepOutcome {
        while self.total_delivered < target {
            match self.queue.peek_time() {
                None => return StepOutcome::Quiescent,
                Some(t) if t > deadline => return StepOutcome::DeadlineExpired,
                Some(_) => self.step(),
            }
        }
        StepOutcome::TargetReached
    }

    /// Runs until simulated time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Processes a single event. No-op if the queue is empty.
    pub fn step(&mut self) {
        let Some((t, event)) = self.queue.pop() else {
            return;
        };
        self.now = t;
        if let Some(p) = &mut self.profile {
            p.record(event_kind(&event), self.queue.len());
        }
        self.handle(event);
    }

    // ---- event dispatch --------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::SignalStart { node, tx, class } => {
                let mut evs = self.radio_pool.pop().unwrap_or_default();
                self.transceivers[node.index()].signal_start(tx, class, &mut evs);
                self.process_radio_events(node, evs);
            }
            Event::SignalEnd { node, tx } => {
                let mut evs = self.radio_pool.pop().unwrap_or_default();
                self.transceivers[node.index()].signal_end(tx, &mut evs);
                self.process_radio_events(node, evs);
                self.release_in_flight(tx);
            }
            Event::TxEnd { node } => {
                let mut evs = self.radio_pool.pop().unwrap_or_default();
                self.transceivers[node.index()].tx_end(&mut evs);
                let mut actions = self.mac_pool.pop().unwrap_or_default();
                self.macs[node.index()].on_tx_done(self.now, &mut actions);
                self.apply_mac_actions(node, actions);
                self.process_radio_events(node, evs);
            }
            Event::Mac { node, timer } => {
                self.mac_timers[node.index()][timer.index()] = None;
                let mut actions = self.mac_pool.pop().unwrap_or_default();
                self.macs[node.index()].on_timer(self.now, timer, &mut actions);
                self.apply_mac_actions(node, actions);
            }
            Event::AodvSend {
                node,
                next_hop,
                packet,
            } => {
                let mut actions = self.mac_pool.pop().unwrap_or_default();
                self.macs[node.index()].enqueue(self.now, next_hop, packet, &mut actions);
                self.apply_mac_actions(node, actions);
            }
            Event::AodvDiscovery { node, dst } => {
                self.discovery_timers.remove(&(node, dst));
                let mut actions = self.aodv_pool.pop().unwrap_or_default();
                self.routers[node.index()].on_discovery_timeout(self.now, dst, &mut actions);
                self.apply_aodv_actions(node, actions);
            }
            Event::Transport { flow, role, timer } => {
                self.transport_timers[flow.index()][role.index()][timer.index()] = None;
                self.dispatch_transport_timer(flow, role, timer);
            }
            Event::MobilityTick => {
                if let Some(m) = &mut self.mobility {
                    let started = std::time::Instant::now();
                    let positions = m.step();
                    // Diff against the medium's current positions so the
                    // incremental update only touches nodes that moved
                    // (paused nodes hold their position across ticks).
                    self.moved.clear();
                    for (i, (&new, &old)) in
                        positions.iter().zip(self.medium.positions()).enumerate()
                    {
                        if new != old {
                            self.moved.push((NodeId(i as u32), new));
                        }
                    }
                    self.medium.move_nodes(&self.moved);
                    if let Some(p) = &mut self.profile {
                        p.record_timed("medium_recompute", started.elapsed().as_secs_f64());
                    }
                    let next = self.now + m.tick();
                    self.queue.schedule(next, Event::MobilityTick);
                }
            }
            Event::FlowStart { flow } => {
                let mut actions = self.transport_pool.pop().unwrap_or_default();
                let f = &mut self.flows[flow.index()];
                let node = f.src;
                match &mut f.source {
                    SourceAgent::Tcp(s) => s.start(self.now, &mut actions),
                    SourceAgent::Udp(s) => s.start(self.now, &mut actions),
                }
                self.note_window(flow);
                self.apply_transport_actions(flow, Role::Source, node, actions);
            }
        }
    }

    fn dispatch_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer) {
        let mut actions = self.transport_pool.pop().unwrap_or_default();
        let f = &mut self.flows[flow.index()];
        let mut note = false;
        let node = match (role, timer, &mut f.source, &mut f.sink) {
            (Role::Source, TransportTimer::Rtx, SourceAgent::Tcp(s), _) => {
                s.on_rtx_timeout(self.now, &mut actions);
                note = true;
                f.src
            }
            (Role::Source, TransportTimer::Probe, SourceAgent::Tcp(s), _) => {
                s.on_probe_timer(self.now, &mut actions);
                f.src
            }
            (Role::Source, TransportTimer::Pace, SourceAgent::Udp(s), _) => {
                s.on_pace_timer(self.now, &mut actions);
                f.src
            }
            (Role::Sink, TransportTimer::DelayedAck, _, SinkAgent::Tcp(s)) => {
                s.on_delayed_ack_timer(self.now, &mut actions);
                f.dst
            }
            _ => {
                self.transport_pool.push(actions);
                return;
            }
        };
        if note {
            self.note_window(flow);
        }
        self.apply_transport_actions(flow, role, node, actions);
    }

    // ---- PHY plumbing ----------------------------------------------------

    fn process_radio_events(&mut self, node: NodeId, mut events: Vec<RadioEvent>) {
        for ev in events.drain(..) {
            let mut actions = self.mac_pool.pop().unwrap_or_default();
            match ev {
                RadioEvent::CarrierBusy => {
                    self.macs[node.index()].on_carrier_busy(self.now, &mut actions);
                }
                RadioEvent::CarrierIdle => {
                    self.macs[node.index()].on_carrier_idle(self.now, &mut actions);
                }
                RadioEvent::RxStart(_) => {}
                RadioEvent::UndecodedEnd => {
                    self.trace_event(node, || TraceEvent::PhyCorrupt);
                    self.macs[node.index()].on_rx_corrupt(self.now);
                }
                RadioEvent::RxEnd { tx, ok } => {
                    if ok {
                        let frame = self
                            .lookup_in_flight(tx)
                            .expect("RxEnd for unknown transmission");
                        self.trace_event(node, || TraceEvent::PhyRxOk);
                        self.macs[node.index()].on_rx_frame(self.now, &frame, &mut actions);
                    } else {
                        self.trace_event(node, || TraceEvent::PhyCorrupt);
                        self.macs[node.index()].on_rx_corrupt(self.now);
                    }
                }
            }
            self.apply_mac_actions(node, actions);
        }
        self.radio_pool.push(events);
    }

    /// The shared payload of transmission `tx`, if still on the air.
    fn lookup_in_flight(&self, tx: TxId) -> Option<Rc<MacFrame>> {
        self.in_flight
            .iter()
            .rev()
            .find(|(id, ..)| *id == tx)
            .map(|(_, f, _)| Rc::clone(f))
    }

    fn release_in_flight(&mut self, tx: TxId) {
        let Some(pos) = self.in_flight.iter().position(|(id, ..)| *id == tx) else {
            debug_assert!(false, "SignalEnd released unknown transmission {tx:?}");
            return;
        };
        let remaining = &mut self.in_flight[pos].2;
        *remaining -= 1;
        if *remaining == 0 {
            self.in_flight.swap_remove(pos);
        }
    }

    fn start_transmission(&mut self, node: NodeId, frame: MacFrame) {
        let duration = self.params.airtime(&frame);
        self.trace_event(node, || TraceEvent::MacTx {
            kind: frame.kind(),
            dst: frame.dst(),
            bytes: frame.size_bytes(),
            airtime: duration,
            nav: frame.nav(),
        });
        self.energy[node.index()].add_tx(duration);
        // `effects` borrows the medium in place; the loop only touches
        // disjoint fields (queue, energy), so no copy of the list is made.
        let effects = self.medium.effects_of(node);
        if !effects.is_empty() {
            let tx = TxId(self.next_tx_id);
            self.next_tx_id += 1;
            self.in_flight.push((tx, Rc::new(frame), effects.len()));
            for e in effects {
                self.queue.schedule(
                    self.now + e.delay,
                    Event::SignalStart {
                        node: e.node,
                        tx,
                        class: e.class,
                    },
                );
                self.queue.schedule(
                    self.now + e.delay + duration,
                    Event::SignalEnd { node: e.node, tx },
                );
                if e.class.decodable {
                    self.energy[e.node.index()].add_rx(duration);
                }
            }
        }
        self.queue
            .schedule(self.now + duration, Event::TxEnd { node });
        let mut evs = self.radio_pool.pop().unwrap_or_default();
        self.transceivers[node.index()].tx_start(&mut evs);
        self.process_radio_events(node, evs);
    }

    // ---- action application ----------------------------------------------

    fn apply_mac_actions(&mut self, node: NodeId, mut actions: Vec<MacAction>) {
        for action in actions.drain(..) {
            match action {
                MacAction::StartTx(frame) => self.start_transmission(node, frame),
                MacAction::SetTimer { timer, delay } => {
                    if timer == MacTimer::Defer {
                        self.trace_event(node, || TraceEvent::MacDefer {
                            nanos: delay.as_nanos(),
                        });
                    }
                    let slot = &mut self.mac_timers[node.index()][timer.index()];
                    if let Some(old) = slot.take() {
                        self.queue.cancel(old);
                    }
                    *slot = Some(
                        self.queue
                            .schedule(self.now + delay, Event::Mac { node, timer }),
                    );
                }
                MacAction::CancelTimer(timer) => {
                    if let Some(old) = self.mac_timers[node.index()][timer.index()].take() {
                        self.queue.cancel(old);
                    }
                }
                MacAction::Deliver { from, packet } => {
                    self.trace_event(node, || TraceEvent::MacRx {
                        uid: packet.uid,
                        from,
                    });
                    let mut aodv = self.aodv_pool.pop().unwrap_or_default();
                    self.routers[node.index()].on_received(self.now, from, packet, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                MacAction::TxConfirm {
                    next_hop,
                    packet,
                    success,
                } => {
                    if !success {
                        self.trace_event(node, || TraceEvent::MacRetryExhausted {
                            uid: packet.uid,
                            next_hop,
                        });
                    }
                    let mut aodv = self.aodv_pool.pop().unwrap_or_default();
                    self.routers[node.index()]
                        .on_tx_confirm(self.now, next_hop, packet, success, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                MacAction::Dropped { ref packet, .. } => {
                    // Queue drops are already tallied in the MAC counters;
                    // the transport recovers end-to-end.
                    let uid = packet.uid;
                    self.trace_event(node, || TraceEvent::MacQueueDrop { uid });
                }
            }
        }
        if let Some(p) = &mut self.probes {
            let depth = self.macs[node.index()].queue_len();
            p.record(self.now, ProbeKind::IfqDepth, node.raw(), depth as f64);
        }
        self.mac_pool.push(actions);
    }

    fn apply_aodv_actions(&mut self, node: NodeId, mut actions: Vec<AodvAction>) {
        for action in actions.drain(..) {
            match action {
                AodvAction::Send {
                    packet,
                    next_hop,
                    delay,
                } => {
                    if delay.is_zero() {
                        let mut mac = self.mac_pool.pop().unwrap_or_default();
                        self.macs[node.index()].enqueue(self.now, next_hop, packet, &mut mac);
                        self.apply_mac_actions(node, mac);
                    } else {
                        self.queue.schedule(
                            self.now + delay,
                            Event::AodvSend {
                                node,
                                next_hop,
                                packet,
                            },
                        );
                    }
                }
                AodvAction::Deliver(packet) => {
                    self.trace_event(node, || TraceEvent::RouteDeliver { uid: packet.uid });
                    self.deliver_to_transport(node, packet)
                }
                AodvAction::SetDiscoveryTimer { dst, delay } => {
                    if let Some(old) = self.discovery_timers.remove(&(node, dst)) {
                        self.queue.cancel(old);
                    }
                    let id = self
                        .queue
                        .schedule(self.now + delay, Event::AodvDiscovery { node, dst });
                    self.discovery_timers.insert((node, dst), id);
                }
                AodvAction::CancelDiscoveryTimer { dst } => {
                    if let Some(old) = self.discovery_timers.remove(&(node, dst)) {
                        self.queue.cancel(old);
                    }
                }
                AodvAction::NotifyRouteFailure { dst } => {
                    self.trace_event(node, || TraceEvent::RouteFailure { dst });
                    self.notify_route_failure(node, dst);
                }
                AodvAction::RouteInstalled {
                    dst,
                    next_hop,
                    hop_count,
                    dst_seq,
                } => {
                    self.trace_event(node, || TraceEvent::RouteUpdate {
                        dst,
                        next_hop,
                        hop_count,
                        dst_seq,
                    });
                }
                AodvAction::RouteLost { dst, dst_seq } => {
                    self.trace_event(node, || TraceEvent::RouteInvalidate { dst, dst_seq });
                }
                AodvAction::Drop { ref packet, reason } => {
                    // Tallied in the router's counters.
                    let uid = packet.uid;
                    self.trace_event(node, || TraceEvent::RouteDrop { uid, reason });
                }
            }
        }
        self.aodv_pool.push(actions);
    }

    fn deliver_to_transport(&mut self, node: NodeId, packet: Packet) {
        match &packet.body {
            Body::Tcp(seg) => {
                let flow_id = seg.flow;
                let (seq, ack, is_data) = (seg.seq, seg.ack, seg.is_data());
                let mut actions = self.transport_pool.pop().unwrap_or_default();
                let Some(f) = self.flows.get_mut(flow_id.index()) else {
                    self.transport_pool.push(actions);
                    return;
                };
                if is_data && node == f.dst {
                    let SinkAgent::Tcp(sink) = &mut f.sink else {
                        self.transport_pool.push(actions);
                        return;
                    };
                    let before = sink.stats().delivered;
                    sink.on_data(self.now, seq, &mut actions);
                    let after = sink.stats().delivered;
                    if after > before {
                        f.last_delivery = Some(self.now);
                    }
                    f.delivered += after - before;
                    self.total_delivered += after - before;
                    let dst = f.dst;
                    self.apply_transport_actions(flow_id, Role::Sink, dst, actions);
                } else if !is_data && node == f.src {
                    let SourceAgent::Tcp(sender) = &mut f.source else {
                        self.transport_pool.push(actions);
                        return;
                    };
                    sender.on_ack(self.now, ack, &mut actions);
                    let src = f.src;
                    self.note_window(flow_id);
                    self.apply_transport_actions(flow_id, Role::Source, src, actions);
                } else {
                    self.transport_pool.push(actions);
                }
            }
            Body::Udp(d) => {
                let flow_id = d.flow;
                let Some(f) = self.flows.get_mut(flow_id.index()) else {
                    return;
                };
                if node == f.dst {
                    let SinkAgent::Udp(sink) = &mut f.sink else {
                        return;
                    };
                    sink.on_data(d.seq);
                    f.delivered += 1;
                    f.last_delivery = Some(self.now);
                    self.total_delivered += 1;
                }
            }
            Body::Aodv(_) => {
                // Routing messages never reach the transport layer.
            }
        }
    }

    /// ELFN: tells every local TCP sender whose flow targets `dst` that
    /// its route just failed.
    fn notify_route_failure(&mut self, node: NodeId, dst: NodeId) {
        for i in 0..self.flows.len() {
            let flow_id = FlowId(i as u32);
            let f = &self.flows[i];
            if f.src != node || f.dst != dst || !matches!(f.source, SourceAgent::Tcp(_)) {
                continue;
            }
            let mut actions = self.transport_pool.pop().unwrap_or_default();
            let SourceAgent::Tcp(sender) = &mut self.flows[i].source else {
                unreachable!("checked above");
            };
            sender.on_route_failure(self.now, &mut actions);
            self.apply_transport_actions(flow_id, Role::Source, node, actions);
        }
    }

    fn note_window(&mut self, flow: FlowId) {
        let f = &mut self.flows[flow.index()];
        let SourceAgent::Tcp(s) = &f.source else {
            return;
        };
        let node = f.src;
        let cwnd = s.cwnd();
        let srtt = s.srtt();
        let diff = s.vegas_diff();
        f.cwnd_twa.record(self.now, cwnd);
        // Fixed-point milli-packets keep the trace event `Eq`/hashable.
        self.trace_event(node, || TraceEvent::TcpCwnd {
            flow,
            cwnd_milli: (cwnd * 1000.0).round() as u64,
        });
        if let Some(diff) = diff {
            self.trace_event(node, || TraceEvent::TcpVegasDiff {
                flow,
                diff_milli: (diff * 1000.0).round() as i64,
            });
        }
        if let Some(p) = &mut self.probes {
            p.record(self.now, ProbeKind::Cwnd, flow.raw(), cwnd);
            if let Some(srtt) = srtt {
                p.record(self.now, ProbeKind::Srtt, flow.raw(), srtt.as_secs_f64());
            }
            if let Some(diff) = diff {
                p.record(self.now, ProbeKind::VegasDiff, flow.raw(), diff);
            }
        }
    }

    fn apply_transport_actions(
        &mut self,
        flow: FlowId,
        role: Role,
        node: NodeId,
        mut actions: Vec<TransportAction>,
    ) {
        for action in actions.drain(..) {
            match action {
                TransportAction::SendPacket(packet) => {
                    self.trace_event(node, || match &packet.body {
                        Body::Tcp(seg) if seg.is_data() => {
                            TraceEvent::TcpData { flow, seq: seg.seq }
                        }
                        Body::Tcp(seg) => TraceEvent::TcpAck { flow, ack: seg.ack },
                        Body::Udp(d) => TraceEvent::UdpData { flow, seq: d.seq },
                        Body::Aodv(_) => unreachable!("transport never sends AODV"),
                    });
                    let mut aodv = self.aodv_pool.pop().unwrap_or_default();
                    self.routers[node.index()].send(self.now, packet, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                TransportAction::SetTimer { timer, delay } => {
                    let slot =
                        &mut self.transport_timers[flow.index()][role.index()][timer.index()];
                    if let Some(old) = slot.take() {
                        self.queue.cancel(old);
                    }
                    *slot = Some(
                        self.queue
                            .schedule(self.now + delay, Event::Transport { flow, role, timer }),
                    );
                }
                TransportAction::CancelTimer(timer) => {
                    if let Some(old) =
                        self.transport_timers[flow.index()][role.index()][timer.index()].take()
                    {
                        self.queue.cancel(old);
                    }
                }
            }
        }
        self.transport_pool.push(actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FlowSpec, Transport};
    use crate::topology;
    use mwn_phy::DataRate;

    fn deadline(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn one_hop_tcp_delivers_packets() {
        let s = Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 1);
        let mut net = s.build();
        let outcome = net.run_until_delivered(50, deadline(60));
        assert_eq!(outcome, StepOutcome::TargetReached);
        assert!(net.flow_delivered(FlowId(0)) >= 50);
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn three_hop_vegas_delivers_packets() {
        let s = Scenario::chain(3, DataRate::MBPS_2, Transport::vegas(2), 2);
        let mut net = s.build();
        let outcome = net.run_until_delivered(50, deadline(120));
        assert_eq!(outcome, StepOutcome::TargetReached);
    }

    #[test]
    fn paced_udp_delivers_at_configured_rate() {
        let gap = SimDuration::from_millis(40);
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::paced_udp(gap), 3);
        let mut net = s.build();
        net.run_until(deadline(10));
        let got = net.flow_delivered(FlowId(0));
        // 10 s / 40 ms = 250 packets offered; expect most delivered.
        assert!(got > 200, "only {got} of ~250 CBR packets arrived");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), 42);
            let mut net = s.build();
            net.run_until_delivered(100, deadline(120));
            (net.now(), net.total_delivered(), net.totals())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_different_trace() {
        let run = |seed| {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), seed);
            let mut net = s.build();
            net.run_until_delivered(100, deadline(120));
            net.now()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn higher_bandwidth_is_faster() {
        let time_for = |rate| {
            let s = Scenario::chain(2, rate, Transport::newreno(), 7);
            let mut net = s.build();
            net.run_until_delivered(200, deadline(300));
            net.now()
        };
        assert!(time_for(DataRate::MBPS_11) < time_for(DataRate::MBPS_2));
    }

    #[test]
    fn energy_accumulates_with_traffic() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 5);
        let mut net = s.build();
        net.run_until_delivered(20, deadline(60));
        let idle_only = 0.74 * net.now().as_secs_f64();
        assert!(net.node_energy_joules(NodeId(0)) > idle_only);
        assert!(net.total_energy_joules() > 3.0 * idle_only);
    }

    #[test]
    fn two_flow_cross_traffic_makes_progress() {
        let t = topology::chain(4);
        let flows = vec![
            FlowSpec {
                src: NodeId(0),
                dst: NodeId(4),
                transport: Transport::vegas(2),
            },
            FlowSpec {
                src: NodeId(4),
                dst: NodeId(0),
                transport: Transport::vegas(2),
            },
        ];
        let s = Scenario::new(t, flows, DataRate::MBPS_2, 11);
        let mut net = s.build();
        net.run_until_delivered(100, deadline(240));
        assert!(net.flow_delivered(FlowId(0)) > 0);
        assert!(net.flow_delivered(FlowId(1)) > 0);
    }

    #[test]
    fn window_average_tracks_tcp_only() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 9);
        let mut net = s.build();
        net.run_until_delivered(100, deadline(120));
        assert!(net.flow_avg_window(FlowId(0)) >= 1.0);
        net.reset_window_averages();
        // After a reset with no elapsed time, the average equals current.
        let w = net.flow_avg_window(FlowId(0));
        assert!(w >= 1.0);
    }
}
