//! The network: every protocol layer wired to one event loop.
//!
//! Event *dispatch* lives in [`cascade`], written once over abstract
//! effect/state traits so the sequential oracle and the sharded batch
//! workers run the identical code. This module owns the state (and the
//! sequential instantiation); [`batch`] owns the parallel one.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use mwn_aodv::{AodvCounters, NodeMap, Router};
use mwn_mac80211::{Dcf, MacCounters, MacTimer};
use mwn_obs::flight::{self, FlightRecorder};
use mwn_obs::{
    ConservationAudit, ConservationReport, CounterBlock, DropLedger, DropReason, FctSummary,
    FlowCounters, MetricsSnapshot, NodeCounters, ProbeBuffer,
};
use mwn_phy::{EnergyMeter, EnergyParams, Medium, Transceiver, TxId};
use mwn_pkt::{Body, FlowId, NodeId, Packet};
use mwn_sim::stats::TimeWeightedAverage;
use mwn_sim::{EngineProfile, EventId, EventQueue, Pcg32, SimDuration, SimTime};
use mwn_tcp::{
    PacedUdpSource, TcpSender, TcpSenderStats, TcpSink, TcpSinkStats, TransportTimer, UdpSink,
};
use mwn_traffic::TrafficEngine;

use crate::mobility::MobilityModel;
use crate::scenario::{Scenario, Transport};
use crate::trace::{TraceBuffer, TraceRecord};

mod batch;
mod cascade;
mod flows;
mod frames;

use batch::BatchRuntime;
use cascade::{Cascade, Pools, SeqEffects, SeqStates};
use flows::{FlowDst, FlowMeta, FlowSrc, Flows};
use frames::FrameSlab;

/// Which end of a flow a transport timer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Role {
    Source,
    Sink,
}

impl Role {
    /// Dense index into the per-flow timer table.
    fn index(self) -> usize {
        match self {
            Role::Source => 0,
            Role::Sink => 1,
        }
    }
}

#[derive(Debug)]
enum Event {
    /// A signal begins arriving at `node`.
    SignalStart {
        node: NodeId,
        tx: TxId,
        class: mwn_phy::SignalClass,
    },
    /// A signal stops arriving at `node`.
    SignalEnd { node: NodeId, tx: TxId },
    /// `node`'s own transmission ends.
    TxEnd { node: NodeId },
    /// A MAC timer fires at `node`.
    Mac { node: NodeId, timer: MacTimer },
    /// A jittered AODV transmission is due.
    AodvSend {
        node: NodeId,
        next_hop: NodeId,
        packet: Packet,
    },
    /// An AODV route-discovery timer fires.
    AodvDiscovery { node: NodeId, dst: NodeId },
    /// A transport timer fires.
    Transport {
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    },
    /// A flow opens.
    FlowStart { flow: FlowId },
    /// The next open-loop traffic flow of `class` arrives.
    TrafficArrival { class: usize },
    /// Mobility model tick: reposition nodes and recompute the medium.
    MobilityTick,
}

/// Stable event-kind name for the engine profile's histogram.
fn event_kind(event: &Event) -> &'static str {
    match event {
        Event::SignalStart { .. } => "signal_start",
        Event::SignalEnd { .. } => "signal_end",
        Event::TxEnd { .. } => "tx_end",
        Event::Mac { .. } => "mac_timer",
        Event::AodvSend { .. } => "aodv_send",
        Event::AodvDiscovery { .. } => "aodv_discovery",
        Event::Transport { .. } => "transport_timer",
        Event::FlowStart { .. } => "flow_start",
        Event::TrafficArrival { .. } => "traffic_arrival",
        Event::MobilityTick => "mobility_tick",
    }
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one agent per flow; size is irrelevant
enum SourceAgent {
    Tcp(TcpSender),
    Udp(PacedUdpSource),
}

#[derive(Debug)]
enum SinkAgent {
    Tcp(TcpSink),
    Udp(UdpSink),
}

/// Class marker for persistent (scenario-listed) flows, which never
/// complete and never free their slot.
const PERSISTENT: u32 = u32::MAX;

/// The flow a transport-bodied packet belongs to (`FlowId::raw`); `None`
/// for AODV control traffic, which the custody audit excludes.
fn transport_flow(packet: &Packet) -> Option<u32> {
    match &packet.body {
        Body::Tcp(seg) => Some(seg.flow.raw()),
        Body::Udp(d) => Some(d.flow.raw()),
        Body::Aodv(_) => None,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds one value into an FNV-1a64 running hash, byte by byte.
fn fnv_mix(hash: &mut u64, value: u64) {
    for b in value.to_le_bytes() {
        *hash = (*hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
}

/// Journal-record tags for the traffic digest (distinct so an arrival
/// and a completion can never hash alike).
const JOURNAL_ARRIVAL: u64 = 0xA5;
const JOURNAL_COMPLETION: u64 = 0xC7;

/// Everything the network tracks for an open-loop workload: the
/// generator, per-class FCT accounting and two streaming digests.
///
/// The *journal* digest folds every spawn and completion (with times),
/// so two runs agree iff their whole traffic histories agree. The
/// *arrival* digest folds only first-leg arrivals, whose times and
/// draws are a pure function of the scenario seed — it is invariant
/// across deadline subdivision and worker counts by construction.
struct TrafficState {
    engine: TrafficEngine,
    transport: Transport,
    /// Legs spawned so far (requests and responses); names the uid
    /// namespace of each leg.
    spawn_counter: u64,
    /// Flows currently occupying slots.
    live: u64,
    fct: FctSummary,
    journal_count: u64,
    journal_hash: u64,
    arrival_count: u64,
    arrival_hash: u64,
}

/// Network-wide aggregate counters (sums over nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkTotals {
    /// Sum of per-node MAC counters.
    pub mac: MacCounters,
    /// Sum of per-node AODV counters.
    pub aodv: AodvCounters,
}

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The delivery target was reached.
    TargetReached,
    /// The simulated-time deadline passed first.
    DeadlineExpired,
    /// The event queue drained (network dead — indicates a bug or an
    /// unreachable destination with no retry source).
    Quiescent,
}

/// A fully wired multihop wireless network.
///
/// Build one from a [`Scenario`] via [`Scenario::build`], then drive it
/// with [`Network::run_until_delivered`].
pub struct Network {
    now: SimTime,
    queue: EventQueue<Event>,
    /// Events popped ahead of time (e.g. a parallel batch cut short) and
    /// not yet handled. Always consumed before the queue, preserving the
    /// global `(time, seq)` order; empty whenever `shards <= 1`.
    pending: VecDeque<(SimTime, Event)>,
    medium: Medium,
    params: mwn_mac80211::MacParams,
    transceivers: Vec<Transceiver>,
    macs: Vec<Dcf>,
    routers: Vec<Router>,
    energy: Vec<EnergyMeter>,
    /// Flow slab, split into meta/src/dst halves for the sharded engine:
    /// persistent flows occupy slots `0..n` forever; traffic flows churn
    /// through the remainder via the free list.
    flows: Flows,
    /// Open-loop workload state, if the scenario has one.
    traffic: Option<TrafficState>,
    /// Frames on the air, keyed by generation-tagged [`TxId`].
    frames: FrameSlab,
    /// Flat per-node MAC timer table, indexed by [`MacTimer::index`].
    mac_timers: Vec<[Option<EventId>; MacTimer::COUNT]>,
    /// Flat per-node AODV discovery timer table: outer `Vec` indexed by
    /// node, inner sorted map keyed by the destination being discovered
    /// (a node rarely runs more than a handful of discoveries at once).
    discovery_timers: Vec<NodeMap<EventId>>,
    /// Flat per-flow transport timer table, `[role][timer]`.
    transport_timers: Vec<[[Option<EventId>; TransportTimer::COUNT]; 2]>,
    total_delivered: u64,
    trace: Option<TraceBuffer>,
    probes: Option<ProbeBuffer>,
    profile: Option<EngineProfile>,
    /// Always-on loss ledger: one array increment per drop event.
    ledger: DropLedger,
    /// Opt-in custody tracking for the conservation audit.
    audit: Option<ConservationAudit>,
    /// Always-on flight recorder of the rare events, shared with the
    /// panic hook via [`mwn_obs::flight::register`]. `Arc<Mutex<_>>`
    /// (not `Rc<RefCell<_>>`) so the network stays `Send`.
    flight: Arc<Mutex<FlightRecorder>>,
    mobility: Option<MobilityModel>,
    /// Reused moved-node batch for the mobility tick: only nodes whose
    /// position actually changed (paused nodes don't) are handed to the
    /// medium's incremental update.
    moved: Vec<(NodeId, mwn_phy::Position)>,
    /// When set, every mobility tick eagerly refreshes all effect lists
    /// (the pre-lazy behaviour) instead of leaving stale lists for
    /// transmission-time refresh. Observables are identical either way —
    /// this switch exists so the lazy-vs-eager differential can prove it.
    eager_medium: bool,
    /// Recycled action/event buffers for the sequential cascade lane.
    pools: Pools,
    /// The sharded batch engine's worker pool and per-worker contexts;
    /// `None` means pure sequential execution (the oracle path).
    batch: Option<BatchRuntime>,
    /// Most in-order packets a single `SignalEnd` can deliver (the
    /// largest receive window across scenario flows): the batch engine's
    /// overshoot bound for delivery-targeted runs.
    delivery_bound: u64,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.macs.len())
            .field("flows", &self.flows.len())
            .field("total_delivered", &self.total_delivered)
            .finish_non_exhaustive()
    }
}

impl Network {
    pub(crate) fn build(scenario: &Scenario) -> Network {
        let n = scenario.topology.len();
        let params = scenario.mac_params();
        let medium = Medium::new(scenario.topology.positions().to_vec(), scenario.ranges);
        let mut root = Pcg32::new(scenario.seed);

        let transceivers = vec![Transceiver::with_capture(scenario.ranges.capture_threshold); n];
        let macs: Vec<Dcf> = (0..n)
            .map(|i| Dcf::new(NodeId(i as u32), params, root.fork()))
            .collect();
        let routers: Vec<Router> = (0..n)
            .map(|i| {
                Router::new(
                    NodeId(i as u32),
                    scenario.aodv,
                    root.fork(),
                    // uid namespace: top bit set, node id in the next bits.
                    (1 << 63) | ((i as u64) << 40),
                )
            })
            .collect();
        let energy = vec![EnergyMeter::new(EnergyParams::wavelan()); n];

        let mut queue = EventQueue::new();
        let mut flows = Flows::default();
        for (i, spec) in scenario.flows.iter().enumerate() {
            let flow_id = FlowId(i as u32);
            let uid_base = (2 << 61) | ((i as u64) << 40);
            let (source, sink) = match spec.transport {
                Transport::Tcp {
                    flavor,
                    config,
                    ack_policy,
                } => (
                    SourceAgent::Tcp(TcpSender::new(
                        config, flavor, flow_id, spec.src, spec.dst, uid_base,
                    )),
                    SinkAgent::Tcp(TcpSink::new(
                        ack_policy,
                        flow_id,
                        spec.dst,
                        spec.src,
                        uid_base | (1 << 39),
                    )),
                ),
                Transport::PacedUdp { gap } => (
                    SourceAgent::Udp(PacedUdpSource::new(
                        flow_id, spec.src, spec.dst, gap, uid_base,
                    )),
                    SinkAgent::Udp(UdpSink::new()),
                ),
            };
            flows.push_persistent(
                FlowMeta {
                    src: spec.src,
                    dst: spec.dst,
                    class: PERSISTENT,
                    started: SimTime::ZERO,
                    carried: 0,
                    response: None,
                },
                FlowSrc {
                    source,
                    cwnd_twa: TimeWeightedAverage::new(SimTime::ZERO, 1.0),
                },
                FlowDst {
                    sink,
                    delivered: 0,
                    last_delivery: None,
                },
            );
            // Stagger flow starts slightly to de-synchronise discoveries.
            let start = SimTime::ZERO + SimDuration::from_millis(10 * i as u64);
            queue.schedule(start, Event::FlowStart { flow: flow_id });
        }

        let mobility = scenario.mobility.map(|params| {
            MobilityModel::new(params, scenario.topology.positions().to_vec(), root.fork())
        });
        if let Some(m) = &mobility {
            queue.schedule(SimTime::ZERO + m.tick(), Event::MobilityTick);
        }

        // The traffic fork comes after every other consumer of `root`, so
        // scenarios without traffic draw exactly the pre-traffic stream
        // (golden traces stay bit-identical).
        let mut traffic = scenario.traffic.as_ref().map(|spec| {
            assert!(
                matches!(spec.transport, Transport::Tcp { .. }),
                "open-loop traffic needs a TCP transport (completion is ACK-driven)"
            );
            let engine = TrafficEngine::new(spec.model.clone(), n as u32, &mut root);
            let fct = FctSummary::new(&spec.model.class_names());
            TrafficState {
                engine,
                transport: spec.transport,
                spawn_counter: 0,
                live: 0,
                fct,
                journal_count: 0,
                journal_hash: FNV_OFFSET,
                arrival_count: 0,
                arrival_hash: FNV_OFFSET,
            }
        });
        if let Some(t) = &mut traffic {
            for class in 0..t.engine.class_count() {
                let gap = t.engine.next_gap(class, 0.0);
                queue.schedule(SimTime::ZERO + gap, Event::TrafficArrival { class });
            }
        }

        // Ledger classes: the workload's traffic classes, then a class for
        // the scenario's persistent flows, then a catch-all for losses that
        // cannot be attributed to a live flow (stale generations, PHY
        // frame-level tallies).
        let mut class_names: Vec<String> = scenario
            .traffic
            .as_ref()
            .map(|spec| {
                spec.model
                    .class_names()
                    .iter()
                    .map(|n| n.to_string())
                    .collect()
            })
            .unwrap_or_default();
        class_names.push("persistent".into());
        class_names.push("unattributed".into());
        let ledger = DropLedger::new(n, class_names);
        let flight = Arc::new(Mutex::new(FlightRecorder::new(
            mwn_obs::flight::DEFAULT_CAPACITY,
        )));
        flight::register(&flight);

        // One SignalEnd at a TCP sink can release a whole reassembly
        // buffer in order — at most the advertised window. Paced UDP
        // delivers one packet per arrival.
        let delivery_bound = scenario
            .flows
            .iter()
            .map(|spec| match spec.transport {
                Transport::Tcp { config, .. } => u64::from(config.wmax),
                Transport::PacedUdp { .. } => 1,
            })
            .max()
            .unwrap_or(1)
            .max(1);

        let flow_count = scenario.flows.len();
        Network {
            now: SimTime::ZERO,
            queue,
            pending: VecDeque::new(),
            medium,
            params,
            transceivers,
            macs,
            routers,
            energy,
            flows,
            traffic,
            frames: FrameSlab::new(),
            mac_timers: vec![[None; MacTimer::COUNT]; n],
            discovery_timers: vec![NodeMap::new(); n],
            transport_timers: vec![[[None; TransportTimer::COUNT]; 2]; flow_count],
            total_delivered: 0,
            trace: None,
            probes: None,
            profile: None,
            ledger,
            audit: None,
            flight,
            mobility,
            moved: Vec::new(),
            eager_medium: false,
            pools: Pools::default(),
            batch: None,
            delivery_bound,
        }
    }

    /// Enables structured event tracing into a ring buffer of `capacity`
    /// records. See [`crate::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The retained trace records (empty unless tracing was enabled).
    pub fn trace(&self) -> Vec<&TraceRecord> {
        self.trace
            .as_ref()
            .map(|t| t.records().collect())
            .unwrap_or_default()
    }

    /// Trace records evicted because the ring buffer was full (zero means
    /// the retained trace is complete).
    pub fn trace_dropped(&self) -> u64 {
        self.trace
            .as_ref()
            .map_or(0, mwn_obs::trace::TraceBuffer::dropped)
    }

    /// Enables on-change time-series probes (cwnd, srtt, Vegas diff,
    /// interface-queue depth) into a ring buffer of `capacity` samples.
    pub fn enable_probes(&mut self, capacity: usize) {
        self.probes = Some(ProbeBuffer::new(capacity));
    }

    /// The probe buffer, if probes were enabled.
    pub fn probes(&self) -> Option<&ProbeBuffer> {
        self.probes.as_ref()
    }

    /// Enables event-loop self-profiling (events processed, histogram by
    /// kind, peak pending-event depth).
    pub fn enable_profiling(&mut self) {
        self.profile = Some(EngineProfile::new());
    }

    /// The engine profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_ref()
    }

    /// Sets the worker count for the sharded batch engine. `1` (the
    /// default) runs the pure sequential oracle; `n > 1` lets eligible
    /// signal-event bursts run on `n` shards with results replayed in
    /// the sequential order, so every observable output is unchanged.
    pub fn set_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        if shards == self.shards() {
            return;
        }
        self.batch = (shards > 1).then(|| BatchRuntime::new(shards));
    }

    /// The current worker count (`1` = sequential oracle).
    pub fn shards(&self) -> usize {
        self.batch.as_ref().map_or(1, BatchRuntime::shards)
    }

    /// Parallel bursts executed so far (0 on the sequential path). A
    /// sharded run that stays at 0 never left the oracle — tests use this
    /// to prove the parallel engine actually engaged.
    pub fn bursts_run(&self) -> u64 {
        self.batch.as_ref().map_or(0, BatchRuntime::bursts)
    }

    /// Enables custody tracking so [`Network::conservation_report`] can
    /// verify `created = destroyed + residual` per node and per flow.
    /// Call before running; the equations only balance when every custody
    /// event since time zero was seen.
    pub fn enable_audit(&mut self) {
        self.audit = Some(ConservationAudit::new(self.macs.len()));
    }

    /// `true` if custody tracking is on.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// The loss ledger with PHY frame-level tallies synthesized from the
    /// transceiver counters (collision, capture loss, undecodable). PHY
    /// losses are per frame, not per packet, so they land in the
    /// `unattributed` class.
    pub fn drop_report(&self) -> DropLedger {
        let mut ledger = self.ledger.clone();
        let unattributed = ledger.class_names().len() - 1;
        for (i, t) in self.transceivers.iter().enumerate() {
            let c = t.counters();
            ledger.add(i, unattributed, DropReason::PhyCollision, c.collisions);
            ledger.add(i, unattributed, DropReason::PhyCaptureLoss, c.captures);
            ledger.add(i, unattributed, DropReason::PhyUndecodable, c.undecoded);
        }
        ledger
    }

    /// Verifies packet conservation: for every node and every flow,
    /// packets created (originated + delivered up) must equal packets
    /// destroyed (handed off + consumed + terminally dropped) plus the
    /// copies still buffered in interface queues, in-service MAC slots
    /// and AODV discovery buffers. `None` unless
    /// [`Network::enable_audit`] was called before the run.
    pub fn conservation_report(&self) -> Option<ConservationReport> {
        let audit = self.audit.as_ref()?;
        let mut node_residual = vec![0u64; self.macs.len()];
        let mut flow_residual: HashMap<u32, u64> = HashMap::new();
        {
            let mut count = |i: usize, p: &Packet| {
                if let Some(flow) = transport_flow(p) {
                    node_residual[i] += 1;
                    *flow_residual.entry(flow).or_insert(0) += 1;
                }
            };
            for (i, mac) in self.macs.iter().enumerate() {
                for p in mac.queued_packets() {
                    count(i, p);
                }
                if let Some(p) = mac.current_packet() {
                    count(i, p);
                }
            }
            for (i, router) in self.routers.iter().enumerate() {
                for p in router.buffered_packets() {
                    count(i, p);
                }
            }
        }
        Some(audit.verify(&node_residual, &flow_residual))
    }

    /// The flight recorder's ring rendered as display lines (header plus
    /// the retained events, oldest first).
    pub fn flight_dump(&self) -> Vec<String> {
        self.flight.lock().unwrap().dump_lines()
    }

    /// Flight-recorder events written so far (retained or evicted).
    pub fn flight_written(&self) -> u64 {
        self.flight.lock().unwrap().written()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total in-order packets delivered across all flows.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Transmissions currently on the air (live frame-slab slots).
    pub fn frames_in_flight(&self) -> usize {
        self.frames.live()
    }

    /// Frame releases that named a dead or recycled [`TxId`] — each one a
    /// dropped straggler the generation check caught.
    pub fn stale_frame_releases(&self) -> u64 {
        self.frames.stale_releases()
    }

    /// Number of flow *slots* (persistent flows plus the churn slab's
    /// high-water mark — not all slots are occupied).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of currently occupied flow slots.
    pub fn live_flow_count(&self) -> usize {
        self.flows.live()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.macs.len()
    }

    /// Tracked estimate of per-node engine state, in heap bytes: the
    /// fixed struct-of-arrays slot every node occupies (transceiver,
    /// MAC, router, timer-table rows) plus each node's dynamic
    /// per-destination state (routing/duplicate tables, discovery
    /// buffers, interface queue), averaged over the node count.
    ///
    /// This is an accounting estimate of what the flat per-node layouts
    /// charge — not an allocator measurement; pair it with the bench's
    /// peak-RSS column for ground truth.
    pub fn bytes_per_node(&self) -> u64 {
        use std::mem::size_of;
        let n = self.macs.len().max(1);
        let fixed = size_of::<Transceiver>()
            + size_of::<Dcf>()
            + size_of::<Router>()
            + size_of::<EnergyMeter>()
            + size_of::<[Option<EventId>; MacTimer::COUNT]>()
            + size_of::<NodeMap<EventId>>();
        let dynamic: usize = (0..n)
            .map(|i| {
                self.macs[i].memory_bytes()
                    + self.routers[i].memory_bytes()
                    + self.discovery_timers[i].memory_bytes()
            })
            .sum();
        (fixed + dynamic / n) as u64
    }

    /// The live flow id occupying `slot`, if any (traffic churn means a
    /// slot's generation moves on; callers must re-key per batch).
    pub fn flow_at(&self, slot: usize) -> Option<FlowId> {
        let s = self.flows.slots.get(slot)?;
        s.meta
            .as_ref()
            .map(|_| FlowId::from_parts(slot as u32, s.generation))
    }

    /// In-order packets delivered by `flow`'s sink (0 once the flow has
    /// completed and its slot was vacated).
    pub fn flow_delivered(&self, flow: FlowId) -> u64 {
        self.flows.dst_ref(flow).map_or(0, |d| d.delivered)
    }

    /// Sender statistics for a TCP flow (`None` for paced UDP or a
    /// vacated slot).
    pub fn flow_sender_stats(&self, flow: FlowId) -> Option<&TcpSenderStats> {
        match &self.flows.src_ref(flow)?.source {
            SourceAgent::Tcp(s) => Some(s.stats()),
            SourceAgent::Udp(_) => None,
        }
    }

    /// Sink statistics for a TCP flow (`None` for paced UDP or a vacated
    /// slot).
    pub fn flow_sink_stats(&self, flow: FlowId) -> Option<&TcpSinkStats> {
        match &self.flows.dst_ref(flow)?.sink {
            SinkAgent::Tcp(s) => Some(s.stats()),
            SinkAgent::Udp(_) => None,
        }
    }

    /// When `flow`'s sink last advanced, if it ever did.
    pub fn flow_last_delivery(&self, flow: FlowId) -> Option<SimTime> {
        self.flows.dst_ref(flow)?.last_delivery
    }

    /// Time-weighted average congestion window of `flow` since the last
    /// [`Network::reset_window_averages`] (1.0 for paced UDP or a
    /// vacated slot).
    pub fn flow_avg_window(&self, flow: FlowId) -> f64 {
        self.flows
            .src_ref(flow)
            .map_or(1.0, |s| s.cwnd_twa.average(self.now))
    }

    /// Restarts the per-flow window averages (called at batch boundaries).
    pub fn reset_window_averages(&mut self) {
        let now = self.now;
        for src in self.flows.srcs.iter_mut().flatten() {
            src.cwnd_twa.reset(now);
        }
    }

    /// Aggregate MAC and AODV counters over all nodes.
    pub fn totals(&self) -> NetworkTotals {
        let mut t = NetworkTotals::default();
        for m in &self.macs {
            t.mac = t.mac.plus(m.counters());
        }
        for r in &self.routers {
            t.aodv = t.aodv.plus(r.counters());
        }
        t
    }

    /// A whole-network counter snapshot (every layer, every node, every
    /// flow) at the current instant, for [`mwn_obs::MetricsRegistry`]
    /// batch-boundary deltas.
    pub fn collect_metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            time: self.now,
            nodes: (0..self.macs.len())
                .map(|i| NodeCounters {
                    phy: *self.transceivers[i].counters(),
                    mac: *self.macs[i].counters(),
                    aodv: *self.routers[i].counters(),
                    route_table_size: self.routers[i].table().len() as u64,
                    ifq_depth: self.macs[i].queue_len() as u64,
                })
                .collect(),
            flows: (0..self.flows.len())
                .map(|i| {
                    if self.flows.slots[i].meta.is_none() {
                        return FlowCounters {
                            sender: None,
                            sink: None,
                        };
                    }
                    FlowCounters {
                        sender: match self.flows.srcs[i].as_ref().map(|s| &s.source) {
                            Some(SourceAgent::Tcp(s)) => Some(*s.stats()),
                            _ => None,
                        },
                        sink: match self.flows.dsts[i].as_ref().map(|d| &d.sink) {
                            Some(SinkAgent::Tcp(s)) => Some(*s.stats()),
                            _ => None,
                        },
                    }
                })
                .collect(),
        }
    }

    /// Total radio energy consumed by `node` so far, in joules.
    pub fn node_energy_joules(&self, node: NodeId) -> f64 {
        self.energy[node.index()].consumed(self.now)
    }

    /// Total radio energy over all nodes, in joules.
    pub fn total_energy_joules(&self) -> f64 {
        (0..self.energy.len())
            .map(|i| self.energy[i].consumed(self.now))
            .sum()
    }

    /// Timestamp of the next event to be handled, honouring the carried
    /// `pending` buffer before the queue.
    fn peek_next_time(&mut self) -> Option<SimTime> {
        if let Some((t, _)) = self.pending.front() {
            return Some(*t);
        }
        self.queue.peek_time()
    }

    /// Runs until `target` total packets are delivered, the simulated-time
    /// `deadline` passes, or the event queue drains.
    pub fn run_until_delivered(&mut self, target: u64, deadline: SimTime) -> StepOutcome {
        let outcome = loop {
            if self.total_delivered >= target {
                break StepOutcome::TargetReached;
            }
            match self.peek_next_time() {
                None => break StepOutcome::Quiescent,
                Some(t) if t > deadline => break StepOutcome::DeadlineExpired,
                Some(_) => {
                    if !self.try_batch(deadline, Some(target)) {
                        self.step();
                    }
                }
            }
        };
        self.flush_medium_profile();
        outcome
    }

    /// `true` once the open-loop workload has spawned its whole arrival
    /// budget and every flow has completed (vacuously true without a
    /// workload).
    pub fn traffic_done(&self) -> bool {
        self.traffic
            .as_ref()
            .is_none_or(|t| t.engine.exhausted() && t.live == 0)
    }

    /// Runs until [`Network::traffic_done`], the simulated-time
    /// `deadline` passes, or the event queue drains.
    pub fn run_until_traffic_done(&mut self, deadline: SimTime) -> StepOutcome {
        let outcome = loop {
            if self.traffic_done() {
                break StepOutcome::TargetReached;
            }
            match self.peek_next_time() {
                None => break StepOutcome::Quiescent,
                Some(t) if t > deadline => break StepOutcome::DeadlineExpired,
                Some(_) => self.step(),
            }
        };
        self.flush_medium_profile();
        outcome
    }

    /// Streaming per-class FCT/goodput accounting for the open-loop
    /// workload, if the scenario has one.
    pub fn traffic_summary(&self) -> Option<&FctSummary> {
        self.traffic.as_ref().map(|t| &t.fct)
    }

    /// `(records, fnv1a64)` digest of the full traffic journal — every
    /// spawn and completion with its time. Two runs of the same scenario
    /// match iff their traffic histories are identical.
    pub fn traffic_digest(&self) -> Option<(u64, u64)> {
        self.traffic
            .as_ref()
            .map(|t| (t.journal_count, t.journal_hash))
    }

    /// `(arrivals, fnv1a64)` digest of first-leg arrivals only. A pure
    /// function of the scenario seed: invariant across deadline
    /// subdivision and `--jobs` worker counts.
    pub fn traffic_arrival_digest(&self) -> Option<(u64, u64)> {
        self.traffic
            .as_ref()
            .map(|t| (t.arrival_count, t.arrival_hash))
    }

    /// Traffic legs spawned so far (requests plus response legs).
    pub fn traffic_spawned(&self) -> u64 {
        self.traffic.as_ref().map_or(0, |t| t.spawn_counter)
    }

    /// Runs until simulated time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.peek_next_time() {
            if t > deadline {
                break;
            }
            if !self.try_batch(deadline, None) {
                self.step();
            }
        }
        self.now = self.now.max(deadline);
        self.flush_medium_profile();
    }

    /// Processes a single event. No-op if the queue is empty.
    pub fn step(&mut self) {
        let next = self.pending.pop_front().or_else(|| self.queue.pop());
        let Some((t, event)) = next else {
            return;
        };
        self.now = t;
        if let Some(p) = &mut self.profile {
            p.record(event_kind(&event), self.queue.len() + self.pending.len());
        }
        self.handle(event);
    }

    // ---- event dispatch --------------------------------------------------

    fn handle(&mut self, event: Event) {
        if matches!(event, Event::MobilityTick) {
            self.mobility_tick();
            return;
        }
        let unattributed = self.ledger.class_names().len() - 1;
        let mut states = SeqStates {
            transceivers: &mut self.transceivers,
            macs: &mut self.macs,
            routers: &mut self.routers,
        };
        let mut eff = SeqEffects {
            queue: &mut self.queue,
            mac_timers: &mut self.mac_timers,
            discovery_timers: &mut self.discovery_timers,
            transport_timers: &mut self.transport_timers,
            trace: &mut self.trace,
            probes: &mut self.probes,
            ledger: &mut self.ledger,
            audit: &mut self.audit,
            flight: &self.flight,
            total_delivered: &mut self.total_delivered,
            frames: &mut self.frames,
            medium: &mut self.medium,
            energy: &mut self.energy,
            params: &self.params,
        };
        let mut cascade = Cascade {
            now: self.now,
            states: &mut states,
            flows: &mut self.flows,
            traffic: self.traffic.as_mut(),
            eff: &mut eff,
            pools: &mut self.pools,
            unattributed,
        };
        cascade.handle_event(event);
    }

    fn mobility_tick(&mut self) {
        if let Some(m) = &mut self.mobility {
            let started = std::time::Instant::now();
            let positions = m.step();
            // Diff against the medium's current positions so the lazy
            // update only touches nodes that moved (paused nodes hold
            // their position across ticks).
            self.moved.clear();
            for (i, (&new, &old)) in positions.iter().zip(self.medium.positions()).enumerate() {
                if new != old {
                    self.moved.push((NodeId(i as u32), new));
                }
            }
            // O(moved): positions, grid relocation and epoch stamps only.
            // Effect-list rebuilds happen at transmission time and are
            // accounted separately (the `medium_lazy` bucket).
            self.medium.move_nodes(&self.moved);
            if let Some(p) = &mut self.profile {
                p.record_timed("medium_tick", started.elapsed().as_secs_f64());
            }
            if self.eager_medium {
                self.medium.refresh_all();
            }
            let next = self.now + m.tick();
            self.queue.schedule(next, Event::MobilityTick);
            self.flush_medium_profile();
        }
    }

    /// Drains the lazy medium's accrued rebuild costs into the profile's
    /// `medium_lazy` bucket (no-op without profiling). Called once per
    /// mobility tick and at the end of every run loop, so the bucket is
    /// complete whenever a caller reads the profile.
    fn flush_medium_profile(&mut self) {
        if let Some(p) = &mut self.profile {
            let (rebuilds, secs) = self.medium.take_lazy_profile();
            p.record_timed_n("medium_lazy", rebuilds, secs);
        }
    }

    /// Forces the pre-lazy eager behaviour: every mobility tick refreshes
    /// all effect lists immediately. Observables are identical to the
    /// default lazy mode (effect lists are pure functions of current
    /// positions at query time); this exists for the lazy-vs-eager
    /// differential tests and A/B profiling.
    pub fn set_eager_medium(&mut self, eager: bool) {
        self.eager_medium = eager;
    }

    /// Cumulative lazy-medium statistics (epoch, queries, rebuilds,
    /// revalidations) since construction.
    pub fn medium_counters(&self) -> mwn_phy::MediumCounters {
        self.medium.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FlowSpec, Transport};
    use crate::topology;
    use mwn_phy::DataRate;

    fn deadline(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    /// Stage-A proof for the sharded engine: with `Rc`/`RefCell` gone, a
    /// whole network (and thus any disjoint slice of its node state) can
    /// cross threads.
    #[test]
    fn network_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Network>();
    }

    #[test]
    fn one_hop_tcp_delivers_packets() {
        let s = Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 1);
        let mut net = s.build();
        let outcome = net.run_until_delivered(50, deadline(60));
        assert_eq!(outcome, StepOutcome::TargetReached);
        assert!(net.flow_delivered(FlowId(0)) >= 50);
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn three_hop_vegas_delivers_packets() {
        let s = Scenario::chain(3, DataRate::MBPS_2, Transport::vegas(2), 2);
        let mut net = s.build();
        let outcome = net.run_until_delivered(50, deadline(120));
        assert_eq!(outcome, StepOutcome::TargetReached);
    }

    #[test]
    fn paced_udp_delivers_at_configured_rate() {
        let gap = SimDuration::from_millis(40);
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::paced_udp(gap), 3);
        let mut net = s.build();
        net.run_until(deadline(10));
        let got = net.flow_delivered(FlowId(0));
        // 10 s / 40 ms = 250 packets offered; expect most delivered.
        assert!(got > 200, "only {got} of ~250 CBR packets arrived");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), 42);
            let mut net = s.build();
            net.run_until_delivered(100, deadline(120));
            (net.now(), net.total_delivered(), net.totals())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_different_trace() {
        let run = |seed| {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), seed);
            let mut net = s.build();
            net.run_until_delivered(100, deadline(120));
            net.now()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn higher_bandwidth_is_faster() {
        let time_for = |rate| {
            let s = Scenario::chain(2, rate, Transport::newreno(), 7);
            let mut net = s.build();
            net.run_until_delivered(200, deadline(300));
            net.now()
        };
        assert!(time_for(DataRate::MBPS_11) < time_for(DataRate::MBPS_2));
    }

    #[test]
    fn energy_accumulates_with_traffic() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 5);
        let mut net = s.build();
        net.run_until_delivered(20, deadline(60));
        let idle_only = 0.74 * net.now().as_secs_f64();
        assert!(net.node_energy_joules(NodeId(0)) > idle_only);
        assert!(net.total_energy_joules() > 3.0 * idle_only);
    }

    #[test]
    fn two_flow_cross_traffic_makes_progress() {
        let t = topology::chain(4);
        let flows = vec![
            FlowSpec {
                src: NodeId(0),
                dst: NodeId(4),
                transport: Transport::vegas(2),
            },
            FlowSpec {
                src: NodeId(4),
                dst: NodeId(0),
                transport: Transport::vegas(2),
            },
        ];
        let s = Scenario::new(t, flows, DataRate::MBPS_2, 11);
        let mut net = s.build();
        net.run_until_delivered(100, deadline(240));
        assert!(net.flow_delivered(FlowId(0)) > 0);
        assert!(net.flow_delivered(FlowId(1)) > 0);
    }

    fn traffic_scenario(max_flows: u64, seed: u64) -> Scenario {
        use crate::scenario::TrafficSpec;
        use mwn_traffic::{Arrival, SizeDist, TrafficClass, TrafficModel};
        // Arrivals paced well apart from completions (0.5 s mean gap vs
        // ~0.1 s transfers), so slots genuinely churn instead of piling
        // up concurrently.
        let model = TrafficModel {
            classes: vec![TrafficClass {
                name: "short".into(),
                arrival: Arrival::Poisson { rate_fps: 2.0 },
                size: SizeDist::Fixed { packets: 3 },
                response: None,
            }],
            max_flows,
            zipf_skew: 0.5,
            diurnal: None,
        };
        let mut s = Scenario::new(topology::chain(3), Vec::new(), DataRate::MBPS_2, seed);
        s.traffic = Some(TrafficSpec {
            model,
            transport: Transport::newreno(),
        });
        s
    }

    #[test]
    fn open_loop_traffic_completes_with_slot_churn() {
        let mut net = traffic_scenario(60, 21).build();
        let out = net.run_until_traffic_done(deadline(4000));
        assert_eq!(out, StepOutcome::TargetReached);
        let sum = net
            .traffic_summary()
            .expect("traffic scenario has a summary");
        assert_eq!(sum.arrivals(), 60);
        assert_eq!(sum.completions(), 60);
        assert_eq!(net.live_flow_count(), 0);
        // 60 flows churned through a handful of recycled slots.
        assert!(
            net.flow_count() < 30,
            "slab grew to {} slots for 60 sequentially-completing flows",
            net.flow_count()
        );
        // heavy has no response legs: one spawn + one completion each.
        let (records, _) = net.traffic_digest().unwrap();
        assert_eq!(records, 120);
        let fct = sum.classes()[0].fct();
        assert!(fct.p99().expect("completions recorded") > 0.0);
        // Slab invariants: free slots are unique and genuinely vacant,
        // and every recycled slot's generation moved past zero.
        let mut fs = net.flows.free.clone();
        fs.sort_unstable();
        fs.dedup();
        assert_eq!(fs.len(), net.flows.free.len(), "free list has duplicates");
        for &slot in &net.flows.free {
            assert!(net.flows.slots[slot as usize].meta.is_none());
            assert!(net.flows.slots[slot as usize].generation > 0);
        }
    }

    #[test]
    fn traffic_digest_is_deterministic_and_seed_sensitive() {
        let digest = |seed| {
            let mut net = traffic_scenario(40, seed).build();
            assert_eq!(
                net.run_until_traffic_done(deadline(4000)),
                StepOutcome::TargetReached
            );
            net.traffic_digest().unwrap()
        };
        assert_eq!(digest(5), digest(5));
        assert_ne!(digest(5), digest(6));
    }

    #[test]
    fn traffic_digests_are_invariant_across_deadline_subdivision() {
        let run_chunked = |chunks: u64| {
            let mut net = traffic_scenario(40, 9).build();
            for c in 1..=chunks {
                net.run_until(deadline(40 * c / chunks));
            }
            assert_eq!(
                net.run_until_traffic_done(deadline(100_000)),
                StepOutcome::TargetReached
            );
            (
                net.traffic_arrival_digest().unwrap(),
                net.traffic_digest().unwrap(),
            )
        };
        assert_eq!(run_chunked(1), run_chunked(7));
    }

    #[test]
    fn scenarios_without_traffic_are_vacuously_done() {
        let s = Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 1);
        let mut net = s.build();
        assert!(net.traffic_done());
        assert!(net.traffic_digest().is_none());
        assert!(net.traffic_summary().is_none());
        assert_eq!(
            net.run_until_traffic_done(deadline(60)),
            StepOutcome::TargetReached
        );
        assert_eq!(net.live_flow_count(), 1);
    }

    #[test]
    fn window_average_tracks_tcp_only() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 9);
        let mut net = s.build();
        net.run_until_delivered(100, deadline(120));
        assert!(net.flow_avg_window(FlowId(0)) >= 1.0);
        net.reset_window_averages();
        // After a reset with no elapsed time, the average equals current.
        let w = net.flow_avg_window(FlowId(0));
        assert!(w >= 1.0);
    }
}
