//! Scenario description: topology + flows + bandwidth + seed.

use mwn_aodv::AodvConfig;
use mwn_mac80211::MacParams;
use mwn_phy::{DataRate, RangeModel};
use mwn_pkt::NodeId;
use mwn_sim::SimDuration;
use mwn_tcp::{AckPolicy, Flavor, TcpConfig};
use mwn_traffic::TrafficModel;

use crate::network::Network;
use crate::topology::{self, Topology};

/// The transport protocol of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transport {
    /// TCP with the given congestion-control flavor, configuration and
    /// receiver ACK policy.
    Tcp {
        /// NewReno or Vegas.
        flavor: Flavor,
        /// Window and timer parameters.
        config: TcpConfig,
        /// Per-packet ACKs or dynamic ACK thinning.
        ack_policy: AckPolicy,
    },
    /// The paper's paced UDP: CBR with a fixed inter-packet gap.
    PacedUdp {
        /// Time between successive packet transmissions.
        gap: SimDuration,
    },
}

impl Transport {
    /// TCP Vegas with `α = β = γ = alpha` (the paper's tuning).
    pub fn vegas(alpha: u32) -> Self {
        Transport::Tcp {
            flavor: Flavor::Vegas,
            config: TcpConfig::paper(alpha),
            ack_policy: AckPolicy::EveryPacket,
        }
    }

    /// TCP Vegas with dynamic ACK thinning.
    pub fn vegas_thinning(alpha: u32) -> Self {
        Transport::Tcp {
            flavor: Flavor::Vegas,
            config: TcpConfig::paper(alpha),
            ack_policy: AckPolicy::Thinning,
        }
    }

    /// Classic TCP Reno with per-packet ACKs (extension variant).
    pub fn reno() -> Self {
        Transport::Tcp {
            flavor: Flavor::Reno,
            config: TcpConfig::paper(2),
            ack_policy: AckPolicy::EveryPacket,
        }
    }

    /// TCP Tahoe with per-packet ACKs (extension variant).
    pub fn tahoe() -> Self {
        Transport::Tcp {
            flavor: Flavor::Tahoe,
            config: TcpConfig::paper(2),
            ack_policy: AckPolicy::EveryPacket,
        }
    }

    /// TCP NewReno with per-packet ACKs.
    pub fn newreno() -> Self {
        Transport::Tcp {
            flavor: Flavor::NewReno,
            config: TcpConfig::paper(2),
            ack_policy: AckPolicy::EveryPacket,
        }
    }

    /// TCP NewReno with dynamic ACK thinning.
    pub fn newreno_thinning() -> Self {
        Transport::Tcp {
            flavor: Flavor::NewReno,
            config: TcpConfig::paper(2),
            ack_policy: AckPolicy::Thinning,
        }
    }

    /// TCP NewReno with an artificially bounded window (Fu et al.'s
    /// optimal `MaxWin`; the paper finds `MaxWin = 3` best for 7 hops).
    pub fn newreno_optimal_window(max_win: u32) -> Self {
        Transport::Tcp {
            flavor: Flavor::NewReno,
            config: TcpConfig::paper(2).with_max_window(max_win),
            ack_policy: AckPolicy::EveryPacket,
        }
    }

    /// Paced UDP with inter-packet gap `gap`.
    pub fn paced_udp(gap: SimDuration) -> Self {
        Transport::PacedUdp { gap }
    }

    /// A short human-readable label ("Vegas", "NewReno ACK Thinning", …).
    pub fn label(&self) -> String {
        match self {
            Transport::Tcp {
                flavor,
                config,
                ack_policy,
            } => {
                let mut s = match flavor {
                    Flavor::Vegas => format!("Vegas a={}", config.alpha),
                    Flavor::NewReno => "NewReno".to_string(),
                    Flavor::Reno => "Reno".to_string(),
                    Flavor::Tahoe => "Tahoe".to_string(),
                };
                if config.wmax != 64 {
                    s.push_str(&format!(" MaxWin={}", config.wmax));
                }
                if *ack_policy == AckPolicy::Thinning {
                    s.push_str(" +thin");
                }
                s
            }
            Transport::PacedUdp { gap } => format!("PacedUDP t={gap}"),
        }
    }
}

/// An open-loop workload attached to a scenario: the [`TrafficModel`]
/// describes *when* finite flows arrive and *what* they look like; the
/// [`Transport`] is the protocol every traffic flow runs (classes are
/// workload classes, not protocol variants — sweeping transports is the
/// job harness's axis).
///
/// Traffic coexists with the persistent [`FlowSpec`] list: persistent
/// flows occupy the low flow-table slots for the whole run, traffic
/// flows churn through slots above them.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Arrival processes, sizes, endpoint skew and rate modulation.
    pub model: TrafficModel,
    /// Transport protocol of every traffic flow.
    pub transport: Transport,
}

/// One end-to-end flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Transport protocol.
    pub transport: Transport,
}

/// A complete simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Node placement.
    pub topology: Topology,
    /// Concurrent flows.
    pub flows: Vec<FlowSpec>,
    /// PHY data rate for data frames (control stays at 1 Mbit/s).
    pub bandwidth: DataRate,
    /// Radio ranges (defaults to the paper's 250 / 550 / 550 m).
    pub ranges: RangeModel,
    /// AODV parameters.
    pub aodv: AodvConfig,
    /// Overrides the MAC parameters derived from `bandwidth` (used by the
    /// ablation benches, e.g. sending control frames at the data rate).
    pub mac_override: Option<MacParams>,
    /// Node mobility (extension): `None` keeps the paper's static
    /// networks; `Some` runs random waypoint.
    pub mobility: Option<crate::mobility::RandomWaypoint>,
    /// Open-loop traffic workload (extension): `None` keeps the paper's
    /// persistent-flows-only model.
    pub traffic: Option<TrafficSpec>,
    /// Root RNG seed; every run is a pure function of (scenario, seed).
    pub seed: u64,
}

impl Scenario {
    /// A scenario over an arbitrary topology.
    pub fn new(topology: Topology, flows: Vec<FlowSpec>, bandwidth: DataRate, seed: u64) -> Self {
        Scenario {
            topology,
            flows,
            bandwidth,
            ranges: RangeModel::paper(),
            aodv: AodvConfig::default(),
            mac_override: None,
            mobility: None,
            traffic: None,
            seed,
        }
    }

    /// An open-loop traffic scenario: `nodes` nodes placed uniformly at
    /// the paper's density (the [`topology::random_paper`] field scaled
    /// to the node count, resampled until connected), no persistent
    /// flows, all load coming from `model` over `transport`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or the model fails
    /// [`TrafficModel::validate`].
    pub fn open_loop(
        nodes: usize,
        model: TrafficModel,
        transport: Transport,
        bandwidth: DataRate,
        seed: u64,
    ) -> Self {
        assert!(nodes >= 2, "traffic needs at least two nodes");
        model
            .validate()
            .unwrap_or_else(|e| panic!("invalid traffic model: {e}"));
        // One node per ~20 800 m² with the paper's 2.5:1 aspect ratio.
        let area = nodes as f64 * 20_800.0;
        let width = (area * 2.5).sqrt();
        let height = area / width;
        let topology = topology::random(nodes, width, height, 250.0, seed);
        let mut s = Scenario::new(topology, Vec::new(), bandwidth, seed);
        s.traffic = Some(TrafficSpec { model, transport });
        s
    }

    /// The paper's h-hop chain with a single flow from end to end
    /// (Figure 1 / Section 4.3).
    pub fn chain(hops: usize, bandwidth: DataRate, transport: Transport, seed: u64) -> Self {
        let topology = topology::chain(hops);
        let flows = vec![FlowSpec {
            src: NodeId(0),
            dst: NodeId(hops as u32),
            transport,
        }];
        Scenario::new(topology, flows, bandwidth, seed)
    }

    /// The paper's 21-node grid with six competing flows (Figure 15):
    /// three horizontal (west → east along each row) and three vertical
    /// (south → north along columns 1, 3, 5).
    pub fn grid6(bandwidth: DataRate, transport: Transport, seed: u64) -> Self {
        let cols = 7;
        let topology = topology::grid21();
        let mut flows = Vec::new();
        // FTP 1-3: horizontal.
        for row in 0..3 {
            flows.push(FlowSpec {
                src: topology::grid_node(cols, 0, row),
                dst: topology::grid_node(cols, 6, row),
                transport,
            });
        }
        // FTP 4-6: vertical, bottom row to top row.
        for col in [1, 3, 5] {
            flows.push(FlowSpec {
                src: topology::grid_node(cols, col, 2),
                dst: topology::grid_node(cols, col, 0),
                transport,
            });
        }
        Scenario::new(topology, flows, bandwidth, seed)
    }

    /// The paper's random scenario: 120 nodes on 2500 × 1000 m² with ten
    /// concurrent flows between randomly selected distinct endpoints.
    pub fn random10(bandwidth: DataRate, transport: Transport, seed: u64) -> Self {
        let topology = topology::random_paper(seed);
        let flows = random_flows(&topology, 10, transport, seed);
        Scenario::new(topology, flows, bandwidth, seed)
    }

    /// A large random scenario at the paper's density: any `nodes ≥ 2`
    /// on the [`topology::random_large`] field with ten random
    /// distinct-endpoint flows, drawn exactly like
    /// [`Scenario::random10`]. Used by the `random200-mobility` /
    /// `random500-mobility` bench scenarios and, via the city-scale
    /// sizes, by `random5k-mobility` / `random20k` / `random50k`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn random_large(
        nodes: usize,
        bandwidth: DataRate,
        transport: Transport,
        seed: u64,
    ) -> Self {
        let topology = topology::random_large(nodes, seed);
        let flows = random_flows(&topology, 10, transport, seed);
        Scenario::new(topology, flows, bandwidth, seed)
    }

    /// The metro preset: a city-scale mesh of fixed rooftop nodes — a
    /// [`Scenario::random_large`] field driven with the expanding-ring
    /// AODV configuration ([`AodvConfig::city`]), so route discoveries
    /// walk TTL rings instead of flooding all `nodes` routers. The
    /// canonical paper scenarios keep the flooding default; this preset
    /// (and its `metro200-newreno-11m` golden case) pins the ring
    /// machinery's behavior.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn metro(nodes: usize, bandwidth: DataRate, transport: Transport, seed: u64) -> Self {
        let mut s = Scenario::random_large(nodes, bandwidth, transport, seed);
        s.aodv = AodvConfig::city();
        s
    }

    /// The 802.11b MAC parameters implied by the configured bandwidth
    /// (or the explicit override, if set).
    pub fn mac_params(&self) -> MacParams {
        self.mac_override
            .unwrap_or_else(|| MacParams::ieee80211b(self.bandwidth))
    }

    /// Builds the runnable [`Network`].
    ///
    /// # Panics
    ///
    /// Panics if a flow references a node outside the topology or has
    /// identical endpoints.
    pub fn build(&self) -> Network {
        for f in &self.flows {
            assert!(
                f.src.index() < self.topology.len() && f.dst.index() < self.topology.len(),
                "flow endpoints must lie in the topology"
            );
            assert_ne!(f.src, f.dst, "flow endpoints must differ");
        }
        Network::build(self)
    }
}

/// `count` flows between randomly selected distinct endpoint pairs of
/// `topology`, from the seed's dedicated flow-selection stream (so flow
/// draws do not perturb topology or runtime randomness).
fn random_flows(
    topology: &Topology,
    count: usize,
    transport: Transport,
    seed: u64,
) -> Vec<FlowSpec> {
    let mut rng = mwn_sim::Pcg32::with_stream(seed, 0xF10A_5EED);
    let n = topology.len() as u32;
    let mut flows = Vec::new();
    let mut used = std::collections::HashSet::new();
    while flows.len() < count {
        let src = NodeId(rng.gen_range_u32(n));
        let dst = NodeId(rng.gen_range_u32(n));
        if src == dst || !used.insert((src, dst)) {
            continue;
        }
        flows.push(FlowSpec {
            src,
            dst,
            transport,
        });
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_scenario_shape() {
        let s = Scenario::chain(7, DataRate::MBPS_2, Transport::vegas(2), 1);
        assert_eq!(s.topology.len(), 8);
        assert_eq!(s.flows.len(), 1);
        assert_eq!(s.flows[0].dst, NodeId(7));
    }

    #[test]
    fn grid_scenario_has_six_flows() {
        let s = Scenario::grid6(DataRate::MBPS_11, Transport::newreno(), 1);
        assert_eq!(s.topology.len(), 21);
        assert_eq!(s.flows.len(), 6);
        // Horizontal flows span 6 hops, vertical 2.
        assert_eq!(s.flows[0].src, NodeId(0));
        assert_eq!(s.flows[0].dst, NodeId(6));
        assert_eq!(s.flows[3].src, NodeId(15));
        assert_eq!(s.flows[3].dst, NodeId(1));
    }

    #[test]
    fn random_scenario_has_ten_distinct_flows() {
        let s = Scenario::random10(DataRate::MBPS_2, Transport::vegas(2), 42);
        assert_eq!(s.flows.len(), 10);
        for f in &s.flows {
            assert_ne!(f.src, f.dst);
        }
        // Deterministic in the seed.
        let s2 = Scenario::random10(DataRate::MBPS_2, Transport::vegas(2), 42);
        assert_eq!(s.flows, s2.flows);
    }

    #[test]
    fn random_large_scenario_has_ten_distinct_flows() {
        let s = Scenario::random_large(200, DataRate::MBPS_2, Transport::newreno(), 5);
        assert_eq!(s.topology.len(), 200);
        assert_eq!(s.flows.len(), 10);
        for f in &s.flows {
            assert_ne!(f.src, f.dst);
            assert!(f.src.index() < 200 && f.dst.index() < 200);
        }
        let s2 = Scenario::random_large(200, DataRate::MBPS_2, Transport::newreno(), 5);
        assert_eq!(s.flows, s2.flows, "deterministic in the seed");
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Transport::vegas(2).label(), "Vegas a=2");
        assert_eq!(Transport::vegas_thinning(3).label(), "Vegas a=3 +thin");
        assert_eq!(Transport::newreno().label(), "NewReno");
        assert_eq!(Transport::newreno_thinning().label(), "NewReno +thin");
        assert_eq!(
            Transport::newreno_optimal_window(3).label(),
            "NewReno MaxWin=3"
        );
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_flow_rejected() {
        let t = topology::chain(2);
        let flows = vec![FlowSpec {
            src: NodeId(1),
            dst: NodeId(1),
            transport: Transport::newreno(),
        }];
        Scenario::new(t, flows, DataRate::MBPS_2, 1).build();
    }
}
