//! Structured event tracing (re-exported from [`mwn_obs`]).
//!
//! When enabled on a [`crate::Network`], the event loop records one
//! [`TraceRecord`] per interesting protocol event (frame transmissions,
//! receptions, MAC outcomes, routing decisions, transport milestones) into
//! a bounded ring buffer. Records carry a typed [`TraceEvent`] — no
//! strings are formatted until a record is displayed or exported, so
//! tracing is off by default and costs nothing until enabled.
//!
//! # Example
//!
//! ```
//! use mwn::{Scenario, SimDuration, SimTime, Transport};
//! use mwn_phy::DataRate;
//!
//! let mut net = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1).build();
//! net.enable_trace(1024);
//! net.run_until_delivered(1, SimTime::ZERO + SimDuration::from_secs(10));
//! let trace = net.trace();
//! assert!(trace.iter().any(|r| r.to_string().contains("TX Rts")));
//! ```

pub use mwn_obs::trace::{TraceBuffer, TraceEvent, TraceLayer, TraceRecord};
