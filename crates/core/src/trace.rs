//! Structured event tracing.
//!
//! When enabled on a [`crate::Network`], the event loop records one
//! [`TraceRecord`] per interesting protocol event (frame transmissions,
//! receptions, MAC outcomes, routing decisions, transport milestones) into
//! a bounded ring buffer. Tracing is off by default and costs nothing
//! until enabled.
//!
//! # Example
//!
//! ```
//! use mwn::{Scenario, SimDuration, SimTime, Transport};
//! use mwn_phy::DataRate;
//!
//! let mut net = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1).build();
//! net.enable_trace(1024);
//! net.run_until_delivered(1, SimTime::ZERO + SimDuration::from_secs(10));
//! let trace = net.trace();
//! assert!(trace.iter().any(|r| r.event.contains("TX Rts")));
//! ```

use std::collections::VecDeque;
use std::fmt;

use mwn_pkt::NodeId;
use mwn_sim::SimTime;

/// Which protocol layer produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceLayer {
    /// Radio / medium events.
    Phy,
    /// 802.11 DCF events.
    Mac,
    /// AODV events.
    Route,
    /// TCP / UDP events.
    Transport,
}

impl fmt::Display for TraceLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLayer::Phy => "PHY",
            TraceLayer::Mac => "MAC",
            TraceLayer::Route => "RTR",
            TraceLayer::Transport => "TRN",
        };
        f.write_str(s)
    }
}

/// One traced protocol event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When it happened.
    pub time: SimTime,
    /// The node it happened at.
    pub node: NodeId,
    /// The layer that produced it.
    pub layer: TraceLayer,
    /// Human-readable description.
    pub event: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.6}s {:>5} {} {}",
            self.time.as_secs_f64(),
            self.node.to_string(),
            self.layer,
            self.event
        )
    }
}

/// Bounded ring buffer of trace records.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` records (older records
    /// are evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs capacity");
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ns: u64, msg: &str) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(ns),
            node: NodeId(1),
            layer: TraceLayer::Mac,
            event: msg.to_string(),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut b = TraceBuffer::new(2);
        b.push(rec(1, "a"));
        b.push(rec(2, "b"));
        b.push(rec(3, "c"));
        let events: Vec<&str> = b.records().map(|r| r.event.as_str()).collect();
        assert_eq!(events, vec!["b", "c"]);
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn display_formats_layers() {
        let r = rec(1_500_000, "RTS -> n2");
        let s = r.to_string();
        assert!(s.contains("MAC"));
        assert!(s.contains("RTS -> n2"));
        assert!(s.contains("0.001500s"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        TraceBuffer::new(0);
    }
}
