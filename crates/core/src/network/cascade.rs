//! The event cascade, written once and instantiated twice.
//!
//! Handling one event (a signal edge, a timer, a delivered packet) fans
//! out through the layers: PHY → MAC → AODV → transport → back down to
//! the MAC. PR 8 runs these cascades both *sequentially* (the oracle
//! path, byte-identical to the pre-sharding engine) and *inside a
//! parallel batch* on worker threads. Maintaining two hand-mirrored
//! copies of ~500 lines of ordering-sensitive dispatch would make digest
//! equality a permanent debugging exercise, so the cascade is generic
//! over three capability traits instead:
//!
//! * [`Effects`] — every *global* side effect (scheduling, timer tables,
//!   trace/probe/ledger/audit/flight records, frame-slab access, the
//!   delivered counter). The sequential impl ([`SeqEffects`]) applies
//!   them immediately; the worker impl captures them as replayable ops.
//! * [`FlowStore`](super::flows::FlowStore) — flow state, either the real
//!   store or a worker's ownership-checked view.
//! * [`NodeStates`] — per-node protocol state (transceiver, MAC, router),
//!   either plain slices or disjoint shared slices.
//!
//! A cascade only ever touches the *current node's* state plus flow
//! halves anchored at that node — the locality fact the batch engine's
//! safety argument rests on (see `EXPERIMENTS.md`).

use std::sync::{Arc, Mutex};

use mwn_aodv::{AodvAction, AodvDropReason, Router};
use mwn_mac80211::{Dcf, MacAction, MacDropReason, MacParams, MacTimer};
use mwn_obs::flight::{FlightKind, FlightRecord, FlightRecorder, NO_REASON};
use mwn_obs::{ConservationAudit, DropLedger, DropReason, ProbeBuffer, ProbeKind};
use mwn_phy::{EnergyMeter, Medium, RadioEvent, Transceiver, TxId};
use mwn_pkt::{Body, FlowId, MacFrame, NodeId, Packet};
use mwn_sim::stats::TimeWeightedAverage;
use mwn_sim::{EventId, EventQueue, SimTime};
use mwn_tcp::{TcpSender, TcpSink, TransportAction, TransportTimer};

use crate::scenario::Transport;
use crate::trace::{TraceBuffer, TraceEvent, TraceRecord};

use super::flows::{FlowDst, FlowMeta, FlowSrc, FlowStore};
use super::frames::FrameSlab;
use super::{
    fnv_mix, transport_flow, Event, Role, SinkAgent, SourceAgent, TrafficState, JOURNAL_ARRIVAL,
    JOURNAL_COMPLETION, PERSISTENT,
};

/// Per-node protocol state, indexed by node. The sequential impl hands
/// out slice elements; the worker impl checks shard ownership first.
pub(super) trait NodeStates {
    fn tr(&mut self, node: NodeId) -> &mut Transceiver;
    fn mac(&mut self, node: NodeId) -> &mut Dcf;
    fn router(&mut self, node: NodeId) -> &mut Router;
}

/// Every side effect a cascade can have outside node-local protocol
/// state. Times are absolute (the cascade adds `now` before calling), so
/// a captured op replays without re-deriving the clock.
pub(super) trait Effects {
    fn schedule(&mut self, time: SimTime, event: Event);
    fn set_mac_timer(&mut self, time: SimTime, node: NodeId, timer: MacTimer);
    fn cancel_mac_timer(&mut self, node: NodeId, timer: MacTimer);
    /// Forgets a MAC timer id whose event just fired (no cancellation).
    fn clear_mac_timer(&mut self, node: NodeId, timer: MacTimer);
    fn set_transport_timer(
        &mut self,
        time: SimTime,
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    );
    fn cancel_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer);
    /// Forgets a transport timer id whose event just fired.
    fn clear_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer);
    /// Cancels every timer of a completing flow (both roles).
    fn cancel_all_transport_timers(&mut self, flow: FlowId);
    /// Grows the transport timer table alongside the flow slab.
    fn ensure_transport_timer_capacity(&mut self, len: usize);
    fn set_discovery_timer(&mut self, time: SimTime, node: NodeId, dst: NodeId);
    fn cancel_discovery_timer(&mut self, node: NodeId, dst: NodeId);
    /// Forgets a discovery timer id whose event just fired.
    fn clear_discovery_timer(&mut self, node: NodeId, dst: NodeId);
    /// Records a trace event; the closure must not run when tracing is
    /// disabled (the sequential digests depend on that laziness only for
    /// speed — the closure is pure).
    fn trace(&mut self, now: SimTime, node: NodeId, event: impl FnOnce() -> TraceEvent);
    fn probe(&mut self, now: SimTime, kind: ProbeKind, id: u32, value: f64);
    fn flight(&mut self, record: FlightRecord);
    fn ledger_drop(&mut self, node: usize, class: usize, reason: DropReason);
    fn audit_deliver_up(&mut self, node: usize, flow: u32);
    fn audit_handoff(&mut self, node: usize, flow: u32);
    fn audit_consume(&mut self, node: usize, flow: u32);
    fn audit_originate(&mut self, node: usize, flow: u32);
    fn audit_terminal_drop(&mut self, node: usize, flow: u32);
    fn add_delivered(&mut self, n: u64);
    /// The shared payload of transmission `tx`, if still on the air.
    fn frame(&self, tx: TxId) -> Option<&MacFrame>;
    /// Drops one receiver's claim on `tx` (the slab frees at zero).
    fn release_frame(&mut self, tx: TxId);
    /// Puts `frame` on the air from `node`: schedules the signal edges at
    /// every receiver, meters energy, and starts the local transceiver
    /// (whose radio events land in `evs` for the cascade to process).
    /// Worker cascades never transmit — see the batch safety argument.
    fn start_tx(
        &mut self,
        now: SimTime,
        node: NodeId,
        frame: MacFrame,
        tr: &mut Transceiver,
        evs: &mut Vec<RadioEvent>,
    );
}

/// Recycled action/event buffers. Dispatch re-enters (a delivered frame
/// can trigger a new send), so each taker pops its own buffer and the
/// apply path returns it once drained — the steady state allocates
/// nothing. One `Pools` exists per execution lane (the sequential loop,
/// and one per batch worker).
#[derive(Debug, Default)]
pub(super) struct Pools {
    pub mac: Vec<Vec<MacAction>>,
    pub aodv: Vec<Vec<AodvAction>>,
    pub transport: Vec<Vec<TransportAction>>,
    pub radio: Vec<Vec<RadioEvent>>,
    /// Scratch for the ELFN route-failure fanout.
    pub flow_scratch: Vec<FlowId>,
}

/// One event's fan-out through the layers, over abstract state/effects.
pub(super) struct Cascade<'a, E, F, S> {
    pub now: SimTime,
    pub states: &'a mut S,
    pub flows: &'a mut F,
    /// Open-loop workload state; `None` on worker cascades (traffic
    /// scenarios never batch) and for scenarios without a workload.
    pub traffic: Option<&'a mut TrafficState>,
    pub eff: &'a mut E,
    pub pools: &'a mut Pools,
    /// Index of the trailing `unattributed` ledger class.
    pub unattributed: usize,
}

impl<E: Effects, F: FlowStore, S: NodeStates> Cascade<'_, E, F, S> {
    /// Full dispatch: every event kind except `MobilityTick`, which the
    /// sequential loop handles directly (it rebuilds the medium).
    pub(super) fn handle_event(&mut self, event: Event) {
        match event {
            Event::SignalStart { node, tx, class } => self.signal_start(node, tx, class),
            Event::SignalEnd { node, tx } => self.signal_end(node, tx),
            Event::TxEnd { node } => self.tx_end(node),
            Event::Mac { node, timer } => {
                self.eff.clear_mac_timer(node, timer);
                let mut actions = self.pools.mac.pop().unwrap_or_default();
                self.states
                    .mac(node)
                    .on_timer(self.now, timer, &mut actions);
                self.apply_mac_actions(node, actions);
            }
            Event::AodvSend {
                node,
                next_hop,
                packet,
            } => {
                let mut actions = self.pools.mac.pop().unwrap_or_default();
                self.states
                    .mac(node)
                    .enqueue(self.now, next_hop, packet, &mut actions);
                self.apply_mac_actions(node, actions);
            }
            Event::AodvDiscovery { node, dst } => {
                self.eff.clear_discovery_timer(node, dst);
                let mut actions = self.pools.aodv.pop().unwrap_or_default();
                self.states
                    .router(node)
                    .on_discovery_timeout(self.now, dst, &mut actions);
                self.apply_aodv_actions(node, actions);
            }
            Event::Transport { flow, role, timer } => {
                // A completed traffic flow cancels its timers, so a stale
                // generation firing here should be impossible — but if one
                // ever slipped through, clearing the slot would wipe the
                // next tenant's timer id, so guard anyway.
                if self.flows.meta(flow).is_some() {
                    self.eff.clear_transport_timer(flow, role, timer);
                    self.dispatch_transport_timer(flow, role, timer);
                }
            }
            Event::FlowStart { flow } => self.flow_start(flow),
            Event::TrafficArrival { class } => self.handle_traffic_arrival(class),
            Event::MobilityTick => unreachable!("mobility ticks are handled sequentially"),
        }
    }

    /// Worker dispatch: the three batch-eligible kinds, by reference
    /// (their payloads are `Copy`; the caller keeps the event for the
    /// replay bookkeeping).
    pub(super) fn handle_signal(&mut self, event: &Event) {
        match *event {
            Event::SignalStart { node, tx, class } => self.signal_start(node, tx, class),
            Event::SignalEnd { node, tx } => self.signal_end(node, tx),
            Event::TxEnd { node } => self.tx_end(node),
            _ => unreachable!("only signal-edge events are batched"),
        }
    }

    fn signal_start(&mut self, node: NodeId, tx: TxId, class: mwn_phy::SignalClass) {
        let mut evs = self.pools.radio.pop().unwrap_or_default();
        self.states.tr(node).signal_start(tx, class, &mut evs);
        self.process_radio_events(node, evs);
    }

    fn signal_end(&mut self, node: NodeId, tx: TxId) {
        let mut evs = self.pools.radio.pop().unwrap_or_default();
        self.states.tr(node).signal_end(tx, &mut evs);
        self.process_radio_events(node, evs);
        self.eff.release_frame(tx);
    }

    fn tx_end(&mut self, node: NodeId) {
        let mut evs = self.pools.radio.pop().unwrap_or_default();
        self.states.tr(node).tx_end(&mut evs);
        let mut actions = self.pools.mac.pop().unwrap_or_default();
        self.states.mac(node).on_tx_done(self.now, &mut actions);
        self.apply_mac_actions(node, actions);
        self.process_radio_events(node, evs);
    }

    /// One open-loop arrival: draw the flow, reschedule the class's next
    /// arrival, and spawn the request leg.
    fn handle_traffic_arrival(&mut self, class: usize) {
        let Some(t) = self.traffic.as_deref_mut() else {
            return;
        };
        if t.engine.exhausted() {
            return;
        }
        let draw = t.engine.draw(class);
        let response = t.engine.response_packets(class);
        let next =
            (!t.engine.exhausted()).then(|| t.engine.next_gap(class, self.now.as_secs_f64()));
        t.fct.class_mut(class).record_arrival();
        if let Some(gap) = next {
            self.eff
                .schedule(self.now + gap, Event::TrafficArrival { class });
        }
        self.spawn_traffic_flow(
            class as u32,
            NodeId(draw.src),
            NodeId(draw.dst),
            draw.packets,
            response,
            self.now,
            0,
        );
    }

    /// Admits one traffic leg into the slab: reuses a vacated slot (or
    /// grows the slab and its timer table once, at the high-water mark),
    /// builds the TCP pair with an app-limited budget, journals the
    /// spawn and starts the sender immediately.
    #[allow(clippy::too_many_arguments)]
    fn spawn_traffic_flow(
        &mut self,
        class: u32,
        src: NodeId,
        dst: NodeId,
        packets: u64,
        response: Option<u64>,
        started: SimTime,
        carried: u64,
    ) -> FlowId {
        let (slot, generation) = self.flows.spawn_slot();
        self.eff.ensure_transport_timer_capacity(slot as usize + 1);
        let flow_id = FlowId::from_parts(slot, generation);

        let now = self.now;
        let t = self
            .traffic
            .as_deref_mut()
            .expect("traffic flows need a traffic state");
        let k = t.spawn_counter;
        assert!(
            k < 1 << 21,
            "traffic spawn counter exhausted its uid namespace"
        );
        t.spawn_counter += 1;
        t.live += 1;
        let transport = t.transport;
        let t_ns = started.as_nanos();
        fnv_mix(&mut t.journal_hash, JOURNAL_ARRIVAL);
        fnv_mix(&mut t.journal_hash, k);
        fnv_mix(&mut t.journal_hash, u64::from(class));
        fnv_mix(&mut t.journal_hash, u64::from(src.raw()));
        fnv_mix(&mut t.journal_hash, u64::from(dst.raw()));
        fnv_mix(&mut t.journal_hash, packets);
        fnv_mix(&mut t.journal_hash, t_ns);
        t.journal_count += 1;
        if carried == 0 {
            // First legs only: response legs spawn at completion times,
            // which depend on how the network is coping.
            fnv_mix(&mut t.arrival_hash, u64::from(class));
            fnv_mix(&mut t.arrival_hash, u64::from(src.raw()));
            fnv_mix(&mut t.arrival_hash, u64::from(dst.raw()));
            fnv_mix(&mut t.arrival_hash, packets);
            fnv_mix(&mut t.arrival_hash, t_ns);
            t.arrival_count += 1;
        }

        let uid_base = (3 << 61) | (k << 40);
        let Transport::Tcp {
            flavor,
            config,
            ack_policy,
        } = transport
        else {
            unreachable!("build() rejects non-TCP traffic transports");
        };
        let mut sender = TcpSender::new(config, flavor, flow_id, src, dst, uid_base);
        sender.set_budget(packets);
        let sink = TcpSink::new(ack_policy, flow_id, dst, src, uid_base | (1 << 39));
        self.flows.fill_slot(
            slot,
            FlowMeta {
                src,
                dst,
                class,
                started,
                carried,
                response,
            },
            FlowSrc {
                source: SourceAgent::Tcp(sender),
                cwnd_twa: TimeWeightedAverage::new(now, 1.0),
            },
            FlowDst {
                sink: SinkAgent::Tcp(sink),
                delivered: 0,
                last_delivery: None,
            },
        );
        self.eff.trace(now, src, || TraceEvent::FlowOpen {
            flow: flow_id,
            src,
            dst,
            packets,
        });
        self.flight_note(src, FlightKind::FlowOpen, u64::from(flow_id.raw()));

        let mut actions = self.pools.transport.pop().unwrap_or_default();
        let fs = self.flows.src_mut(flow_id).expect("slot was just filled");
        let SourceAgent::Tcp(s) = &mut fs.source else {
            unreachable!("traffic flows are TCP");
        };
        s.start(now, &mut actions);
        self.note_window(flow_id);
        self.apply_transport_actions(flow_id, Role::Source, src, actions);
        flow_id
    }

    /// Retires a completed traffic leg: cancels its remaining timers,
    /// vacates and generation-bumps the slot, then either spawns the
    /// response leg or journals the finished transaction.
    fn complete_traffic_flow(&mut self, flow: FlowId) {
        self.eff.cancel_all_transport_timers(flow);
        let (meta, src_half, _dst_half) = self.flows.vacate(flow);

        let budget = match &src_half.source {
            SourceAgent::Tcp(s) => s.budget().expect("traffic sender has a budget"),
            SourceAgent::Udp(_) => unreachable!("traffic flows are TCP"),
        };
        let total = meta.carried + budget;
        let now = self.now;
        let t = self
            .traffic
            .as_deref_mut()
            .expect("traffic flow without state");
        t.live -= 1;
        if let Some(resp) = meta.response {
            // Response leg runs the other way; the transaction's clock
            // and packet tally keep running.
            self.spawn_traffic_flow(
                meta.class,
                meta.dst,
                meta.src,
                resp,
                None,
                meta.started,
                total,
            );
            return;
        }
        let fct = now.saturating_duration_since(meta.started);
        fnv_mix(&mut t.journal_hash, JOURNAL_COMPLETION);
        fnv_mix(&mut t.journal_hash, u64::from(flow.raw()));
        fnv_mix(&mut t.journal_hash, u64::from(meta.class));
        fnv_mix(&mut t.journal_hash, total);
        fnv_mix(&mut t.journal_hash, now.as_nanos());
        t.journal_count += 1;
        t.fct
            .class_mut(meta.class as usize)
            .record_completion(fct, total);
        self.eff.trace(now, meta.src, || TraceEvent::FlowClose {
            flow,
            packets: total,
            fct_nanos: fct.as_nanos(),
        });
        self.flight_note(meta.src, FlightKind::FlowClose, u64::from(flow.raw()));
    }

    fn flow_start(&mut self, flow: FlowId) {
        let mut actions = self.pools.transport.pop().unwrap_or_default();
        let Some(meta) = self.flows.meta(flow) else {
            self.pools.transport.push(actions);
            return;
        };
        let node = meta.src;
        let Some(fs) = self.flows.src_mut(flow) else {
            self.pools.transport.push(actions);
            return;
        };
        match &mut fs.source {
            SourceAgent::Tcp(s) => s.start(self.now, &mut actions),
            SourceAgent::Udp(s) => s.start(self.now, &mut actions),
        }
        self.note_window(flow);
        self.apply_transport_actions(flow, Role::Source, node, actions);
    }

    fn dispatch_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer) {
        let mut actions = self.pools.transport.pop().unwrap_or_default();
        let Some(meta) = self.flows.meta(flow) else {
            self.pools.transport.push(actions);
            return;
        };
        let (src, dst) = (meta.src, meta.dst);
        let mut note = false;
        let node = match (role, timer) {
            (Role::Source, TransportTimer::Rtx) => {
                let Some(FlowSrc {
                    source: SourceAgent::Tcp(s),
                    ..
                }) = self.flows.src_mut(flow)
                else {
                    self.pools.transport.push(actions);
                    return;
                };
                s.on_rtx_timeout(self.now, &mut actions);
                note = true;
                src
            }
            (Role::Source, TransportTimer::Probe) => {
                let Some(FlowSrc {
                    source: SourceAgent::Tcp(s),
                    ..
                }) = self.flows.src_mut(flow)
                else {
                    self.pools.transport.push(actions);
                    return;
                };
                s.on_probe_timer(self.now, &mut actions);
                src
            }
            (Role::Source, TransportTimer::Pace) => {
                let Some(FlowSrc {
                    source: SourceAgent::Udp(s),
                    ..
                }) = self.flows.src_mut(flow)
                else {
                    self.pools.transport.push(actions);
                    return;
                };
                s.on_pace_timer(self.now, &mut actions);
                src
            }
            (Role::Sink, TransportTimer::DelayedAck) => {
                let Some(FlowDst {
                    sink: SinkAgent::Tcp(s),
                    ..
                }) = self.flows.dst_mut(flow)
                else {
                    self.pools.transport.push(actions);
                    return;
                };
                s.on_delayed_ack_timer(self.now, &mut actions);
                dst
            }
            _ => {
                self.pools.transport.push(actions);
                return;
            }
        };
        if note {
            self.note_window(flow);
        }
        self.apply_transport_actions(flow, role, node, actions);
    }

    // ---- PHY plumbing ----------------------------------------------------

    fn process_radio_events(&mut self, node: NodeId, mut events: Vec<RadioEvent>) {
        for ev in events.drain(..) {
            let mut actions = self.pools.mac.pop().unwrap_or_default();
            match ev {
                RadioEvent::CarrierBusy => {
                    self.states
                        .mac(node)
                        .on_carrier_busy(self.now, &mut actions);
                }
                RadioEvent::CarrierIdle => {
                    self.states
                        .mac(node)
                        .on_carrier_idle(self.now, &mut actions);
                }
                RadioEvent::RxStart(_) => {}
                RadioEvent::UndecodedEnd => {
                    self.eff.trace(self.now, node, || TraceEvent::PhyCorrupt);
                    self.states.mac(node).on_rx_corrupt(self.now);
                }
                RadioEvent::RxEnd { tx, ok } => {
                    if ok {
                        assert!(
                            self.eff.frame(tx).is_some(),
                            "RxEnd for unknown transmission"
                        );
                        self.eff.trace(self.now, node, || TraceEvent::PhyRxOk);
                        let now = self.now;
                        self.states.mac(node).on_rx_frame(
                            now,
                            self.eff.frame(tx).expect("checked above"),
                            &mut actions,
                        );
                    } else {
                        self.eff.trace(self.now, node, || TraceEvent::PhyCorrupt);
                        self.states.mac(node).on_rx_corrupt(self.now);
                    }
                }
            }
            self.apply_mac_actions(node, actions);
        }
        self.pools.radio.push(events);
    }

    // ---- action application ----------------------------------------------

    fn apply_mac_actions(&mut self, node: NodeId, mut actions: Vec<MacAction>) {
        for action in actions.drain(..) {
            match action {
                MacAction::StartTx(frame) => {
                    let mut evs = self.pools.radio.pop().unwrap_or_default();
                    self.eff
                        .start_tx(self.now, node, frame, self.states.tr(node), &mut evs);
                    self.process_radio_events(node, evs);
                }
                MacAction::SetTimer { timer, delay } => {
                    if timer == MacTimer::Defer {
                        self.eff.trace(self.now, node, || TraceEvent::MacDefer {
                            nanos: delay.as_nanos(),
                        });
                    }
                    self.eff.set_mac_timer(self.now + delay, node, timer);
                }
                MacAction::CancelTimer(timer) => {
                    self.eff.cancel_mac_timer(node, timer);
                }
                MacAction::Deliver { from, packet } => {
                    self.eff.trace(self.now, node, || TraceEvent::MacRx {
                        uid: packet.uid,
                        from,
                    });
                    // Custody: this node now holds a fresh copy.
                    if let Some(flow) = transport_flow(&packet) {
                        self.eff.audit_deliver_up(node.index(), flow);
                    }
                    let mut aodv = self.pools.aodv.pop().unwrap_or_default();
                    self.states
                        .router(node)
                        .on_received(self.now, from, packet, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                MacAction::TxConfirm {
                    next_hop,
                    packet,
                    success,
                } => {
                    if success {
                        // Custody: the next hop's deliver-up created its
                        // own copy; this node's copy is done.
                        if let Some(flow) = transport_flow(&packet) {
                            self.eff.audit_handoff(node.index(), flow);
                        }
                    } else {
                        self.eff
                            .trace(self.now, node, || TraceEvent::MacRetryExhausted {
                                uid: packet.uid,
                                next_hop,
                            });
                        // Frame-level loss: the router still holds the
                        // packet and decides its terminal fate (always a
                        // `RouteError` drop), so no custody event here.
                        if transport_flow(&packet).is_some() {
                            let class = self.packet_class(&packet);
                            self.eff.ledger_drop(
                                node.index(),
                                class,
                                DropReason::MacRetryExhausted,
                            );
                        }
                        self.flight_note(node, FlightKind::TxFail, packet.uid);
                    }
                    let mut aodv = self.pools.aodv.pop().unwrap_or_default();
                    self.states
                        .router(node)
                        .on_tx_confirm(self.now, next_hop, packet, success, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                MacAction::Dropped { ref packet, reason } => {
                    let uid = packet.uid;
                    self.eff
                        .trace(self.now, node, || TraceEvent::MacQueueDrop { uid });
                    let reason = match reason {
                        MacDropReason::QueueFull => DropReason::IfqOverflow,
                        MacDropReason::EarlyDrop => DropReason::MacEarlyDrop,
                    };
                    self.record_drop(node, packet, reason);
                }
            }
        }
        let depth = self.states.mac(node).queue_len();
        self.eff
            .probe(self.now, ProbeKind::IfqDepth, node.raw(), depth as f64);
        self.pools.mac.push(actions);
    }

    fn apply_aodv_actions(&mut self, node: NodeId, mut actions: Vec<AodvAction>) {
        for action in actions.drain(..) {
            match action {
                AodvAction::Send {
                    packet,
                    next_hop,
                    delay,
                } => {
                    if delay.is_zero() {
                        let mut mac = self.pools.mac.pop().unwrap_or_default();
                        self.states
                            .mac(node)
                            .enqueue(self.now, next_hop, packet, &mut mac);
                        self.apply_mac_actions(node, mac);
                    } else {
                        self.eff.schedule(
                            self.now + delay,
                            Event::AodvSend {
                                node,
                                next_hop,
                                packet,
                            },
                        );
                    }
                }
                AodvAction::Deliver(packet) => {
                    self.eff.trace(self.now, node, || TraceEvent::RouteDeliver {
                        uid: packet.uid,
                    });
                    self.deliver_to_transport(node, packet)
                }
                AodvAction::SetDiscoveryTimer { dst, delay } => {
                    self.eff.set_discovery_timer(self.now + delay, node, dst);
                }
                AodvAction::CancelDiscoveryTimer { dst } => {
                    self.eff.cancel_discovery_timer(node, dst);
                }
                AodvAction::NotifyRouteFailure { dst } => {
                    self.eff
                        .trace(self.now, node, || TraceEvent::RouteFailure { dst });
                    self.flight_note(node, FlightKind::RouteFail, u64::from(dst.raw()));
                    self.notify_route_failure(node, dst);
                }
                AodvAction::RouteInstalled {
                    dst,
                    next_hop,
                    hop_count,
                    dst_seq,
                } => {
                    self.eff.trace(self.now, node, || TraceEvent::RouteUpdate {
                        dst,
                        next_hop,
                        hop_count,
                        dst_seq,
                    });
                }
                AodvAction::RouteLost { dst, dst_seq } => {
                    self.eff
                        .trace(self.now, node, || TraceEvent::RouteInvalidate {
                            dst,
                            dst_seq,
                        });
                }
                AodvAction::Drop { ref packet, reason } => {
                    let uid = packet.uid;
                    self.eff
                        .trace(self.now, node, || TraceEvent::RouteDrop { uid, reason });
                    let reason = match reason {
                        AodvDropReason::NoRoute => DropReason::NoRoute,
                        AodvDropReason::LinkFailure => DropReason::RouteError,
                        AodvDropReason::TtlExpired => DropReason::TtlExpired,
                        AodvDropReason::BufferFull => DropReason::RouteBufferFull,
                    };
                    self.record_drop(node, packet, reason);
                }
            }
        }
        self.pools.aodv.push(actions);
    }

    fn deliver_to_transport(&mut self, node: NodeId, packet: Packet) {
        match &packet.body {
            Body::Tcp(seg) => {
                let flow_id = seg.flow;
                let flow_raw = flow_id.raw();
                let (seq, ack, is_data) = (seg.seq, seg.ack, seg.is_data());
                let mut actions = self.pools.transport.pop().unwrap_or_default();
                let Some(meta) = self.flows.meta(flow_id) else {
                    // Stale generation: a straggler from a finished flow.
                    self.pools.transport.push(actions);
                    self.record_drop(node, &packet, DropReason::FlowTeardown);
                    return;
                };
                let (src, dst, class) = (meta.src, meta.dst, meta.class);
                if is_data && node == dst {
                    let Some(fd) = self.flows.dst_mut(flow_id) else {
                        self.pools.transport.push(actions);
                        return;
                    };
                    let SinkAgent::Tcp(sink) = &mut fd.sink else {
                        self.pools.transport.push(actions);
                        return;
                    };
                    let before = sink.stats().delivered;
                    sink.on_data(self.now, seq, &mut actions);
                    let after = sink.stats().delivered;
                    if after > before {
                        fd.last_delivery = Some(self.now);
                    }
                    fd.delivered += after - before;
                    self.eff.add_delivered(after - before);
                    // Custody: the endpoint consumed this copy (duplicate
                    // or not).
                    self.eff.audit_consume(node.index(), flow_raw);
                    self.apply_transport_actions(flow_id, Role::Sink, dst, actions);
                } else if !is_data && node == src {
                    let Some(fs) = self.flows.src_mut(flow_id) else {
                        self.pools.transport.push(actions);
                        return;
                    };
                    let SourceAgent::Tcp(sender) = &mut fs.source else {
                        self.pools.transport.push(actions);
                        return;
                    };
                    sender.on_ack(self.now, ack, &mut actions);
                    self.eff.audit_consume(node.index(), flow_raw);
                    self.note_window(flow_id);
                    self.apply_transport_actions(flow_id, Role::Source, src, actions);
                    // The ACK may have been the flow's last: an app-limited
                    // sender with its whole budget acknowledged retires.
                    let done = class != PERSISTENT
                        && self.flows.src_mut(flow_id).is_some_and(
                            |fs| matches!(&fs.source, SourceAgent::Tcp(s) if s.is_complete()),
                        );
                    if done {
                        self.complete_traffic_flow(flow_id);
                    }
                } else {
                    self.pools.transport.push(actions);
                    // Wrong node or wrong direction: nothing consumes it.
                    self.record_drop(node, &packet, DropReason::SinkDiscard);
                }
            }
            Body::Udp(d) => {
                let flow_id = d.flow;
                let flow_raw = flow_id.raw();
                let Some(meta) = self.flows.meta(flow_id) else {
                    self.record_drop(node, &packet, DropReason::FlowTeardown);
                    return;
                };
                if node == meta.dst {
                    let Some(fd) = self.flows.dst_mut(flow_id) else {
                        return;
                    };
                    let SinkAgent::Udp(sink) = &mut fd.sink else {
                        return;
                    };
                    sink.on_data(d.seq);
                    fd.delivered += 1;
                    fd.last_delivery = Some(self.now);
                    self.eff.add_delivered(1);
                    self.eff.audit_consume(node.index(), flow_raw);
                } else {
                    self.record_drop(node, &packet, DropReason::SinkDiscard);
                }
            }
            Body::Aodv(_) => {
                // Routing messages never reach the transport layer.
            }
        }
    }

    /// ELFN: tells every local TCP sender whose flow targets `dst` that
    /// its route just failed. Strictly node-local: only flows sourced at
    /// `node` are touched.
    fn notify_route_failure(&mut self, node: NodeId, dst: NodeId) {
        let mut ids = std::mem::take(&mut self.pools.flow_scratch);
        ids.clear();
        self.flows.collect_tcp_src_flows(node, &mut ids);
        for flow_id in ids.drain(..) {
            let Some(meta) = self.flows.meta(flow_id) else {
                continue;
            };
            if meta.dst != dst {
                continue;
            }
            let mut actions = self.pools.transport.pop().unwrap_or_default();
            let Some(FlowSrc {
                source: SourceAgent::Tcp(sender),
                ..
            }) = self.flows.src_mut(flow_id)
            else {
                unreachable!("collected flows are TCP and sourced here");
            };
            sender.on_route_failure(self.now, &mut actions);
            self.apply_transport_actions(flow_id, Role::Source, node, actions);
        }
        self.pools.flow_scratch = ids;
    }

    fn note_window(&mut self, flow: FlowId) {
        let Some(meta) = self.flows.meta(flow) else {
            return;
        };
        let node = meta.src;
        let Some(fs) = self.flows.src_mut(flow) else {
            return;
        };
        let SourceAgent::Tcp(s) = &fs.source else {
            return;
        };
        let cwnd = s.cwnd();
        let srtt = s.srtt();
        let diff = s.vegas_diff();
        fs.cwnd_twa.record(self.now, cwnd);
        // Fixed-point milli-packets keep the trace event `Eq`/hashable.
        self.eff.trace(self.now, node, || TraceEvent::TcpCwnd {
            flow,
            cwnd_milli: (cwnd * 1000.0).round() as u64,
        });
        if let Some(diff) = diff {
            self.eff.trace(self.now, node, || TraceEvent::TcpVegasDiff {
                flow,
                diff_milli: (diff * 1000.0).round() as i64,
            });
        }
        self.eff.probe(self.now, ProbeKind::Cwnd, flow.raw(), cwnd);
        if let Some(srtt) = srtt {
            self.eff
                .probe(self.now, ProbeKind::Srtt, flow.raw(), srtt.as_secs_f64());
        }
        if let Some(diff) = diff {
            self.eff
                .probe(self.now, ProbeKind::VegasDiff, flow.raw(), diff);
        }
    }

    fn apply_transport_actions(
        &mut self,
        flow: FlowId,
        role: Role,
        node: NodeId,
        mut actions: Vec<TransportAction>,
    ) {
        for action in actions.drain(..) {
            match action {
                TransportAction::SendPacket(packet) => {
                    self.eff.trace(self.now, node, || match &packet.body {
                        Body::Tcp(seg) if seg.is_data() => {
                            TraceEvent::TcpData { flow, seq: seg.seq }
                        }
                        Body::Tcp(seg) => TraceEvent::TcpAck { flow, ack: seg.ack },
                        Body::Udp(d) => TraceEvent::UdpData { flow, seq: d.seq },
                        Body::Aodv(_) => unreachable!("transport never sends AODV"),
                    });
                    // Custody: a fresh copy enters the network here.
                    if let Some(flow_raw) = transport_flow(&packet) {
                        self.eff.audit_originate(node.index(), flow_raw);
                    }
                    let mut aodv = self.pools.aodv.pop().unwrap_or_default();
                    self.states.router(node).send(self.now, packet, &mut aodv);
                    self.apply_aodv_actions(node, aodv);
                }
                TransportAction::SetTimer { timer, delay } => {
                    self.eff
                        .set_transport_timer(self.now + delay, flow, role, timer);
                }
                TransportAction::CancelTimer(timer) => {
                    self.eff.cancel_transport_timer(flow, role, timer);
                }
            }
        }
        self.pools.transport.push(actions);
    }

    /// The ledger class a packet's losses are attributed to: its flow's
    /// traffic class, the `persistent` class for scenario-listed flows,
    /// or the trailing `unattributed` class when no live flow matches.
    fn packet_class(&self, packet: &Packet) -> usize {
        let unattributed = self.unattributed;
        let flow_id = match &packet.body {
            Body::Tcp(seg) => seg.flow,
            Body::Udp(d) => d.flow,
            Body::Aodv(_) => return unattributed,
        };
        match self.flows.meta(flow_id) {
            Some(m) if m.class == PERSISTENT => unattributed - 1,
            Some(m) => m.class as usize,
            None => unattributed,
        }
    }

    /// Records a drop in the flight recorder and — for transport-bodied
    /// packets — in the ledger (the ledger is a *data-plane* account;
    /// dropped AODV control messages would muddy the per-cause tables)
    /// and, when the reason ends custody, in the audit.
    fn record_drop(&mut self, node: NodeId, packet: &Packet, reason: DropReason) {
        if let Some(flow) = transport_flow(packet) {
            let class = self.packet_class(packet);
            self.eff.ledger_drop(node.index(), class, reason);
            if reason.is_terminal() {
                self.eff.audit_terminal_drop(node.index(), flow);
            }
        }
        self.eff.flight(FlightRecord {
            t_nanos: self.now.as_nanos(),
            id: packet.uid,
            node: node.raw(),
            kind: FlightKind::Drop,
            reason: reason.index() as u8,
        });
    }

    /// Appends a non-drop record to the flight recorder.
    fn flight_note(&mut self, node: NodeId, kind: FlightKind, id: u64) {
        self.eff.flight(FlightRecord {
            t_nanos: self.now.as_nanos(),
            id,
            node: node.raw(),
            kind,
            reason: NO_REASON,
        });
    }
}

// ---- sequential implementations -------------------------------------------

/// Plain slices: the whole network's node state, owned by one thread.
pub(super) struct SeqStates<'a> {
    pub transceivers: &'a mut [Transceiver],
    pub macs: &'a mut [Dcf],
    pub routers: &'a mut [Router],
}

impl NodeStates for SeqStates<'_> {
    fn tr(&mut self, node: NodeId) -> &mut Transceiver {
        &mut self.transceivers[node.index()]
    }

    fn mac(&mut self, node: NodeId) -> &mut Dcf {
        &mut self.macs[node.index()]
    }

    fn router(&mut self, node: NodeId) -> &mut Router {
        &mut self.routers[node.index()]
    }
}

/// The oracle path: every effect applied immediately to the network's
/// own structures, in exactly the order the pre-sharding engine did.
pub(super) struct SeqEffects<'a> {
    pub queue: &'a mut EventQueue<Event>,
    pub mac_timers: &'a mut Vec<[Option<EventId>; MacTimer::COUNT]>,
    pub discovery_timers: &'a mut Vec<mwn_aodv::NodeMap<EventId>>,
    pub transport_timers: &'a mut Vec<[[Option<EventId>; TransportTimer::COUNT]; 2]>,
    pub trace: &'a mut Option<TraceBuffer>,
    pub probes: &'a mut Option<ProbeBuffer>,
    pub ledger: &'a mut DropLedger,
    pub audit: &'a mut Option<ConservationAudit>,
    pub flight: &'a Arc<Mutex<FlightRecorder>>,
    pub total_delivered: &'a mut u64,
    pub frames: &'a mut FrameSlab,
    pub medium: &'a mut Medium,
    pub energy: &'a mut [EnergyMeter],
    pub params: &'a MacParams,
}

impl Effects for SeqEffects<'_> {
    fn schedule(&mut self, time: SimTime, event: Event) {
        self.queue.schedule(time, event);
    }

    fn set_mac_timer(&mut self, time: SimTime, node: NodeId, timer: MacTimer) {
        let slot = &mut self.mac_timers[node.index()][timer.index()];
        if let Some(old) = slot.take() {
            self.queue.cancel(old);
        }
        *slot = Some(self.queue.schedule(time, Event::Mac { node, timer }));
    }

    fn cancel_mac_timer(&mut self, node: NodeId, timer: MacTimer) {
        if let Some(old) = self.mac_timers[node.index()][timer.index()].take() {
            self.queue.cancel(old);
        }
    }

    fn clear_mac_timer(&mut self, node: NodeId, timer: MacTimer) {
        self.mac_timers[node.index()][timer.index()] = None;
    }

    fn set_transport_timer(
        &mut self,
        time: SimTime,
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    ) {
        let slot = &mut self.transport_timers[flow.slot() as usize][role.index()][timer.index()];
        if let Some(old) = slot.take() {
            self.queue.cancel(old);
        }
        *slot = Some(
            self.queue
                .schedule(time, Event::Transport { flow, role, timer }),
        );
    }

    fn cancel_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer) {
        if let Some(old) =
            self.transport_timers[flow.slot() as usize][role.index()][timer.index()].take()
        {
            self.queue.cancel(old);
        }
    }

    fn clear_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer) {
        self.transport_timers[flow.slot() as usize][role.index()][timer.index()] = None;
    }

    fn cancel_all_transport_timers(&mut self, flow: FlowId) {
        for role in &mut self.transport_timers[flow.slot() as usize] {
            for timer in role {
                if let Some(old) = timer.take() {
                    self.queue.cancel(old);
                }
            }
        }
    }

    fn ensure_transport_timer_capacity(&mut self, len: usize) {
        while self.transport_timers.len() < len {
            self.transport_timers
                .push([[None; TransportTimer::COUNT]; 2]);
        }
    }

    fn set_discovery_timer(&mut self, time: SimTime, node: NodeId, dst: NodeId) {
        if let Some(old) = self.discovery_timers[node.index()].remove(dst) {
            self.queue.cancel(old);
        }
        let id = self
            .queue
            .schedule(time, Event::AodvDiscovery { node, dst });
        self.discovery_timers[node.index()].insert(dst, id);
    }

    fn cancel_discovery_timer(&mut self, node: NodeId, dst: NodeId) {
        if let Some(old) = self.discovery_timers[node.index()].remove(dst) {
            self.queue.cancel(old);
        }
    }

    fn clear_discovery_timer(&mut self, node: NodeId, dst: NodeId) {
        self.discovery_timers[node.index()].remove(dst);
    }

    fn trace(&mut self, now: SimTime, node: NodeId, event: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(TraceRecord {
                time: now,
                node,
                event: event(),
            });
        }
    }

    fn probe(&mut self, now: SimTime, kind: ProbeKind, id: u32, value: f64) {
        if let Some(p) = self.probes.as_mut() {
            p.record(now, kind, id, value);
        }
    }

    fn flight(&mut self, record: FlightRecord) {
        self.flight.lock().unwrap().record(record);
    }

    fn ledger_drop(&mut self, node: usize, class: usize, reason: DropReason) {
        self.ledger.record(node, class, reason);
    }

    fn audit_deliver_up(&mut self, node: usize, flow: u32) {
        if let Some(a) = self.audit.as_mut() {
            a.deliver_up(node, flow);
        }
    }

    fn audit_handoff(&mut self, node: usize, flow: u32) {
        if let Some(a) = self.audit.as_mut() {
            a.handoff(node, flow);
        }
    }

    fn audit_consume(&mut self, node: usize, flow: u32) {
        if let Some(a) = self.audit.as_mut() {
            a.consume(node, flow);
        }
    }

    fn audit_originate(&mut self, node: usize, flow: u32) {
        if let Some(a) = self.audit.as_mut() {
            a.originate(node, flow);
        }
    }

    fn audit_terminal_drop(&mut self, node: usize, flow: u32) {
        if let Some(a) = self.audit.as_mut() {
            a.terminal_drop(node, flow);
        }
    }

    fn add_delivered(&mut self, n: u64) {
        *self.total_delivered += n;
    }

    fn frame(&self, tx: TxId) -> Option<&MacFrame> {
        self.frames.get(tx)
    }

    fn release_frame(&mut self, tx: TxId) {
        self.frames.release(tx);
    }

    fn start_tx(
        &mut self,
        now: SimTime,
        node: NodeId,
        frame: MacFrame,
        tr: &mut Transceiver,
        evs: &mut Vec<RadioEvent>,
    ) {
        let duration = self.params.airtime(&frame);
        let (kind, dst, bytes, nav) = (frame.kind(), frame.dst(), frame.size_bytes(), frame.nav());
        self.trace(now, node, || TraceEvent::MacTx {
            kind,
            dst,
            bytes,
            airtime: duration,
            nav,
        });
        self.energy[node.index()].add_tx(duration);
        // Transmission time is where lazy medium staleness resolves:
        // `refresh` rebuilds the effect list only if this node's 3×3
        // neighborhood changed since the list was built. The returned
        // borrow lives in place; the loop only touches disjoint fields
        // (queue, frames, energy), so no copy of the list is made.
        let effects = self.medium.refresh(node);
        if !effects.is_empty() {
            let tx = self.frames.insert(frame, effects.len());
            for e in effects {
                self.queue.schedule(
                    now + e.delay,
                    Event::SignalStart {
                        node: e.node,
                        tx,
                        class: e.class,
                    },
                );
                self.queue.schedule(
                    now + e.delay + duration,
                    Event::SignalEnd { node: e.node, tx },
                );
                if e.class.decodable {
                    self.energy[e.node.index()].add_rx(duration);
                }
            }
        }
        self.queue.schedule(now + duration, Event::TxEnd { node });
        tr.tx_start(evs);
    }
}
