//! Flow store split for the sharded engine.
//!
//! PR 6's slab kept each flow as one struct. During a parallel batch the
//! same flow's two endpoints can be handled by *different* workers in the
//! same window (the source's ACK cascade and the sink's data cascade), so
//! one `&mut Flow` per flow would alias across threads. The store
//! therefore splits each flow three ways:
//!
//! * [`FlowMeta`] — endpoints, class, transaction bookkeeping. Immutable
//!   while a batch is in flight (flow churn is sequential-only), so
//!   workers read it freely.
//! * [`FlowSrc`] — the sender agent and its window average. Owned by the
//!   worker that owns `meta.src`.
//! * [`FlowDst`] — the sink agent and delivery accounting. Owned by the
//!   worker that owns `meta.dst`.
//!
//! The [`FlowStore`] trait is how the cascade code sees either the real
//! sequential store ([`Flows`]) or a worker's disjoint-ownership view.

use mwn_pkt::{FlowId, NodeId};
use mwn_sim::stats::TimeWeightedAverage;
use mwn_sim::SimTime;

use super::{SinkAgent, SourceAgent};

/// Per-flow facts that never change while the flow is live (and, during
/// a parallel batch, are not written at all).
#[derive(Debug, Clone, Copy)]
pub(super) struct FlowMeta {
    pub src: NodeId,
    pub dst: NodeId,
    /// Traffic class index, or [`super::PERSISTENT`].
    pub class: u32,
    /// When the transaction this leg belongs to started (the request
    /// arrival, even for a response leg).
    pub started: SimTime,
    /// Packets completed by earlier legs of the same transaction.
    pub carried: u64,
    /// Response-leg size to spawn once this leg completes.
    pub response: Option<u64>,
}

/// Source-side state: mutated only by cascades at `meta.src`.
#[derive(Debug)]
pub(super) struct FlowSrc {
    pub source: SourceAgent,
    /// Time-weighted congestion window (TCP only).
    pub cwnd_twa: TimeWeightedAverage,
}

/// Sink-side state: mutated only by cascades at `meta.dst`.
#[derive(Debug)]
pub(super) struct FlowDst {
    pub sink: SinkAgent,
    /// Packets delivered in order at the sink (goodput numerator).
    pub delivered: u64,
    /// When the sink last advanced (for latency measurements).
    pub last_delivery: Option<SimTime>,
}

/// One slot of the flow slab. The generation counter increments every
/// time the slot is vacated, so a stale [`FlowId`] (packets or timers
/// from a finished flow) can never reach the slot's next tenant.
#[derive(Debug)]
pub(super) struct FlowSlot {
    pub generation: u32,
    pub meta: Option<FlowMeta>,
}

/// The sequential flow store: parallel slot/src/dst vectors plus the
/// free list. Persistent flows occupy slots `0..n` forever; traffic
/// flows churn through the remainder.
#[derive(Debug, Default)]
pub(super) struct Flows {
    pub slots: Vec<FlowSlot>,
    pub srcs: Vec<Option<FlowSrc>>,
    pub dsts: Vec<Option<FlowDst>>,
    /// Vacated slot indices, reused LIFO.
    pub free: Vec<u32>,
}

impl Flows {
    /// Appends a live flow at build time (persistent scenario flows).
    pub(super) fn push_persistent(&mut self, meta: FlowMeta, src: FlowSrc, dst: FlowDst) {
        self.slots.push(FlowSlot {
            generation: 0,
            meta: Some(meta),
        });
        self.srcs.push(Some(src));
        self.dsts.push(Some(dst));
    }

    /// Slots allocated so far (not all occupied).
    pub(super) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    pub(super) fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.meta.is_some()).count()
    }

    /// Generation-checked read access to a flow's immutable half.
    pub(super) fn meta_ref(&self, flow: FlowId) -> Option<&FlowMeta> {
        let slot = self.slots.get(flow.slot() as usize)?;
        if slot.generation != flow.generation() {
            return None;
        }
        slot.meta.as_ref()
    }

    /// Generation-checked read access to the source half.
    pub(super) fn src_ref(&self, flow: FlowId) -> Option<&FlowSrc> {
        self.meta_ref(flow)?;
        self.srcs[flow.slot() as usize].as_ref()
    }

    /// Generation-checked read access to the sink half.
    pub(super) fn dst_ref(&self, flow: FlowId) -> Option<&FlowDst> {
        self.meta_ref(flow)?;
        self.dsts[flow.slot() as usize].as_ref()
    }

    /// Disjoint borrows for a parallel batch: shared slots/metas, and the
    /// two mutable halves for [`super::batch`]'s ownership-checked views.
    pub(super) fn split_for_batch(
        &mut self,
    ) -> (&[FlowSlot], &mut [Option<FlowSrc>], &mut [Option<FlowDst>]) {
        (&self.slots, &mut self.srcs, &mut self.dsts)
    }
}

/// How cascade code reaches flow state: implemented by the sequential
/// [`Flows`] store and by the per-worker disjoint view in
/// [`super::batch`]. The slot-churn methods (`spawn_slot` / `fill_slot` /
/// `vacate`) exist only on the sequential path — open-loop traffic never
/// runs inside a batch — and panic on a worker view.
pub(super) trait FlowStore {
    /// Generation-checked lookup of the immutable half.
    fn meta(&self, flow: FlowId) -> Option<&FlowMeta>;
    /// Generation-checked lookup of the source half.
    fn src_mut(&mut self, flow: FlowId) -> Option<&mut FlowSrc>;
    /// Generation-checked lookup of the sink half.
    fn dst_mut(&mut self, flow: FlowId) -> Option<&mut FlowDst>;
    /// Appends (in slot order) every live TCP flow whose source is `node`
    /// — the ELFN route-failure fanout set.
    fn collect_tcp_src_flows(&self, node: NodeId, out: &mut Vec<FlowId>);
    /// Claims a slot for a new traffic flow: `(slot, generation)`.
    fn spawn_slot(&mut self) -> (u32, u32);
    /// Fills a slot claimed by [`spawn_slot`](Self::spawn_slot).
    fn fill_slot(&mut self, slot: u32, meta: FlowMeta, src: FlowSrc, dst: FlowDst);
    /// Vacates a completed flow's slot (bumping its generation) and
    /// returns the evicted state.
    fn vacate(&mut self, flow: FlowId) -> (FlowMeta, FlowSrc, FlowDst);
}

impl FlowStore for Flows {
    fn meta(&self, flow: FlowId) -> Option<&FlowMeta> {
        self.meta_ref(flow)
    }

    fn src_mut(&mut self, flow: FlowId) -> Option<&mut FlowSrc> {
        let slot = self.slots.get(flow.slot() as usize)?;
        if slot.generation != flow.generation() || slot.meta.is_none() {
            return None;
        }
        self.srcs[flow.slot() as usize].as_mut()
    }

    fn dst_mut(&mut self, flow: FlowId) -> Option<&mut FlowDst> {
        let slot = self.slots.get(flow.slot() as usize)?;
        if slot.generation != flow.generation() || slot.meta.is_none() {
            return None;
        }
        self.dsts[flow.slot() as usize].as_mut()
    }

    fn collect_tcp_src_flows(&self, node: NodeId, out: &mut Vec<FlowId>) {
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(meta) = &slot.meta else { continue };
            if meta.src != node {
                continue;
            }
            let is_tcp = matches!(
                self.srcs[i].as_ref().map(|s| &s.source),
                Some(SourceAgent::Tcp(_))
            );
            if is_tcp {
                out.push(FlowId::from_parts(i as u32, slot.generation));
            }
        }
    }

    fn spawn_slot(&mut self) -> (u32, u32) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(FlowSlot {
                    generation: 0,
                    meta: None,
                });
                self.srcs.push(None);
                self.dsts.push(None);
                s
            }
        };
        (slot, self.slots[slot as usize].generation)
    }

    fn fill_slot(&mut self, slot: u32, meta: FlowMeta, src: FlowSrc, dst: FlowDst) {
        let i = slot as usize;
        debug_assert!(self.slots[i].meta.is_none(), "filling an occupied slot");
        self.slots[i].meta = Some(meta);
        self.srcs[i] = Some(src);
        self.dsts[i] = Some(dst);
    }

    fn vacate(&mut self, flow: FlowId) -> (FlowMeta, FlowSrc, FlowDst) {
        let i = flow.slot() as usize;
        let entry = &mut self.slots[i];
        debug_assert_eq!(entry.generation, flow.generation(), "stale completion");
        let meta = entry.meta.take().expect("completing an empty slot");
        entry.generation = (entry.generation + 1) % FlowId::GENERATIONS;
        let src = self.srcs[i]
            .take()
            .expect("vacating a slot without a source");
        let dst = self.dsts[i].take().expect("vacating a slot without a sink");
        self.free.push(flow.slot());
        (meta, src, dst)
    }
}
