//! Frame slab: `Send`-able storage for frames on the air.
//!
//! PR 4 shared one `Rc<MacFrame>` per transmission between every receiver's
//! pending `SignalEnd`. `Rc` pins the whole network to one thread, so the
//! sharded engine replaces it with a slab: the payload lives in a slot, and
//! the [`TxId`] carried by `SignalStart`/`SignalEnd` events packs the slot
//! index with a reuse generation. Receivers borrow the frame by id; the
//! generation check makes a stale id (a straggler event naming a slot that
//! was freed and recycled) a *detected* miss instead of silently decoding
//! the slot's next tenant — the failure mode the fault-injection tests in
//! this module pin down.
//!
//! Slots are freed when the last outstanding `SignalEnd` releases them, so
//! allocation order (and therefore every `TxId` value) is a deterministic
//! function of the event sequence.

use mwn_phy::TxId;
use mwn_pkt::MacFrame;

/// Bits of a [`TxId`] holding the slot index; the high bits hold the
/// slot's reuse generation. 2^32 concurrent transmissions is unreachable
/// (the air holds a handful), so the split never constrains capacity.
const SLOT_BITS: u32 = 32;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// One in-flight transmission: the shared payload plus the number of
/// receivers whose `SignalEnd` has not yet fired.
#[derive(Debug)]
struct Slot {
    generation: u32,
    remaining: usize,
    frame: Option<MacFrame>,
}

/// Generation-checked slab of in-flight frames (see module docs).
#[derive(Debug, Default)]
pub(super) struct FrameSlab {
    slots: Vec<Slot>,
    /// Freed slot indices, reused LIFO so the working set stays compact.
    free: Vec<u32>,
    /// Releases that named a dead or recycled id — each one is a dropped
    /// straggler, never a replay into the slot's next tenant.
    stale_releases: u64,
}

impl FrameSlab {
    pub(super) fn new() -> Self {
        FrameSlab::default()
    }

    fn pack(slot: u32, generation: u32) -> TxId {
        TxId((u64::from(generation) << SLOT_BITS) | u64::from(slot))
    }

    fn unpack(tx: TxId) -> (u32, u32) {
        ((tx.0 & SLOT_MASK) as u32, (tx.0 >> SLOT_BITS) as u32)
    }

    /// Stores `frame` with `remaining` outstanding receivers and returns
    /// its generation-tagged id.
    ///
    /// # Panics
    ///
    /// Panics if `remaining` is zero: a transmission nobody receives is
    /// never inserted (the caller skips the slab entirely).
    pub(super) fn insert(&mut self, frame: MacFrame, remaining: usize) -> TxId {
        assert!(remaining > 0, "in-flight frame needs at least one receiver");
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.frame.is_none(), "free list pointed at a live slot");
                s.remaining = remaining;
                s.frame = Some(frame);
                Self::pack(slot, s.generation)
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    remaining,
                    frame: Some(frame),
                });
                Self::pack(slot, 0)
            }
        }
    }

    /// The payload of transmission `tx`, if its slot is live and the
    /// generation matches (stale ids miss, they never alias).
    pub(super) fn get(&self, tx: TxId) -> Option<&MacFrame> {
        let (slot, generation) = Self::unpack(tx);
        let s = self.slots.get(slot as usize)?;
        if s.generation != generation {
            return None;
        }
        s.frame.as_ref()
    }

    /// Drops one receiver's claim on `tx`; the last release vacates the
    /// slot and bumps its generation. A stale id (already fully released,
    /// or from a recycled slot) is rejected and counted, never applied to
    /// the slot's next tenant.
    pub(super) fn release(&mut self, tx: TxId) {
        let (slot, generation) = Self::unpack(tx);
        let Some(s) = self.slots.get_mut(slot as usize) else {
            self.stale_releases += 1;
            return;
        };
        if s.generation != generation || s.frame.is_none() {
            self.stale_releases += 1;
            return;
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            s.frame = None;
            s.generation = s.generation.wrapping_add(1);
            self.free.push(slot);
        }
    }

    /// Transmissions still on the air.
    pub(super) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Releases that named a dead or recycled id (see [`release`](Self::release)).
    pub(super) fn stale_releases(&self) -> u64 {
        self.stale_releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_pkt::NodeId;

    fn frame(seq: u16) -> MacFrame {
        MacFrame::Rts {
            src: NodeId(0),
            dst: NodeId(seq as u32 + 1),
            nav: mwn_sim::SimDuration::from_micros(100),
        }
    }

    #[test]
    fn insert_get_release_roundtrip() {
        let mut slab = FrameSlab::new();
        let tx = slab.insert(frame(1), 2);
        assert!(slab.get(tx).is_some());
        assert_eq!(slab.live(), 1);
        slab.release(tx);
        assert!(slab.get(tx).is_some(), "one receiver still outstanding");
        slab.release(tx);
        assert!(slab.get(tx).is_none(), "fully released");
        assert_eq!(slab.live(), 0);
        assert_eq!(slab.stale_releases(), 0);
    }

    #[test]
    fn slot_reuse_bumps_generation_so_ids_never_alias() {
        let mut slab = FrameSlab::new();
        let old = slab.insert(frame(1), 1);
        slab.release(old);
        let new = slab.insert(frame(2), 1);
        assert_ne!(old, new, "recycled slot must mint a fresh id");
        assert!(slab.get(old).is_none(), "stale id must not see new tenant");
        assert!(slab.get(new).is_some());
    }

    /// Fault injection: a stale frame id arriving after its slot was
    /// recycled must be rejected and counted — releasing it must not
    /// touch (let alone free) the slot's next tenant.
    #[test]
    fn stale_release_is_rejected_not_replayed() {
        let mut slab = FrameSlab::new();
        let old = slab.insert(frame(1), 1);
        slab.release(old);
        let new = slab.insert(frame(2), 3);
        // Straggler releases of the dead id: all rejected.
        slab.release(old);
        slab.release(old);
        assert_eq!(slab.stale_releases(), 2);
        assert!(slab.get(new).is_some(), "tenant survived stale releases");
        slab.release(new);
        slab.release(new);
        assert!(slab.get(new).is_some(), "refcount untouched by stale ids");
        slab.release(new);
        assert!(slab.get(new).is_none());
        // An id for a slot that never existed is also just counted.
        slab.release(TxId(u64::from(u32::MAX)));
        assert_eq!(slab.stale_releases(), 3);
    }

    #[test]
    fn allocation_order_is_deterministic_lifo() {
        let mut slab = FrameSlab::new();
        let a = slab.insert(frame(1), 1);
        let b = slab.insert(frame(2), 1);
        slab.release(a);
        slab.release(b);
        // LIFO: b's slot comes back first.
        let c = slab.insert(frame(3), 1);
        assert_eq!(c.0 & SLOT_MASK, b.0 & SLOT_MASK);
        assert_eq!(c.0 >> SLOT_BITS, (b.0 >> SLOT_BITS) + 1);
    }
}
