//! The sharded batch engine: parallel signal-event bursts, replayed in
//! sequential order.
//!
//! # Model
//!
//! The sequential loop pops one event at a time. With `--shards n`, the
//! loop instead looks for a *burst*: a maximal queue-head prefix of
//! signal-edge events (`SignalStart` / `SignalEnd` / `TxEnd`) whose
//! times all fall within [`HORIZON`] of the first. Those cascades are
//! node-local (a signal edge at node X touches only X's transceiver,
//! MAC, router, and flow halves anchored at X), so the burst is
//! partitioned by `node % shards` and handled on worker threads running
//! the *same* generic cascade code as the sequential oracle
//! ([`super::cascade`]). Every global side effect a worker cascade
//! would have — schedules, timer table changes, trace/probe/ledger/
//! audit/flight records, frame releases, the delivered counter — is
//! captured as a [`BatchOp`] instead of applied, then replayed on the
//! driving thread in exact global `(time, seq)` event order through the
//! sequential [`SeqEffects`]. Observables are therefore byte-identical
//! to the oracle by construction; the differential suite in `mwn-check`
//! holds the construction to it.
//!
//! # Why the horizon is safe
//!
//! Batching event `j` after event `i` without first applying `i`'s
//! effects is sound because nothing `i` does can affect `j`:
//!
//! * The earliest thing a signal cascade can *schedule* is a SIFS
//!   response timer (10 µs) or a jittered AODV forward
//!   ([`mwn_aodv::MIN_JITTER`], 16 µs). With `HORIZON` at 7.5 µs,
//!   every new event lands strictly after every event in the burst.
//! * The DCF only emits `StartTx` from timer handlers, and MAC timers
//!   are not batch kinds — so no new transmission (no new signal edges,
//!   no frame-slab allocation, no energy metering) happens mid-burst.
//!   [`WorkerEffects::start_tx`] is `unreachable!` and would loudly say
//!   so if the invariant ever broke.
//! * Batch kinds are never the target of a timer cancel (only MAC,
//!   transport and discovery timers are cancellable), so no burst event
//!   can invalidate another.
//! * Frame-slab releases are deferred as ops: the slab is read-only
//!   while workers run, so a `TxId` can never be recycled mid-burst.
//!
//! # Stopping exactly on target
//!
//! `run_until_delivered(target, ..)` must stop after the very event
//! that reaches `target`, mid-burst if need be. Rather than unwinding,
//! the driver refuses to *start* a burst that could overshoot: each
//! `SignalEnd` can deliver at most [`Network::delivery_bound`] packets
//! (the largest receive window can release a whole reassembly buffer at
//! once), so a burst with `ends` signal-ends is only batched while
//! `target - delivered > ends * bound`. Near the stop point execution
//! degrades to the sequential path and lands on the identical event.
//!
//! Open-loop traffic scenarios (`traffic.is_some()`) always take the
//! sequential path: flow churn re-keys slots mid-run, which would
//! invalidate the workers' slot-ownership reasoning. `--shards` is
//! accepted and simply has no effect there (documented in
//! `EXPERIMENTS.md`).
//!
//! # Stale timer fires
//!
//! Collection can pop a timer event (the burst's non-batchable tail)
//! into `pending` *before* a cascade earlier in the same burst cancels
//! it at replay. The cancel then misses (the event already left the
//! queue) and the timer fires stale, where the owner's generation check
//! ignores it — the same check that protects the sequential engine from
//! lazily-cancelled wheel entries. Behavior is unchanged; the only
//! visible effect is a slightly higher `events_processed` in the engine
//! profile (~0.02 % on the bench scenarios), which is why the profile's
//! event count is *not* part of the byte-identical contract.

use mwn_mac80211::MacTimer;
use mwn_obs::flight::FlightRecord;
use mwn_obs::{DropReason, ProbeKind};
use mwn_phy::TxId;
use mwn_pkt::{FlowId, NodeId};
use mwn_sim::{SharedSlice, SimDuration, SimTime, WorkerPool};
use mwn_tcp::TransportTimer;

use crate::trace::TraceRecord;

use super::cascade::{Cascade, Effects, NodeStates, Pools, SeqEffects};
use super::flows::{FlowDst, FlowMeta, FlowSlot, FlowSrc, FlowStore};
use super::frames::FrameSlab;
use super::{event_kind, Event, Network, Role, SourceAgent};

/// Burst window: every event in a batch lies within this of the first.
/// Must stay strictly below the smallest delay a batched cascade can
/// schedule at — SIFS (10 µs); see the module docs.
pub(super) const HORIZON: SimDuration = SimDuration::from_nanos(7_500);

/// Bursts shorter than this run sequentially — the barrier costs more
/// than it buys.
pub(super) const MIN_BATCH: usize = 4;

/// Upper bound on one burst, so replay granularity (and the stop-gate
/// overshoot term) stays bounded.
pub(super) const MAX_BATCH: usize = 512;

/// `true` for the three event kinds a worker may handle.
fn is_batchable(event: &Event) -> bool {
    matches!(
        event,
        Event::SignalStart { .. } | Event::SignalEnd { .. } | Event::TxEnd { .. }
    )
}

/// The node a batchable event is anchored at (= the only node state its
/// cascade touches).
fn batch_node(event: &Event) -> NodeId {
    match event {
        Event::SignalStart { node, .. } | Event::SignalEnd { node, .. } | Event::TxEnd { node } => {
            *node
        }
        _ => unreachable!("only signal-edge events are batched"),
    }
}

/// One captured global side effect, replayed through [`SeqEffects`] in
/// event order. Times are absolute — the cascade already added `now`.
#[derive(Debug)]
pub(super) enum BatchOp {
    Schedule {
        time: SimTime,
        event: Event,
    },
    SetMacTimer {
        time: SimTime,
        node: NodeId,
        timer: MacTimer,
    },
    CancelMacTimer {
        node: NodeId,
        timer: MacTimer,
    },
    SetTransportTimer {
        time: SimTime,
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    },
    CancelTransportTimer {
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    },
    SetDiscoveryTimer {
        time: SimTime,
        node: NodeId,
        dst: NodeId,
    },
    CancelDiscoveryTimer {
        node: NodeId,
        dst: NodeId,
    },
    Trace(TraceRecord),
    Probe {
        time: SimTime,
        kind: ProbeKind,
        id: u32,
        value: f64,
    },
    Flight(FlightRecord),
    Ledger {
        node: usize,
        class: usize,
        reason: DropReason,
    },
    AuditDeliverUp {
        node: usize,
        flow: u32,
    },
    AuditHandoff {
        node: usize,
        flow: u32,
    },
    AuditConsume {
        node: usize,
        flow: u32,
    },
    AuditOriginate {
        node: usize,
        flow: u32,
    },
    AuditTerminalDrop {
        node: usize,
        flow: u32,
    },
    Delivered(u64),
    ReleaseFrame(TxId),
}

/// Replays one op through the sequential effects — the same code the
/// oracle path runs, so replay cannot drift from it.
fn apply_op(eff: &mut SeqEffects<'_>, op: BatchOp) {
    match op {
        BatchOp::Schedule { time, event } => eff.schedule(time, event),
        BatchOp::SetMacTimer { time, node, timer } => eff.set_mac_timer(time, node, timer),
        BatchOp::CancelMacTimer { node, timer } => eff.cancel_mac_timer(node, timer),
        BatchOp::SetTransportTimer {
            time,
            flow,
            role,
            timer,
        } => {
            eff.set_transport_timer(time, flow, role, timer);
        }
        BatchOp::CancelTransportTimer { flow, role, timer } => {
            eff.cancel_transport_timer(flow, role, timer);
        }
        BatchOp::SetDiscoveryTimer { time, node, dst } => eff.set_discovery_timer(time, node, dst),
        BatchOp::CancelDiscoveryTimer { node, dst } => eff.cancel_discovery_timer(node, dst),
        BatchOp::Trace(rec) => eff.trace(rec.time, rec.node, || rec.event),
        BatchOp::Probe {
            time,
            kind,
            id,
            value,
        } => eff.probe(time, kind, id, value),
        BatchOp::Flight(record) => eff.flight(record),
        BatchOp::Ledger {
            node,
            class,
            reason,
        } => eff.ledger_drop(node, class, reason),
        BatchOp::AuditDeliverUp { node, flow } => eff.audit_deliver_up(node, flow),
        BatchOp::AuditHandoff { node, flow } => eff.audit_handoff(node, flow),
        BatchOp::AuditConsume { node, flow } => eff.audit_consume(node, flow),
        BatchOp::AuditOriginate { node, flow } => eff.audit_originate(node, flow),
        BatchOp::AuditTerminalDrop { node, flow } => eff.audit_terminal_drop(node, flow),
        BatchOp::Delivered(n) => eff.add_delivered(n),
        BatchOp::ReleaseFrame(tx) => eff.release_frame(tx),
    }
}

// ---- worker-side trait instantiations --------------------------------------

/// Disjoint shared node state: worker `w` may only touch nodes with
/// `index % shards == w`. The assertion is the ownership safety net —
/// if a cascade ever reached across nodes, it fails loudly instead of
/// racing.
struct WorkerStates<'a> {
    transceivers: SharedSlice<'a, mwn_phy::Transceiver>,
    macs: SharedSlice<'a, mwn_mac80211::Dcf>,
    routers: SharedSlice<'a, mwn_aodv::Router>,
    shards: usize,
    worker: usize,
}

impl WorkerStates<'_> {
    #[inline]
    fn check(&self, node: NodeId) -> usize {
        assert_eq!(
            node.index() % self.shards,
            self.worker,
            "worker cascade touched a node it does not own"
        );
        node.index()
    }
}

impl NodeStates for WorkerStates<'_> {
    fn tr(&mut self, node: NodeId) -> &mut mwn_phy::Transceiver {
        let i = self.check(node);
        // SAFETY: ownership assert above; disjoint `node % shards`
        // partition means no other worker holds this index.
        unsafe { self.transceivers.get_mut(i) }
    }

    fn mac(&mut self, node: NodeId) -> &mut mwn_mac80211::Dcf {
        let i = self.check(node);
        // SAFETY: as above.
        unsafe { self.macs.get_mut(i) }
    }

    fn router(&mut self, node: NodeId) -> &mut mwn_aodv::Router {
        let i = self.check(node);
        // SAFETY: as above.
        unsafe { self.routers.get_mut(i) }
    }
}

/// A worker's view of the flow store: shared immutable slots/metas,
/// mutable access to the src/dst halves *anchored at nodes this worker
/// owns*. Flow churn (spawn/vacate) is sequential-only and unreachable
/// here — batched scenarios have no open-loop traffic.
struct WorkerFlows<'a> {
    slots: &'a [FlowSlot],
    srcs: SharedSlice<'a, Option<FlowSrc>>,
    dsts: SharedSlice<'a, Option<FlowDst>>,
    shards: usize,
    worker: usize,
}

impl WorkerFlows<'_> {
    fn meta_of(&self, flow: FlowId) -> Option<&FlowMeta> {
        let slot = self.slots.get(flow.slot() as usize)?;
        if slot.generation != flow.generation() {
            return None;
        }
        slot.meta.as_ref()
    }

    #[inline]
    fn check_owned(&self, node: NodeId) {
        assert_eq!(
            node.index() % self.shards,
            self.worker,
            "worker cascade touched a flow half it does not own"
        );
    }
}

impl FlowStore for WorkerFlows<'_> {
    fn meta(&self, flow: FlowId) -> Option<&FlowMeta> {
        self.meta_of(flow)
    }

    fn src_mut(&mut self, flow: FlowId) -> Option<&mut FlowSrc> {
        let src = self.meta_of(flow)?.src;
        self.check_owned(src);
        // SAFETY: the src half is only ever mutated by cascades at
        // `meta.src`, and that node belongs to this worker (assert).
        unsafe { self.srcs.get_mut(flow.slot() as usize) }.as_mut()
    }

    fn dst_mut(&mut self, flow: FlowId) -> Option<&mut FlowDst> {
        let dst = self.meta_of(flow)?.dst;
        self.check_owned(dst);
        // SAFETY: as above, for the dst half.
        unsafe { self.dsts.get_mut(flow.slot() as usize) }.as_mut()
    }

    fn collect_tcp_src_flows(&self, node: NodeId, out: &mut Vec<FlowId>) {
        // Same slot order as the sequential store. The `meta.src == node`
        // filter comes *first*: only then is the src half read, and that
        // half belongs to this worker — no cross-worker reads.
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(meta) = &slot.meta else { continue };
            if meta.src != node {
                continue;
            }
            self.check_owned(node);
            // SAFETY: src half owned by this worker (assert above).
            let src = unsafe { self.srcs.get_mut(i) };
            if matches!(src.as_ref().map(|s| &s.source), Some(SourceAgent::Tcp(_))) {
                out.push(FlowId::from_parts(i as u32, slot.generation));
            }
        }
    }

    fn spawn_slot(&mut self) -> (u32, u32) {
        unreachable!("flow churn is sequential-only (traffic scenarios never batch)")
    }

    fn fill_slot(&mut self, _: u32, _: FlowMeta, _: FlowSrc, _: FlowDst) {
        unreachable!("flow churn is sequential-only (traffic scenarios never batch)")
    }

    fn vacate(&mut self, _: FlowId) -> (FlowMeta, FlowSrc, FlowDst) {
        unreachable!("flow churn is sequential-only (traffic scenarios never batch)")
    }
}

/// Captures every global side effect as a [`BatchOp`]. The observability
/// gates mirror the sequential path exactly: a disabled trace buffer
/// must not evaluate the (pure) record closure, and disabled probes /
/// audit must not grow the op list.
struct WorkerEffects<'a> {
    ops: &'a mut Vec<BatchOp>,
    frames: &'a FrameSlab,
    trace_on: bool,
    probes_on: bool,
    audit_on: bool,
}

impl Effects for WorkerEffects<'_> {
    fn schedule(&mut self, time: SimTime, event: Event) {
        self.ops.push(BatchOp::Schedule { time, event });
    }

    fn set_mac_timer(&mut self, time: SimTime, node: NodeId, timer: MacTimer) {
        self.ops.push(BatchOp::SetMacTimer { time, node, timer });
    }

    fn cancel_mac_timer(&mut self, node: NodeId, timer: MacTimer) {
        self.ops.push(BatchOp::CancelMacTimer { node, timer });
    }

    fn clear_mac_timer(&mut self, _node: NodeId, _timer: MacTimer) {
        unreachable!("MAC timer events are not batch kinds")
    }

    fn set_transport_timer(
        &mut self,
        time: SimTime,
        flow: FlowId,
        role: Role,
        timer: TransportTimer,
    ) {
        self.ops.push(BatchOp::SetTransportTimer {
            time,
            flow,
            role,
            timer,
        });
    }

    fn cancel_transport_timer(&mut self, flow: FlowId, role: Role, timer: TransportTimer) {
        self.ops
            .push(BatchOp::CancelTransportTimer { flow, role, timer });
    }

    fn clear_transport_timer(&mut self, _: FlowId, _: Role, _: TransportTimer) {
        unreachable!("transport timer events are not batch kinds")
    }

    fn cancel_all_transport_timers(&mut self, _: FlowId) {
        unreachable!("flow completion is sequential-only (traffic scenarios never batch)")
    }

    fn ensure_transport_timer_capacity(&mut self, _: usize) {
        unreachable!("flow churn is sequential-only (traffic scenarios never batch)")
    }

    fn set_discovery_timer(&mut self, time: SimTime, node: NodeId, dst: NodeId) {
        self.ops
            .push(BatchOp::SetDiscoveryTimer { time, node, dst });
    }

    fn cancel_discovery_timer(&mut self, node: NodeId, dst: NodeId) {
        self.ops.push(BatchOp::CancelDiscoveryTimer { node, dst });
    }

    fn clear_discovery_timer(&mut self, _node: NodeId, _dst: NodeId) {
        unreachable!("discovery timer events are not batch kinds")
    }

    fn trace(
        &mut self,
        now: SimTime,
        node: NodeId,
        event: impl FnOnce() -> crate::trace::TraceEvent,
    ) {
        if self.trace_on {
            self.ops.push(BatchOp::Trace(TraceRecord {
                time: now,
                node,
                event: event(),
            }));
        }
    }

    fn probe(&mut self, now: SimTime, kind: ProbeKind, id: u32, value: f64) {
        if self.probes_on {
            self.ops.push(BatchOp::Probe {
                time: now,
                kind,
                id,
                value,
            });
        }
    }

    fn flight(&mut self, record: FlightRecord) {
        self.ops.push(BatchOp::Flight(record));
    }

    fn ledger_drop(&mut self, node: usize, class: usize, reason: DropReason) {
        self.ops.push(BatchOp::Ledger {
            node,
            class,
            reason,
        });
    }

    fn audit_deliver_up(&mut self, node: usize, flow: u32) {
        if self.audit_on {
            self.ops.push(BatchOp::AuditDeliverUp { node, flow });
        }
    }

    fn audit_handoff(&mut self, node: usize, flow: u32) {
        if self.audit_on {
            self.ops.push(BatchOp::AuditHandoff { node, flow });
        }
    }

    fn audit_consume(&mut self, node: usize, flow: u32) {
        if self.audit_on {
            self.ops.push(BatchOp::AuditConsume { node, flow });
        }
    }

    fn audit_originate(&mut self, node: usize, flow: u32) {
        if self.audit_on {
            self.ops.push(BatchOp::AuditOriginate { node, flow });
        }
    }

    fn audit_terminal_drop(&mut self, node: usize, flow: u32) {
        if self.audit_on {
            self.ops.push(BatchOp::AuditTerminalDrop { node, flow });
        }
    }

    fn add_delivered(&mut self, n: u64) {
        self.ops.push(BatchOp::Delivered(n));
    }

    fn frame(&self, tx: TxId) -> Option<&mwn_pkt::MacFrame> {
        // Shared read: the slab is frozen while workers run (releases
        // are deferred ops; allocations only happen in `start_tx`).
        self.frames.get(tx)
    }

    fn release_frame(&mut self, tx: TxId) {
        self.ops.push(BatchOp::ReleaseFrame(tx));
    }

    fn start_tx(
        &mut self,
        _now: SimTime,
        _node: NodeId,
        _frame: mwn_pkt::MacFrame,
        _tr: &mut mwn_phy::Transceiver,
        _evs: &mut Vec<mwn_phy::RadioEvent>,
    ) {
        unreachable!(
            "a batched cascade tried to transmit: the DCF must only emit \
             StartTx from timer handlers, which are not batch kinds"
        )
    }
}

// ---- the runtime -----------------------------------------------------------

/// Per-worker reusable context: cascade buffer pools and the captured
/// op lists of the current burst.
struct WorkerCtx {
    pools: Pools,
    /// `(global event index, captured ops)`, ascending in event index.
    out: Vec<(u32, Vec<BatchOp>)>,
    /// Recycled op vectors.
    spare: Vec<Vec<BatchOp>>,
}

/// Everything the batch path keeps between bursts: the persistent
/// worker pool and per-worker contexts. Lives on [`Network`] as an
/// `Option` (absent means pure sequential execution).
pub(super) struct BatchRuntime {
    shards: usize,
    pool: WorkerPool,
    workers: Vec<WorkerCtx>,
    /// Bursts executed so far — the engagement observable `mwn bench`
    /// reports and the differential tests assert on (a sharded run that
    /// never bursts would match the oracle vacuously).
    bursts: u64,
}

impl std::fmt::Debug for BatchRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRuntime")
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl BatchRuntime {
    pub(super) fn new(shards: usize) -> Self {
        assert!(shards > 1, "a 1-shard runtime is the sequential path");
        BatchRuntime {
            shards,
            pool: WorkerPool::new(shards),
            workers: (0..shards)
                .map(|_| WorkerCtx {
                    pools: Pools::default(),
                    out: Vec::new(),
                    spare: Vec::new(),
                })
                .collect(),
            bursts: 0,
        }
    }

    pub(super) fn shards(&self) -> usize {
        self.shards
    }

    pub(super) fn bursts(&self) -> u64 {
        self.bursts
    }
}

impl Network {
    /// Tries to run one parallel burst. Returns `true` if a burst was
    /// executed (the caller's loop re-checks its stop condition), `false`
    /// if the head of the queue should be handled sequentially instead.
    ///
    /// `target` is the delivery stop bound of the enclosing run loop, if
    /// it has one — see the module docs on stopping exactly on target.
    pub(super) fn try_batch(&mut self, deadline: SimTime, target: Option<u64>) -> bool {
        if self.batch.is_none() || self.traffic.is_some() || !self.pending.is_empty() {
            return false;
        }
        let Some(t0) = self.queue.peek_time() else {
            return false;
        };
        if t0 > deadline {
            return false;
        }
        let horizon = t0 + HORIZON;
        let limit = horizon.min(deadline);

        // Collect the candidate burst: the maximal queue-head prefix of
        // batchable events within the horizon (and the deadline). The
        // first non-batchable event popped goes to `pending`, which the
        // sequential path consumes before the queue — order preserved.
        // The probe is the *bounded* peek: a plain peek would commit the
        // wheel to the next event's granule, making the replay's
        // earlier-but-still-future schedules illegal.
        let mut events: Vec<(SimTime, Event)> = Vec::with_capacity(MAX_BATCH.min(64));
        let mut tail = None;
        while events.len() < MAX_BATCH {
            if self.queue.peek_time_within(limit).is_none() {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            if is_batchable(&ev) {
                events.push((t, ev));
            } else {
                tail = Some((t, ev));
                break;
            }
        }

        let ends = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::SignalEnd { .. }))
            .count() as u64;
        let could_overshoot = target.is_some_and(|t| {
            t.saturating_sub(self.total_delivered) <= ends.saturating_mul(self.delivery_bound)
        });
        if events.len() < MIN_BATCH || could_overshoot {
            // Not worth (or not safe to) batching: hand everything to the
            // sequential path, in order.
            self.pending.extend(events);
            if let Some(t) = tail {
                self.pending.push_back(t);
            }
            return false;
        }
        if let Some(t) = tail {
            self.pending.push_back(t);
        }
        self.run_burst(events);
        true
    }

    /// Runs one burst: parallel capture on the shard workers, then an
    /// in-order replay of every captured op on this thread.
    fn run_burst(&mut self, events: Vec<(SimTime, Event)>) {
        let mut rt = self.batch.take().expect("run_burst without a runtime");
        rt.bursts += 1;
        let shards = rt.shards;
        let unattributed = self.ledger.class_names().len() - 1;
        let trace_on = self.trace.is_some();
        let probes_on = self.probes.is_some();
        let audit_on = self.audit.is_some();

        {
            let (slots, srcs, dsts) = self.flows.split_for_batch();
            let slots: &[FlowSlot] = slots;
            let transceivers = SharedSlice::new(&mut self.transceivers);
            let macs = SharedSlice::new(&mut self.macs);
            let routers = SharedSlice::new(&mut self.routers);
            let srcs = SharedSlice::new(srcs);
            let dsts = SharedSlice::new(dsts);
            let ctxs = SharedSlice::new(&mut rt.workers);
            let frames: &FrameSlab = &self.frames;
            let events: &[(SimTime, Event)] = &events;
            let job = move |w: usize| {
                // SAFETY: worker w exclusively owns context w.
                let ctx = unsafe { ctxs.get_mut(w) };
                ctx.out.clear();
                for (idx, (t, ev)) in events.iter().enumerate() {
                    if batch_node(ev).index() % shards != w {
                        continue;
                    }
                    let mut ops = ctx.spare.pop().unwrap_or_default();
                    let mut states = WorkerStates {
                        transceivers,
                        macs,
                        routers,
                        shards,
                        worker: w,
                    };
                    let mut flows = WorkerFlows {
                        slots,
                        srcs,
                        dsts,
                        shards,
                        worker: w,
                    };
                    let mut eff = WorkerEffects {
                        ops: &mut ops,
                        frames,
                        trace_on,
                        probes_on,
                        audit_on,
                    };
                    let mut cascade = Cascade {
                        now: *t,
                        states: &mut states,
                        flows: &mut flows,
                        traffic: None,
                        eff: &mut eff,
                        pools: &mut ctx.pools,
                        unattributed,
                    };
                    cascade.handle_signal(ev);
                    ctx.out.push((idx as u32, ops));
                }
            };
            rt.pool.run(&job);
        }

        // Replay: walk the burst in global order; each event's ops come
        // from its owner's list, whose entries are already ascending in
        // event index (workers walked the burst in order).
        let n = events.len();
        let mut cursors = vec![0usize; shards];
        for (idx, (t, ev)) in events.into_iter().enumerate() {
            self.now = t;
            if let Some(p) = &mut self.profile {
                // Depth as the sequential loop would have seen it: the
                // queue and carry buffer, plus the burst's own not-yet-
                // handled suffix.
                p.record(
                    event_kind(&ev),
                    self.queue.len() + self.pending.len() + (n - 1 - idx),
                );
            }
            let w = batch_node(&ev).index() % shards;
            let entry = &mut rt.workers[w].out[cursors[w]];
            assert_eq!(entry.0, idx as u32, "replay cursor out of step");
            cursors[w] += 1;
            let mut ops = std::mem::take(&mut entry.1);
            let mut eff = SeqEffects {
                queue: &mut self.queue,
                mac_timers: &mut self.mac_timers,
                discovery_timers: &mut self.discovery_timers,
                transport_timers: &mut self.transport_timers,
                trace: &mut self.trace,
                probes: &mut self.probes,
                ledger: &mut self.ledger,
                audit: &mut self.audit,
                flight: &self.flight,
                total_delivered: &mut self.total_delivered,
                frames: &mut self.frames,
                medium: &mut self.medium,
                energy: &mut self.energy,
                params: &self.params,
            };
            for op in ops.drain(..) {
                apply_op(&mut eff, op);
            }
            rt.workers[w].spare.push(ops);
        }
        self.batch = Some(rt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, Transport};
    use mwn_phy::DataRate;
    use mwn_pkt::FlowId;
    use mwn_sim::SimTime;

    fn deadline(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    /// FNV-1a64 over every retained trace record's rendered form — a
    /// strict observable for digest-equality assertions.
    fn trace_fingerprint(net: &Network) -> u64 {
        let mut hash = super::super::FNV_OFFSET;
        for rec in net.trace() {
            for b in rec.to_string().bytes() {
                hash = (hash ^ u64::from(b)).wrapping_mul(super::super::FNV_PRIME);
            }
        }
        hash
    }

    fn traffic_scenario(max_flows: u64, seed: u64) -> Scenario {
        use crate::scenario::TrafficSpec;
        use crate::topology;
        use mwn_traffic::{Arrival, SizeDist, TrafficClass, TrafficModel};
        let model = TrafficModel {
            classes: vec![TrafficClass {
                name: "short".into(),
                arrival: Arrival::Poisson { rate_fps: 2.0 },
                size: SizeDist::Fixed { packets: 3 },
                response: None,
            }],
            max_flows,
            zipf_skew: 0.5,
            diurnal: None,
        };
        let mut s = Scenario::new(topology::chain(3), Vec::new(), DataRate::MBPS_2, seed);
        s.traffic = Some(TrafficSpec {
            model,
            transport: Transport::newreno(),
        });
        s
    }

    /// The core PR-8 contract, in-crate: a sharded run of a non-trivial
    /// scenario reaches the same state as the sequential oracle.
    #[test]
    fn sharded_run_matches_sequential_oracle() {
        let fingerprint = |shards: usize| {
            let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), 42);
            let mut net = s.build();
            net.enable_trace(1 << 16);
            net.enable_audit();
            net.set_shards(shards);
            let out = net.run_until_delivered(150, deadline(240));
            let trace_hash = trace_fingerprint(&net);
            (
                out,
                net.now(),
                net.total_delivered(),
                net.totals(),
                trace_hash,
                net.drop_report().grand_total(),
                net.conservation_report().expect("audit on").is_balanced(),
                net.flight_written(),
            )
        };
        let seq = fingerprint(1);
        assert_eq!(seq, fingerprint(2));
        assert_eq!(seq, fingerprint(3));
        assert_eq!(seq, fingerprint(8));
    }

    /// Stops land on the identical event even when the target is reached
    /// mid-burst — the overshoot gate degrades to sequential in time.
    #[test]
    fn sharded_stop_point_is_exact() {
        for target in [1u64, 7, 50, 121] {
            let run = |shards: usize| {
                let s = Scenario::chain(3, DataRate::MBPS_2, Transport::vegas(2), 9);
                let mut net = s.build();
                net.set_shards(shards);
                net.run_until_delivered(target, deadline(240));
                (net.now(), net.total_delivered())
            };
            assert_eq!(run(1), run(4), "divergent stop for target {target}");
        }
    }

    /// Deadline-bounded runs (no delivery target) batch without a gate
    /// and still match.
    #[test]
    fn sharded_deadline_run_matches() {
        let run = |shards: usize| {
            let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 5);
            let mut net = s.build();
            net.enable_trace(1 << 14);
            net.set_shards(shards);
            net.run_until(deadline(20));
            (net.total_delivered(), net.totals(), trace_fingerprint(&net))
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }

    /// Traffic scenarios take the sequential path under any shard count:
    /// identical digests, no panics from the churn-is-sequential asserts.
    #[test]
    fn traffic_scenarios_fall_back_to_sequential() {
        let run = |shards: usize| {
            let mut net = traffic_scenario(40, 9).build();
            net.set_shards(shards);
            net.run_until_traffic_done(deadline(4000));
            net.traffic_digest().unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    /// Mobility scenarios interleave `MobilityTick` (a non-batch kind)
    /// with signal bursts; the carry path must keep global order.
    #[test]
    fn sharded_mobility_run_matches() {
        let run = |shards: usize| {
            let mut s = Scenario::chain(3, DataRate::MBPS_2, Transport::newreno(), 17);
            s.mobility = Some(crate::mobility::RandomWaypoint::strip(
                1.0,
                SimDuration::from_secs(1),
            ));
            let mut net = s.build();
            net.enable_trace(1 << 14);
            net.set_shards(shards);
            net.run_until_delivered(80, deadline(240));
            (
                net.now(),
                net.total_delivered(),
                net.totals(),
                trace_fingerprint(&net),
            )
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn set_shards_one_restores_the_pure_oracle() {
        let s = Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 1);
        let mut net = s.build();
        net.set_shards(4);
        net.set_shards(1);
        net.run_until_delivered(20, deadline(60));
        assert!(net.total_delivered() >= 20);
        assert!(net.flow_delivered(FlowId(0)) >= 20);
    }
}
