//! Full-stack simulator and study harness for *Improving TCP Performance
//! for Multihop Wireless Networks* (ElRakabawy, Lindemann & Vernon,
//! DSN 2005).
//!
//! This crate composes the workspace's substrate crates — discrete-event
//! engine ([`mwn_sim`]), range-based PHY ([`mwn_phy`]), IEEE 802.11 DCF MAC
//! ([`mwn_mac80211`]), AODV routing ([`mwn_aodv`]) and packet-granularity
//! transport ([`mwn_tcp`]) — into runnable network scenarios, and provides
//! the batch-means experiment harness that regenerates every figure and
//! table of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use mwn::{ExperimentScale, Scenario, Transport, topology};
//! use mwn_phy::DataRate;
//!
//! // A 3-hop chain with one TCP Vegas (α = 2) flow at 2 Mbit/s.
//! let scenario = Scenario::chain(3, DataRate::MBPS_2, Transport::vegas(2), 1);
//! let results = mwn::experiment::run(&scenario, ExperimentScale::smoke());
//! assert!(results.aggregate_goodput_kbps.mean > 0.0);
//! ```
//!
//! # Structure
//!
//! * [`topology`] — chain / grid / random node placements (paper Figures 1
//!   and 15, Section 4.4.2);
//! * [`Scenario`] — a topology plus flows, bandwidth and seed;
//! * [`Network`] — the event loop gluing all protocol layers together;
//! * [`experiment`] — steady-state batch-means runner (Section 4.1);
//! * [`experiments`] — one entry point per paper figure/table.

pub mod experiment;
pub mod experiments;
pub mod jobs;
pub mod mobility;
mod network;
mod scenario;
pub mod topology;
pub mod trace;

pub use experiment::{ExperimentScale, FlowResult, ObsConfig, RunOutcome, RunResults};
pub use network::{Network, NetworkTotals, StepOutcome};
pub use scenario::{FlowSpec, Scenario, TrafficSpec, Transport};

// Re-export the open-loop workload vocabulary so callers can describe
// traffic without naming the `mwn-traffic` crate.
pub use mwn_obs::{ClassFct, FctSummary};
pub use mwn_traffic::{Arrival, Diurnal, SizeDist, TrafficClass, TrafficModel};

// Re-export the observability layer's vocabulary so downstream users
// (runner, CLI) see one coherent API.
pub use mwn_obs::{
    BatchMetrics, MetricsReport, MetricsSnapshot, ProbeKind, ProbeSample, TraceEvent,
};
pub use mwn_sim::EngineProfile;

// Re-export the pieces users need to build scenarios.
pub use mwn_aodv::AodvConfig;
pub use mwn_mac80211::MacParams;
pub use mwn_phy::{DataRate, Position, RangeModel};
pub use mwn_pkt::{FlowId, NodeId};
pub use mwn_sim::stats::Estimate;
pub use mwn_sim::{SimDuration, SimTime};
pub use mwn_tcp::{AckPolicy, Flavor, TcpConfig};
