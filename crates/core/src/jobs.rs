//! Serializable experiment jobs: the unit of work of the parallel sweep
//! engine (`mwn-runner`).
//!
//! The paper's evaluation is a grid of independent simulation runs —
//! (topology × bandwidth × transport × seed). A [`JobSpec`] captures one
//! cell of that grid as plain data with a stable *content key*, so runs
//! can be farmed out to worker threads, persisted to a results store, and
//! skipped on re-invocation when a result with the same key already
//! exists.
//!
//! [`full_suite`] and [`chain_study`] enumerate the grids behind the
//! paper's figures using the *same* [`seed_for`] seeds as the
//! [`crate::experiments`] drivers, so a sweep cell and the corresponding
//! figure point are the same simulation run. [`traffic_study`] adds the
//! open-loop workload extension: built-in [`TrafficModel`] profiles
//! crossed with the TCP variants.

use mwn_phy::DataRate;
use mwn_sim::{fxhash, SimDuration};
use mwn_tcp::{AckPolicy, Flavor};
use mwn_traffic::TrafficModel;

use crate::experiment::ExperimentScale;
use crate::experiments::{seed_for, PAPER_BANDWIDTHS, PAPER_HOPS};
use crate::scenario::{Scenario, Transport};

/// Which topology/flow layout a job simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The h-hop chain with one end-to-end flow.
    Chain {
        /// Number of hops.
        hops: usize,
    },
    /// The 21-node grid with six competing flows (Figure 15).
    Grid6,
    /// The 120-node random topology with ten flows (Section 4.4.2).
    Random10,
    /// A large random preset (200 or 500 nodes) at the paper's density
    /// with ten flows ([`Scenario::random_large`]).
    RandomLarge {
        /// Node count: 200 or 500.
        nodes: usize,
    },
    /// An open-loop workload over a connected random topology
    /// ([`Scenario::open_loop`], extension): finite flows arriving from a
    /// built-in [`TrafficModel`] profile, all running the job's
    /// transport.
    Traffic {
        /// Node count of the random field.
        nodes: usize,
        /// Built-in profile name ([`TrafficModel::PROFILES`]).
        profile: &'static str,
        /// Total flow arrivals before the generator stops.
        flows: u64,
        /// Offered-load multiplier applied to the profile's arrival
        /// rates ([`TrafficModel::with_load`]), in per-mille: 1000 is
        /// the profile as-is, 500 halves the arrival rate, 2000 doubles
        /// it. Stored as an integer so the content key stays exact.
        load: u32,
    },
}

impl ScenarioKind {
    /// Canonical token, e.g. `"chain:7"`, `"random_large:200"` or
    /// `"traffic:20:web:1200"`.
    pub fn token(self) -> String {
        match self {
            ScenarioKind::Chain { hops } => format!("chain:{hops}"),
            ScenarioKind::Grid6 => "grid6".into(),
            ScenarioKind::Random10 => "random10".into(),
            ScenarioKind::RandomLarge { nodes } => format!("random_large:{nodes}"),
            ScenarioKind::Traffic {
                nodes,
                profile,
                flows,
                load,
            } => {
                // The load suffix appears only off the default, so keys
                // of pre-existing stores stay valid.
                if load == 1000 {
                    format!("traffic:{nodes}:{profile}:{flows}")
                } else {
                    format!("traffic:{nodes}:{profile}:{flows}:l{load}")
                }
            }
        }
    }
}

/// One independent simulation run of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The figure family this job belongs to (e.g. `"fig6-9"`).
    pub group: String,
    /// Human-readable grid coordinates (e.g. `"variant=Vegas hops=8"`).
    pub point: String,
    /// Topology and flow layout.
    pub kind: ScenarioKind,
    /// PHY data rate.
    pub bandwidth: DataRate,
    /// Transport protocol of every flow.
    pub transport: Transport,
    /// Root RNG seed.
    pub seed: u64,
    /// Work per run.
    pub scale: ExperimentScale,
}

/// Canonical token for a transport, e.g. `"vegas:2+thin"` or
/// `"udp:2000000"` (paced UDP with the gap in nanoseconds).
pub fn transport_token(t: &Transport) -> String {
    match t {
        Transport::Tcp {
            flavor,
            config,
            ack_policy,
        } => {
            let mut s = match flavor {
                Flavor::Vegas => format!("vegas:{}", config.alpha),
                Flavor::NewReno => "newreno".to_string(),
                Flavor::Reno => "reno".to_string(),
                Flavor::Tahoe => "tahoe".to_string(),
            };
            if config.wmax != 64 {
                s.push_str(&format!(":w{}", config.wmax));
            }
            if *ack_policy == AckPolicy::Thinning {
                s.push_str("+thin");
            }
            s
        }
        Transport::PacedUdp { gap } => format!("udp:{}", gap.as_nanos()),
    }
}

impl JobSpec {
    /// The canonical content string: every field that influences the
    /// simulation result, and nothing else (labels are excluded, so
    /// renaming a figure does not invalidate stored results).
    pub fn canonical(&self) -> String {
        format!(
            "{}|bw={}|{}|seed={}|scale={}x{}x{}",
            self.kind.token(),
            self.bandwidth.bits_per_sec(),
            transport_token(&self.transport),
            self.seed,
            self.scale.batch_packets,
            self.scale.batches,
            self.scale.deadline.as_nanos(),
        )
    }

    /// The stable content key: 16 hex digits of the Fx hash of
    /// [`canonical`](Self::canonical). Results stores are keyed by this.
    pub fn key(&self) -> String {
        format!("{:016x}", fxhash::hash_str(&self.canonical()))
    }

    /// Builds the runnable scenario this job describes.
    pub fn scenario(&self) -> Scenario {
        match self.kind {
            ScenarioKind::Chain { hops } => {
                Scenario::chain(hops, self.bandwidth, self.transport, self.seed)
            }
            ScenarioKind::Grid6 => Scenario::grid6(self.bandwidth, self.transport, self.seed),
            ScenarioKind::Random10 => Scenario::random10(self.bandwidth, self.transport, self.seed),
            ScenarioKind::RandomLarge { nodes } => {
                Scenario::random_large(nodes, self.bandwidth, self.transport, self.seed)
            }
            ScenarioKind::Traffic {
                nodes,
                profile,
                flows,
                load,
            } => {
                let mut model =
                    TrafficModel::profile(profile, flows).expect("built-in traffic profile");
                if load != 1000 {
                    model = model.with_load(f64::from(load) / 1000.0);
                }
                Scenario::open_loop(nodes, model, self.transport, self.bandwidth, self.seed)
            }
        }
    }
}

/// The pacing gap that saturates the chain at every bandwidth (matches
/// the figure drivers' `SATURATING_UDP_GAP`).
const SATURATING_UDP_GAP: SimDuration = SimDuration::from_millis(2);

fn chain_job(
    group: &str,
    point: String,
    hops: usize,
    bw: DataRate,
    transport: Transport,
    seed: u64,
    scale: ExperimentScale,
) -> JobSpec {
    JobSpec {
        group: group.to_string(),
        point,
        kind: ScenarioKind::Chain { hops },
        bandwidth: bw,
        transport,
        seed,
        scale,
    }
}

/// The quick chain study: the Figure 6–9 grid (four transport variants ×
/// chain length) at 2 Mbit/s, restricted to the short chains so a sweep
/// completes in minutes at quick scale.
pub fn chain_study(scale: ExperimentScale) -> Vec<JobSpec> {
    let variants: [(&str, Transport); 4] = [
        ("Vegas", Transport::vegas(2)),
        ("NewReno", Transport::newreno()),
        ("NewReno +thin", Transport::newreno_thinning()),
        ("Paced UDP", Transport::paced_udp(SATURATING_UDP_GAP)),
    ];
    let mut jobs = Vec::new();
    for (vi, (label, t)) in variants.into_iter().enumerate() {
        for hops in [2usize, 4, 8] {
            jobs.push(chain_job(
                "fig6-9",
                format!("variant={label} hops={hops}"),
                hops,
                DataRate::MBPS_2,
                t,
                seed_for(&[6, vi as u64, hops as u64]),
                scale,
            ));
        }
    }
    jobs
}

/// The open-loop traffic study (extension): every built-in workload
/// profile crossed with the TCP variants of interest, each over a
/// 20-node connected random field at 11 Mbit/s. The flow count scales
/// with the batch size so larger `--scale` sweeps see proportionally
/// more churn rather than truncating early.
pub fn traffic_study(scale: ExperimentScale) -> Vec<JobSpec> {
    let flows = scale.batch_packets.saturating_mul(3);
    let variants: [(&str, Transport); 3] = [
        ("NewReno", Transport::newreno()),
        ("NewReno +thin", Transport::newreno_thinning()),
        ("Vegas", Transport::vegas(2)),
    ];
    let mut jobs = Vec::new();
    for (pi, profile) in TrafficModel::PROFILES.into_iter().enumerate() {
        for (vi, (label, t)) in variants.into_iter().enumerate() {
            jobs.push(JobSpec {
                group: "traffic".to_string(),
                point: format!("profile={profile} variant={label}"),
                kind: ScenarioKind::Traffic {
                    nodes: 20,
                    profile,
                    flows,
                    load: 1000,
                },
                bandwidth: DataRate::MBPS_11,
                transport: t,
                seed: seed_for(&[30, pi as u64, vi as u64]),
                scale,
            });
        }
    }
    jobs
}

/// The FCT-vs-offered-load study (extension): the web profile under
/// NewReno, with the arrival rate swept from one quarter of to double
/// the profile's nominal load. Aggregated with `mwn report --curve`,
/// the per-load FCT percentiles trace the congestion knee that
/// open-loop workloads expose and closed-loop persistent flows cannot.
pub fn traffic_load_study(scale: ExperimentScale) -> Vec<JobSpec> {
    let flows = scale.batch_packets.saturating_mul(3);
    let mut jobs = Vec::new();
    for load in [250u32, 500, 750, 1000, 1500, 2000] {
        jobs.push(JobSpec {
            group: "load".to_string(),
            point: format!("profile=web load={:.2}x", f64::from(load) / 1000.0),
            kind: ScenarioKind::Traffic {
                nodes: 20,
                profile: "web",
                flows,
                load,
            },
            bandwidth: DataRate::MBPS_11,
            transport: Transport::newreno(),
            seed: seed_for(&[31, u64::from(load)]),
            scale,
        });
    }
    jobs
}

/// The full figure suite: every simulation run behind Figures 2–14, the
/// grid study (Figures 16–17 / Table 3) and the random study (Figures
/// 18–19 / Table 4), with the exact seeds of the figure drivers.
pub fn full_suite(scale: ExperimentScale) -> Vec<JobSpec> {
    let mut jobs = Vec::new();

    // Figures 2–3: Vegas α sweep over chain length at 2 Mbit/s.
    for alpha in [2u32, 3, 4] {
        for hops in PAPER_HOPS {
            jobs.push(chain_job(
                "fig2-3",
                format!("alpha={alpha} hops={hops}"),
                hops,
                DataRate::MBPS_2,
                Transport::vegas(alpha),
                seed_for(&[23, u64::from(alpha), hops as u64]),
                scale,
            ));
        }
    }

    // Figure 4: Vegas α per bandwidth on the 7-hop chain.
    for alpha in [2u32, 3, 4] {
        for bw in PAPER_BANDWIDTHS {
            jobs.push(chain_job(
                "fig4",
                format!("alpha={alpha} bw={bw}"),
                7,
                bw,
                Transport::vegas(alpha),
                seed_for(&[4, u64::from(alpha), bw.bits_per_sec()]),
                scale,
            ));
        }
    }

    // Figure 5: Vegas with ACK thinning vs plain Vegas.
    let fig5: [(&str, Transport); 4] = [
        ("Vegas a=2", Transport::vegas(2)),
        ("Vegas a=2 +thin", Transport::vegas_thinning(2)),
        ("Vegas a=3 +thin", Transport::vegas_thinning(3)),
        ("Vegas a=4 +thin", Transport::vegas_thinning(4)),
    ];
    for (vi, (label, t)) in fig5.into_iter().enumerate() {
        for hops in PAPER_HOPS {
            jobs.push(chain_job(
                "fig5",
                format!("variant={label} hops={hops}"),
                hops,
                DataRate::MBPS_2,
                t,
                seed_for(&[5, vi as u64, hops as u64]),
                scale,
            ));
        }
    }

    // Figures 6–9: the main chain comparison.
    let fig6: [(&str, Transport); 4] = [
        ("Vegas", Transport::vegas(2)),
        ("NewReno", Transport::newreno()),
        ("NewReno +thin", Transport::newreno_thinning()),
        ("Paced UDP", Transport::paced_udp(SATURATING_UDP_GAP)),
    ];
    for (vi, (label, t)) in fig6.into_iter().enumerate() {
        for hops in PAPER_HOPS {
            jobs.push(chain_job(
                "fig6-9",
                format!("variant={label} hops={hops}"),
                hops,
                DataRate::MBPS_2,
                t,
                seed_for(&[6, vi as u64, hops as u64]),
                scale,
            ));
        }
    }

    // Figure 10: paced-UDP inter-sending-time sweep on the 7-hop chain.
    for gap_ms in (20..=44u64).step_by(2) {
        jobs.push(chain_job(
            "fig10",
            format!("gap={gap_ms}ms"),
            7,
            DataRate::MBPS_2,
            Transport::paced_udp(SimDuration::from_millis(gap_ms)),
            seed_for(&[10, gap_ms]),
            scale,
        ));
    }

    // Figures 11–14: the 7-hop chain across bandwidths.
    let fig11: [(&str, Transport); 6] = [
        ("Vegas", Transport::vegas(2)),
        ("NewReno", Transport::newreno()),
        ("Vegas +thin", Transport::vegas_thinning(2)),
        ("NewReno +thin", Transport::newreno_thinning()),
        ("NewReno OptWin", Transport::newreno_optimal_window(3)),
        ("Paced UDP", Transport::paced_udp(SATURATING_UDP_GAP)),
    ];
    for (vi, (label, t)) in fig11.into_iter().enumerate() {
        for bw in PAPER_BANDWIDTHS {
            jobs.push(chain_job(
                "fig11-14",
                format!("variant={label} bw={bw}"),
                7,
                bw,
                t,
                seed_for(&[11, vi as u64, bw.bits_per_sec()]),
                scale,
            ));
        }
    }

    // Grid and random multi-flow studies. The topology/flow seed is
    // shared across variants (paired comparison), so distinct variants at
    // one bandwidth are distinct jobs with the *same* seed.
    let multiflow: [(&str, Transport); 4] = [
        ("Vegas", Transport::vegas(2)),
        ("NewReno", Transport::newreno()),
        ("Vegas +thin", Transport::vegas_thinning(2)),
        ("NewReno +thin", Transport::newreno_thinning()),
    ];
    for (group, kind, fig_seed) in [
        ("fig16-17", ScenarioKind::Grid6, 16u64),
        ("fig18-19", ScenarioKind::Random10, 18),
    ] {
        for (label, t) in multiflow {
            for bw in PAPER_BANDWIDTHS {
                jobs.push(JobSpec {
                    group: group.to_string(),
                    point: format!("variant={label} bw={bw}"),
                    kind,
                    bandwidth: bw,
                    transport: t,
                    seed: seed_for(&[fig_seed, bw.bits_per_sec()]),
                    scale,
                });
            }
        }
    }

    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            batch_packets: 60,
            batches: 3,
            deadline: SimDuration::from_secs(600),
        }
    }

    #[test]
    fn keys_are_stable_and_label_independent() {
        let mut a = chain_study(tiny()).remove(0);
        let b = a.clone();
        assert_eq!(a.key(), b.key());
        // Labels do not participate in the key.
        a.group = "renamed".into();
        a.point = "other".into();
        assert_eq!(a.key(), b.key());
        // Every result-affecting field does.
        let mut c = b.clone();
        c.seed ^= 1;
        assert_ne!(c.key(), b.key());
        let mut d = b.clone();
        d.scale.batch_packets += 1;
        assert_ne!(d.key(), b.key());
    }

    #[test]
    fn suite_keys_are_distinct() {
        let jobs = full_suite(ExperimentScale::quick());
        let mut keys: Vec<String> = jobs.iter().map(JobSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len(), "content-key collision in the suite");
    }

    #[test]
    fn full_suite_matches_figure_grid_size() {
        let jobs = full_suite(ExperimentScale::quick());
        // fig2-3: 3×6, fig4: 3×3, fig5: 4×6, fig6-9: 4×6, fig10: 13,
        // fig11-14: 6×3, grid: 4×3, random: 4×3.
        assert_eq!(jobs.len(), 18 + 9 + 24 + 24 + 13 + 18 + 12 + 12);
    }

    #[test]
    fn chain_study_is_a_subset_of_the_full_suite() {
        let suite: Vec<String> = full_suite(ExperimentScale::quick())
            .iter()
            .map(JobSpec::key)
            .collect();
        for job in chain_study(ExperimentScale::quick()) {
            assert!(
                suite.contains(&job.key()),
                "{} missing from suite",
                job.canonical()
            );
        }
    }

    #[test]
    fn transport_tokens_discriminate_variants() {
        let tokens: Vec<String> = [
            Transport::vegas(2),
            Transport::vegas_thinning(2),
            Transport::newreno(),
            Transport::newreno_thinning(),
            Transport::reno(),
            Transport::tahoe(),
            Transport::newreno_optimal_window(3),
            Transport::paced_udp(SimDuration::from_millis(2)),
        ]
        .iter()
        .map(transport_token)
        .collect();
        let mut dedup = tokens.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            tokens.len(),
            "ambiguous transport tokens: {tokens:?}"
        );
        assert_eq!(tokens[0], "vegas:2");
        assert_eq!(tokens[1], "vegas:2+thin");
        assert_eq!(tokens[6], "newreno:w3");
        assert_eq!(tokens[7], "udp:2000000");
    }

    #[test]
    fn random_large_jobs_have_distinct_tokens_and_build() {
        let job = JobSpec {
            group: "large".into(),
            point: "nodes=200".into(),
            kind: ScenarioKind::RandomLarge { nodes: 200 },
            bandwidth: DataRate::MBPS_2,
            transport: Transport::newreno(),
            seed: 9,
            scale: tiny(),
        };
        assert_eq!(job.kind.token(), "random_large:200");
        let mut other = job.clone();
        other.kind = ScenarioKind::RandomLarge { nodes: 500 };
        assert_ne!(job.key(), other.key());
        let s = job.scenario();
        assert_eq!(s.topology.len(), 200);
        let _ = s.build();
    }

    #[test]
    fn traffic_study_jobs_are_distinct_and_build() {
        let jobs = traffic_study(tiny());
        // profiles × variants.
        assert_eq!(jobs.len(), 9);
        let mut keys: Vec<String> = jobs.iter().map(JobSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 9, "content-key collision in traffic study");
        let job = &jobs[0];
        assert_eq!(job.kind.token(), "traffic:20:web:180");
        let s = job.scenario();
        assert_eq!(s.topology.len(), 20);
        assert!(
            s.flows.is_empty(),
            "open-loop jobs have no persistent flows"
        );
        let spec = s.traffic.as_ref().expect("traffic spec attached");
        assert_eq!(spec.model.max_flows, 180);
        assert_eq!(spec.transport, job.transport);
        let _ = s.build();
    }

    #[test]
    fn traffic_kind_participates_in_the_content_key() {
        let base = traffic_study(tiny()).remove(0);
        let mut other = base.clone();
        other.kind = ScenarioKind::Traffic {
            nodes: 20,
            profile: "web",
            flows: 181,
            load: 1000,
        };
        assert_ne!(base.key(), other.key());
        let mut renamed = base.clone();
        renamed.kind = ScenarioKind::Traffic {
            nodes: 20,
            profile: "heavy",
            flows: 180,
            load: 1000,
        };
        assert_ne!(base.key(), renamed.key());
        // Off-nominal load changes both the token and the key; nominal
        // load keeps the historical token so stored keys stay valid.
        let mut loaded = base.clone();
        loaded.kind = ScenarioKind::Traffic {
            nodes: 20,
            profile: "web",
            flows: 180,
            load: 1500,
        };
        assert_eq!(loaded.kind.token(), "traffic:20:web:180:l1500");
        assert_ne!(base.key(), loaded.key());
    }

    #[test]
    fn load_study_jobs_are_distinct_and_scale_arrivals() {
        let jobs = traffic_load_study(tiny());
        assert_eq!(jobs.len(), 6);
        let mut keys: Vec<String> = jobs.iter().map(JobSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6, "content-key collision in load study");
        for job in &jobs {
            let _ = job.scenario().build();
        }
        // The swept factor really reaches the model's arrival rates.
        let rate = |j: &JobSpec| match j.scenario().traffic.unwrap().model.classes[0].arrival {
            mwn_traffic::Arrival::Poisson { rate_fps } => rate_fps,
            _ => panic!("web profile arrives Poisson"),
        };
        assert!(rate(&jobs[5]) > rate(&jobs[0]) * 7.0);
    }

    #[test]
    fn scenario_roundtrip_builds() {
        for job in chain_study(tiny()) {
            let s = job.scenario();
            assert_eq!(s.seed, job.seed);
            assert_eq!(s.bandwidth, job.bandwidth);
            let _ = s.build();
        }
    }
}
