//! Node mobility: the random-waypoint model.
//!
//! The paper studies *static* networks and defers mobility to the ELFN
//! (Holland & Vaidya) and DOOR (Wang & Zhang) lines of work it cites. This
//! module provides the standard random-waypoint model those papers
//! evaluate on, enabling the mobility + ELFN extension study
//! ([`crate::experiments::extension_mobility_elfn`]).

use mwn_phy::Position;
use mwn_sim::{Pcg32, SimDuration};

/// Random-waypoint parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Field width (m).
    pub width: f64,
    /// Field height (m).
    pub height: f64,
    /// Minimum node speed (m/s); kept above zero to avoid the classic
    /// "speed decay to zero" pathology of the model.
    pub min_speed: f64,
    /// Maximum node speed (m/s).
    pub max_speed: f64,
    /// Pause at each waypoint.
    pub pause: SimDuration,
    /// How often positions are re-evaluated and the medium recomputed.
    pub tick: SimDuration,
}

impl RandomWaypoint {
    /// A typical ad hoc evaluation setup: 1500 × 300 m strip, 1–`speed`
    /// m/s, the given pause time, 100 ms position ticks.
    pub fn strip(speed: f64, pause: SimDuration) -> Self {
        RandomWaypoint {
            width: 1500.0,
            height: 300.0,
            min_speed: 1.0,
            max_speed: speed.max(1.0),
            pause,
            tick: SimDuration::from_millis(100),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Moving toward the waypoint.
    Moving { target: Position, speed: f64 },
    /// Paused at a waypoint; remaining pause in seconds.
    Paused { remaining: f64 },
}

/// The evolving positions of all nodes under random waypoint.
///
/// Every node draws its waypoints and speeds from its own forked RNG
/// stream, so each trajectory is a pure function of (seed, node index)
/// alone. In particular the *tick* is purely a sampling rate: two models
/// that subdivide the same total time differently visit the same
/// waypoint sequence at the same speeds (see the tick-subdivision test).
#[derive(Debug, Clone)]
pub struct MobilityModel {
    params: RandomWaypoint,
    /// One independent stream per node, forked from the root at
    /// construction.
    rngs: Vec<Pcg32>,
    positions: Vec<Position>,
    phases: Vec<Phase>,
}

impl MobilityModel {
    /// Starts the model from the given initial positions.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate (non-positive field,
    /// speeds, or tick).
    pub fn new(params: RandomWaypoint, initial: Vec<Position>, mut rng: Pcg32) -> Self {
        assert!(
            params.width > 0.0 && params.height > 0.0,
            "field must be positive"
        );
        assert!(
            params.min_speed > 0.0 && params.max_speed >= params.min_speed,
            "need 0 < min_speed <= max_speed"
        );
        assert!(!params.tick.is_zero(), "tick must be positive");
        let mut rngs: Vec<Pcg32> = initial.iter().map(|_| rng.fork()).collect();
        let phases = rngs
            .iter_mut()
            .map(|rng| {
                let target = Position::new(
                    rng.gen_range_f64(0.0, params.width),
                    rng.gen_range_f64(0.0, params.height),
                );
                let speed = rng.gen_range_f64(params.min_speed, params.max_speed);
                Phase::Moving { target, speed }
            })
            .collect();
        MobilityModel {
            params,
            rngs,
            positions: initial,
            phases,
        }
    }

    /// Current positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// The reposition interval.
    pub fn tick(&self) -> SimDuration {
        self.params.tick
    }

    /// Advances every node by one tick and returns the new positions.
    pub fn step(&mut self) -> &[Position] {
        let dt = self.params.tick.as_secs_f64();
        for i in 0..self.positions.len() {
            self.advance(i, dt);
        }
        &self.positions
    }

    fn advance(&mut self, i: usize, mut dt: f64) {
        while dt > 0.0 {
            match self.phases[i] {
                Phase::Paused { remaining } => {
                    if remaining > dt {
                        self.phases[i] = Phase::Paused {
                            remaining: remaining - dt,
                        };
                        return;
                    }
                    dt -= remaining;
                    let target = Position::new(
                        self.rngs[i].gen_range_f64(0.0, self.params.width),
                        self.rngs[i].gen_range_f64(0.0, self.params.height),
                    );
                    let speed =
                        self.rngs[i].gen_range_f64(self.params.min_speed, self.params.max_speed);
                    self.phases[i] = Phase::Moving { target, speed };
                }
                Phase::Moving { target, speed } => {
                    let here = self.positions[i];
                    let dist = here.distance_to(target);
                    let reach = speed * dt;
                    if reach < dist {
                        let f = reach / dist;
                        self.positions[i] = Position::new(
                            here.x + (target.x - here.x) * f,
                            here.y + (target.y - here.y) * f,
                        );
                        return;
                    }
                    // Arrive and pause; the constructor guarantees
                    // speed > 0, so the travel time is well-defined.
                    self.positions[i] = target;
                    dt -= dist / speed;
                    self.phases[i] = Phase::Paused {
                        remaining: self.params.pause.as_secs_f64(),
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(pause_ms: u64) -> MobilityModel {
        let params = RandomWaypoint {
            width: 1000.0,
            height: 500.0,
            min_speed: 5.0,
            max_speed: 20.0,
            pause: SimDuration::from_millis(pause_ms),
            tick: SimDuration::from_millis(100),
        };
        let initial = (0..10)
            .map(|i| Position::new(100.0 * f64::from(i), 250.0))
            .collect();
        MobilityModel::new(params, initial, Pcg32::new(7))
    }

    #[test]
    fn nodes_move_and_stay_in_bounds() {
        let mut m = model(0);
        let before = m.positions().to_vec();
        for _ in 0..600 {
            m.step();
        }
        let after = m.positions();
        let moved = before
            .iter()
            .zip(after)
            .filter(|(b, a)| b.distance_to(**a) > 1.0)
            .count();
        assert!(
            moved >= 9,
            "almost every node must have moved, only {moved} did"
        );
        for p in after {
            assert!((0.0..=1000.0).contains(&p.x) && (0.0..=500.0).contains(&p.y));
        }
    }

    #[test]
    fn speed_respects_bounds() {
        let mut m = model(0);
        let mut prev = m.positions().to_vec();
        for _ in 0..200 {
            let next = m.step().to_vec();
            for (a, b) in prev.iter().zip(&next) {
                let v = a.distance_to(*b) / 0.1;
                // A node may arrive and re-depart mid-tick, so allow a
                // small overshoot of the nominal top speed.
                assert!(v <= 20.0 * 1.5 + 1e-9, "speed {v} m/s out of range");
            }
            prev = next;
        }
    }

    #[test]
    fn pause_holds_position_after_arrival() {
        // Huge pause: once a node arrives, it never moves again within
        // the test horizon.
        let mut m = model(1_000_000);
        let mut arrived_at: Vec<Option<Position>> = vec![None; 10];
        for _ in 0..3000 {
            let prev = m.positions().to_vec();
            let next = m.step();
            for i in 0..10 {
                if let Some(p) = arrived_at[i] {
                    assert!(p.distance_to(next[i]) < 1e-9, "paused node {i} moved");
                } else if prev[i].distance_to(next[i]) < 1e-12 {
                    arrived_at[i] = Some(next[i]);
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = model(0);
        let mut b = model(0);
        for _ in 0..100 {
            assert_eq!(a.step().to_vec(), b.step());
        }
    }

    /// The tick is a sampling rate, not part of the model: two models
    /// differing only in tick subdivision visit bit-identical waypoint
    /// sequences (per-node RNG streams make the draw order independent
    /// of when other nodes arrive) and agree on positions at every
    /// common time up to floating-point interpolation error.
    #[test]
    fn waypoint_sequences_agree_across_tick_subdivisions() {
        let mk = |tick_ms: u64| {
            let params = RandomWaypoint {
                width: 1000.0,
                height: 500.0,
                min_speed: 5.0,
                max_speed: 20.0,
                pause: SimDuration::from_millis(300),
                tick: SimDuration::from_millis(tick_ms),
            };
            let initial = (0..8)
                .map(|i| Position::new(100.0 * f64::from(i), 250.0))
                .collect();
            MobilityModel::new(params, initial, Pcg32::new(42))
        };
        let mut coarse = mk(100);
        let mut fine = mk(20);
        for step in 0..600 {
            coarse.step();
            for _ in 0..5 {
                fine.step();
            }
            for i in 0..8 {
                let (a, b) = (coarse.positions()[i], fine.positions()[i]);
                assert!(
                    a.distance_to(b) < 1e-6,
                    "node {i} diverged at step {step}: {a} vs {b}"
                );
                match (coarse.phases[i], fine.phases[i]) {
                    (
                        Phase::Moving {
                            target: ta,
                            speed: sa,
                        },
                        Phase::Moving {
                            target: tb,
                            speed: sb,
                        },
                    ) => {
                        assert_eq!(ta, tb, "node {i} waypoint diverged at step {step}");
                        assert_eq!(sa, sb, "node {i} speed diverged at step {step}");
                    }
                    (Phase::Paused { remaining: ra }, Phase::Paused { remaining: rb }) => {
                        assert!(
                            (ra - rb).abs() < 1e-9,
                            "node {i} pause diverged at step {step}"
                        );
                    }
                    (a, b) => panic!("node {i} phase diverged at step {step}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
