//! One driver per figure and table of the paper's evaluation (Section 4).
//!
//! Each function runs the exact workload of the corresponding figure/table
//! and returns printable [`FigureData`]/[`TableData`]. Figures that the
//! paper derives from the *same* simulation runs (e.g. Figures 6–9) are
//! produced together so the runs are not repeated.
//!
//! Scale: pass [`ExperimentScale::from_env`] to honor `MWN_SCALE`
//! (`MWN_SCALE=25` reproduces the paper's 11 × 10 000-packet runs).

use mwn_phy::DataRate;
use mwn_sim::stats::Estimate;
use mwn_sim::{SimDuration, SimTime};

use crate::experiment::{self, ExperimentScale, RunResults};
use crate::scenario::{Scenario, Transport};

/// The paper's chain lengths (hops), log-spaced as on the figures' x-axes.
pub const PAPER_HOPS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// The paper's bandwidths.
pub const PAPER_BANDWIDTHS: [DataRate; 3] =
    [DataRate::MBPS_2, DataRate::MBPS_5_5, DataRate::MBPS_11];

/// A pacing gap that saturates the chain at every bandwidth; the resulting
/// goodput is the plateau (optimal) paced-UDP goodput.
const SATURATING_UDP_GAP: SimDuration = SimDuration::from_millis(2);

/// One curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y ± CI)` points.
    pub points: Vec<(f64, Estimate)>,
}

/// The data behind one figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Paper figure id, e.g. `"Fig 6"`.
    pub id: String,
    /// Title as in the paper.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

/// The data behind one table.
#[derive(Debug, Clone)]
pub struct TableData {
    /// Paper table id, e.g. `"Table 3"`.
    pub id: String,
    /// Title as in the paper.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl FigureData {
    /// Renders the figure as an aligned text table (one row per x value).
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {} [{}]\n", self.id, self.title, self.y_label);
        let width = 22usize;
        out.push_str(&format!("{:>10}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("{:>width$}", s.label));
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{x:>10}"));
            for s in &self.series {
                match s.points.get(i) {
                    Some((_, e)) => {
                        out.push_str(&format!("{:>width$}", format_estimate(e)));
                    }
                    None => out.push_str(&format!("{:>width$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as CSV (`x,series1,series1_ci,...`), ready for
    /// external plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(' ', "_"));
        for s in &self.series {
            let name = s.label.replace(' ', "_").replace(',', ";");
            out.push_str(&format!(",{name},{name}_ci95"));
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                match s.points.get(i) {
                    Some((_, e)) => out.push_str(&format!(",{},{}", e.mean, e.half_width)),
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("*y: {}*\n\n", self.y_label));
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                match s.points.get(i) {
                    Some((_, e)) => out.push_str(&format!(" {} |", format_estimate(e))),
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }
}

impl TableData {
    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n", self.id, self.title);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map_or(0, String::len))
                    .chain([h.len()])
                    .max()
                    .unwrap_or(8)
                    + 2
            })
            .collect();
        for (h, w) in self.headers.iter().zip(&widths) {
            out.push_str(&format!("{h:>w$}"));
        }
        out.push('\n');
        for row in &self.rows {
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!("{c:>w$}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        let headers: Vec<&str> = self
            .headers
            .iter()
            .map(|h| if h.is_empty() { " " } else { h.as_str() })
            .collect();
        out.push_str(&format!("| {} |\n", headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

fn format_estimate(e: &Estimate) -> String {
    if e.mean == 0.0 && e.half_width == 0.0 {
        "0".to_string()
    } else if e.mean.abs() >= 100.0 {
        format!("{:.1} ±{:.1}", e.mean, e.half_width)
    } else if e.mean.abs() >= 1.0 {
        format!("{:.2} ±{:.2}", e.mean, e.half_width)
    } else {
        format!("{:.4} ±{:.4}", e.mean, e.half_width)
    }
}

/// Deterministic seed for a (figure, series, point) triple.
///
/// Public so that [`crate::jobs`] enumerates the sweep grid with the
/// *identical* seeds these figure drivers use — a sweep result and the
/// corresponding figure point come from the same simulation run.
pub fn seed_for(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h ^= p.wrapping_add(0x517C_C1B7_2722_0A95);
        h = h.rotate_left(23).wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    h
}

fn bw_mbit(bw: DataRate) -> f64 {
    bw.bits_per_sec() as f64 / 1e6
}

fn chain_run(
    hops: usize,
    bw: DataRate,
    transport: Transport,
    seed: u64,
    scale: ExperimentScale,
) -> RunResults {
    experiment::run(&Scenario::chain(hops, bw, transport, seed), scale)
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// Table 2: the minimal 4-hop link-layer propagation delay per bandwidth,
/// measured in-simulator by timing one isolated packet over a warm route
/// (paper values: 29 / 12 / 8 ms for 2 / 5.5 / 11 Mbit/s).
pub fn table2() -> TableData {
    let mut cells = Vec::new();
    for bw in PAPER_BANDWIDTHS {
        let gap = SimDuration::from_secs(1);
        let s = Scenario::chain(
            4,
            bw,
            Transport::paced_udp(gap),
            seed_for(&[2, bw.bits_per_sec()]),
        );
        let mut net = s.build();
        // Warm the route with packet 0, then time packet 2.
        net.run_until_delivered(3, SimTime::ZERO + SimDuration::from_secs(30));
        let delivered_at = net
            .flow_last_delivery(mwn_pkt::FlowId(0))
            .expect("4-hop chain must deliver 3 packets");
        let sent_at = SimTime::ZERO + gap * 2;
        let delay = delivered_at.duration_since(sent_at);
        cells.push(format!("{:.1} ms", delay.as_nanos() as f64 / 1e6));
    }
    TableData {
        id: "Table 2".into(),
        title: "4-hop propagation delay for different bandwidths".into(),
        headers: vec![
            "".into(),
            "2 Mbit/s".into(),
            "5.5 Mbit/s".into(),
            "11 Mbit/s".into(),
        ],
        rows: vec![{
            let mut row = vec!["measured".to_string()];
            row.extend(cells);
            row
        }],
    }
}

// ---------------------------------------------------------------------
// Figures 2–3: Vegas α sweep over chain length
// ---------------------------------------------------------------------

/// Figures 2 and 3: TCP Vegas with α ∈ {2, 3, 4} on the h-hop chain at
/// 2 Mbit/s — goodput (Fig 2) and average window size (Fig 3) vs hops.
pub fn figs_2_3(scale: ExperimentScale) -> (FigureData, FigureData) {
    let mut goodput = Vec::new();
    let mut window = Vec::new();
    for alpha in [2u32, 3, 4] {
        let mut gp = Series {
            label: format!("Vegas a={alpha}"),
            points: Vec::new(),
        };
        let mut win = Series {
            label: format!("Vegas a={alpha}"),
            points: Vec::new(),
        };
        for hops in PAPER_HOPS {
            let r = chain_run(
                hops,
                DataRate::MBPS_2,
                Transport::vegas(alpha),
                seed_for(&[23, u64::from(alpha), hops as u64]),
                scale,
            );
            gp.points.push((hops as f64, r.aggregate_goodput_kbps));
            win.points.push((hops as f64, r.per_flow[0].avg_window));
        }
        goodput.push(gp);
        window.push(win);
    }
    (
        FigureData {
            id: "Fig 2".into(),
            title: "h-hop chain with 2 Mbit/s: TCP Vegas goodput vs number of hops".into(),
            x_label: "hops".into(),
            y_label: "goodput [kbit/s]".into(),
            series: goodput,
        },
        FigureData {
            id: "Fig 3".into(),
            title: "h-hop chain with 2 Mbit/s: TCP Vegas average window size vs number of hops"
                .into(),
            x_label: "hops".into(),
            y_label: "window [packets]".into(),
            series: window,
        },
    )
}

/// Figure 4: 7-hop chain, TCP Vegas goodput for α ∈ {2, 3, 4} at each
/// bandwidth.
pub fn fig4(scale: ExperimentScale) -> FigureData {
    let mut series = Vec::new();
    for alpha in [2u32, 3, 4] {
        let mut s = Series {
            label: format!("Vegas a={alpha}"),
            points: Vec::new(),
        };
        for bw in PAPER_BANDWIDTHS {
            let r = chain_run(
                7,
                bw,
                Transport::vegas(alpha),
                seed_for(&[4, u64::from(alpha), bw.bits_per_sec()]),
                scale,
            );
            s.points.push((bw_mbit(bw), r.aggregate_goodput_kbps));
        }
        series.push(s);
    }
    FigureData {
        id: "Fig 4".into(),
        title: "7-hop chain: TCP Vegas goodput for different bandwidths".into(),
        x_label: "Mbit/s".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

/// Figure 5: Vegas with ACK thinning for α ∈ {2, 3, 4}, against plain
/// Vegas α = 2, on the 2 Mbit/s chain.
pub fn fig5(scale: ExperimentScale) -> FigureData {
    let variants: Vec<(String, Transport)> = vec![
        ("Vegas a=2".into(), Transport::vegas(2)),
        ("Vegas a=2 +thin".into(), Transport::vegas_thinning(2)),
        ("Vegas a=3 +thin".into(), Transport::vegas_thinning(3)),
        ("Vegas a=4 +thin".into(), Transport::vegas_thinning(4)),
    ];
    let mut series = Vec::new();
    for (vi, (label, t)) in variants.into_iter().enumerate() {
        let mut s = Series {
            label,
            points: Vec::new(),
        };
        for hops in PAPER_HOPS {
            let r = chain_run(
                hops,
                DataRate::MBPS_2,
                t,
                seed_for(&[5, vi as u64, hops as u64]),
                scale,
            );
            s.points.push((hops as f64, r.aggregate_goodput_kbps));
        }
        series.push(s);
    }
    FigureData {
        id: "Fig 5".into(),
        title: "h-hop chain with 2 Mbit/s: TCP Vegas with ACK thinning: goodput vs hops".into(),
        x_label: "hops".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

// ---------------------------------------------------------------------
// Figures 6–9: the main chain comparison
// ---------------------------------------------------------------------

/// Figures 6–9 (one set of runs): goodput, transport retransmissions,
/// average window and false route failures vs chain length at 2 Mbit/s,
/// for Vegas, NewReno, NewReno + ACK thinning and paced UDP.
pub fn figs_6_to_9(scale: ExperimentScale) -> [FigureData; 4] {
    let variants: Vec<(String, Transport, bool)> = vec![
        ("Vegas".into(), Transport::vegas(2), true),
        ("NewReno".into(), Transport::newreno(), true),
        ("NewReno +thin".into(), Transport::newreno_thinning(), true),
        (
            "Paced UDP".into(),
            Transport::paced_udp(SATURATING_UDP_GAP),
            false,
        ),
    ];
    let mut goodput = Vec::new();
    let mut retx = Vec::new();
    let mut window = Vec::new();
    let mut frf = Vec::new();
    for (vi, (label, t, is_tcp)) in variants.into_iter().enumerate() {
        let mut gp = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        let mut rx = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        let mut win = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        let mut ff = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        for hops in PAPER_HOPS {
            let r = chain_run(
                hops,
                DataRate::MBPS_2,
                t,
                seed_for(&[6, vi as u64, hops as u64]),
                scale,
            );
            gp.points.push((hops as f64, r.aggregate_goodput_kbps));
            if is_tcp {
                rx.points.push((hops as f64, r.per_flow[0].retx_per_packet));
                win.points.push((hops as f64, r.per_flow[0].avg_window));
            }
            ff.points.push((
                hops as f64,
                Estimate {
                    mean: r.false_route_failures_paper_scale,
                    half_width: 0.0,
                },
            ));
        }
        goodput.push(gp);
        if is_tcp {
            retx.push(rx);
            window.push(win);
        }
        frf.push(ff);
    }
    [
        FigureData {
            id: "Fig 6".into(),
            title: "h-hop chain with 2 Mbit/s: goodput vs number of hops".into(),
            x_label: "hops".into(),
            y_label: "goodput [kbit/s]".into(),
            series: goodput,
        },
        FigureData {
            id: "Fig 7".into(),
            title: "h-hop chain with 2 Mbit/s: retransmissions vs number of hops".into(),
            x_label: "hops".into(),
            y_label: "retransmissions per delivered packet".into(),
            series: retx,
        },
        FigureData {
            id: "Fig 8".into(),
            title: "h-hop chain with 2 Mbit/s: window size vs number of hops".into(),
            x_label: "hops".into(),
            y_label: "window [packets]".into(),
            series: window,
        },
        FigureData {
            id: "Fig 9".into(),
            title: "h-hop chain with 2 Mbit/s: false route failures vs number of hops \
                    (normalized to the paper's 110k-packet run length)"
                .into(),
            x_label: "hops".into(),
            y_label: "false route failures".into(),
            series: frf,
        },
    ]
}

/// Figure 10: paced-UDP goodput on the 7-hop 2 Mbit/s chain vs the time
/// between successive packet transmissions (paper optimum ≈ 35.7 ms).
pub fn fig10(scale: ExperimentScale) -> FigureData {
    let mut s = Series {
        label: "Paced UDP".into(),
        points: Vec::new(),
    };
    for gap_ms in (20..=44u64).step_by(2) {
        let gap = SimDuration::from_millis(gap_ms);
        let r = experiment::run(
            &Scenario::chain(
                7,
                DataRate::MBPS_2,
                Transport::paced_udp(gap),
                seed_for(&[10, gap_ms]),
            ),
            scale,
        );
        s.points.push((gap_ms as f64, r.aggregate_goodput_kbps));
    }
    FigureData {
        id: "Fig 10".into(),
        title: "7-hop chain with 2 Mbit/s: goodput vs packet inter-sending time".into(),
        x_label: "t [ms]".into(),
        y_label: "goodput [kbit/s]".into(),
        series: vec![s],
    }
}

// ---------------------------------------------------------------------
// Figures 11–14: 7-hop chain across bandwidths
// ---------------------------------------------------------------------

/// The six variants of Figures 11–14, in the paper's legend order.
fn bandwidth_variants() -> Vec<(String, Transport, bool)> {
    vec![
        ("Vegas".into(), Transport::vegas(2), true),
        ("NewReno".into(), Transport::newreno(), true),
        ("Vegas +thin".into(), Transport::vegas_thinning(2), true),
        ("NewReno +thin".into(), Transport::newreno_thinning(), true),
        (
            "NewReno OptWin".into(),
            Transport::newreno_optimal_window(3),
            true,
        ),
        (
            "Paced UDP".into(),
            Transport::paced_udp(SATURATING_UDP_GAP),
            false,
        ),
    ]
}

/// Figures 11–14 (one set of runs): goodput, retransmissions, window and
/// link-layer dropping probability on the 7-hop chain at 2/5.5/11 Mbit/s.
pub fn figs_11_to_14(scale: ExperimentScale) -> [FigureData; 4] {
    let mut goodput = Vec::new();
    let mut retx = Vec::new();
    let mut window = Vec::new();
    let mut drops = Vec::new();
    for (vi, (label, t, is_tcp)) in bandwidth_variants().into_iter().enumerate() {
        let mut gp = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        let mut rx = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        let mut win = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        let mut dr = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        for bw in PAPER_BANDWIDTHS {
            let r = chain_run(
                7,
                bw,
                t,
                seed_for(&[11, vi as u64, bw.bits_per_sec()]),
                scale,
            );
            gp.points.push((bw_mbit(bw), r.aggregate_goodput_kbps));
            if is_tcp {
                rx.points.push((bw_mbit(bw), r.per_flow[0].retx_per_packet));
                win.points.push((bw_mbit(bw), r.per_flow[0].avg_window));
            }
            dr.points.push((bw_mbit(bw), r.drop_probability));
        }
        goodput.push(gp);
        if is_tcp {
            retx.push(rx);
            window.push(win);
        }
        drops.push(dr);
    }
    [
        FigureData {
            id: "Fig 11".into(),
            title: "7-hop chain: goodput for different bandwidths".into(),
            x_label: "Mbit/s".into(),
            y_label: "goodput [kbit/s]".into(),
            series: goodput,
        },
        FigureData {
            id: "Fig 12".into(),
            title: "7-hop chain: retransmissions for different bandwidths".into(),
            x_label: "Mbit/s".into(),
            y_label: "retransmissions per delivered packet".into(),
            series: retx,
        },
        FigureData {
            id: "Fig 13".into(),
            title: "7-hop chain: window size for different bandwidths".into(),
            x_label: "Mbit/s".into(),
            y_label: "window [packets]".into(),
            series: window,
        },
        FigureData {
            id: "Fig 14".into(),
            title: "7-hop chain: packet dropping probability at link layer".into(),
            x_label: "Mbit/s".into(),
            y_label: "drop probability".into(),
            series: drops,
        },
    ]
}

// ---------------------------------------------------------------------
// Grid topology: Figures 16–17, Table 3
// ---------------------------------------------------------------------

/// The four multi-flow variants of the grid/random studies.
fn multiflow_variants() -> Vec<(String, Transport)> {
    vec![
        ("Vegas".into(), Transport::vegas(2)),
        ("NewReno".into(), Transport::newreno()),
        ("Vegas +thin".into(), Transport::vegas_thinning(2)),
        ("NewReno +thin".into(), Transport::newreno_thinning()),
    ]
}

fn fairness_cell(e: &Estimate) -> String {
    format!("{:.2} [{:.2} : {:.2}]", e.mean, e.lo(), e.hi())
}

/// Figures 16–17 and Table 3 (one set of runs): the 21-node grid with six
/// competing flows — aggregate goodput per bandwidth, per-flow goodput at
/// 11 Mbit/s, and Jain's fairness index.
pub fn grid_study(scale: ExperimentScale) -> (FigureData, FigureData, TableData) {
    multiflow_study(
        scale,
        16,
        Scenario::grid6,
        (
            "Fig 16",
            "Grid topology: aggregate goodput for different bandwidths",
        ),
        ("Fig 17", "Grid topology: per-flow goodput at 11 Mbit/s"),
        ("Table 3", "Grid topology: Jain's fairness index"),
    )
}

/// Figures 18–19 and Table 4 (one set of runs): the 120-node random
/// topology with ten concurrent flows.
pub fn random_study(scale: ExperimentScale) -> (FigureData, FigureData, TableData) {
    multiflow_study(
        scale,
        18,
        Scenario::random10,
        (
            "Fig 18",
            "Random topology: aggregate goodput for different bandwidths",
        ),
        ("Fig 19", "Random topology: per-flow goodput at 11 Mbit/s"),
        ("Table 4", "Random topology: Jain's fairness index"),
    )
}

fn multiflow_study(
    scale: ExperimentScale,
    fig_seed: u64,
    build: impl Fn(DataRate, Transport, u64) -> Scenario,
    agg_meta: (&str, &str),
    flow_meta: (&str, &str),
    table_meta: (&str, &str),
) -> (FigureData, FigureData, TableData) {
    let mut agg_series = Vec::new();
    let mut flow_series = Vec::new();
    let mut table_rows: Vec<Vec<String>> = PAPER_BANDWIDTHS
        .iter()
        .map(|bw| vec![format!("{bw}")])
        .collect();

    for (label, t) in multiflow_variants() {
        let mut agg = Series {
            label: label.clone(),
            points: Vec::new(),
        };
        for (bi, bw) in PAPER_BANDWIDTHS.into_iter().enumerate() {
            // The topology and flow endpoints must be identical across
            // variants, so the seed excludes the variant.
            let seed = seed_for(&[fig_seed, bw.bits_per_sec()]);
            let r = experiment::run(&build(bw, t, seed), scale);
            agg.points.push((bw_mbit(bw), r.aggregate_goodput_kbps));
            table_rows[bi].push(fairness_cell(&r.fairness));
            if bw == DataRate::MBPS_11 {
                let points = r
                    .per_flow
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (i as f64 + 1.0, f.goodput_kbps))
                    .collect();
                flow_series.push(Series {
                    label: label.clone(),
                    points,
                });
            }
        }
        agg_series.push(agg);
    }
    let headers: Vec<String> = std::iter::once(String::new())
        .chain(multiflow_variants().into_iter().map(|(l, _)| l))
        .collect();
    (
        FigureData {
            id: agg_meta.0.into(),
            title: agg_meta.1.into(),
            x_label: "Mbit/s".into(),
            y_label: "aggregate goodput [kbit/s]".into(),
            series: agg_series,
        },
        FigureData {
            id: flow_meta.0.into(),
            title: flow_meta.1.into(),
            x_label: "flow".into(),
            y_label: "goodput [kbit/s]".into(),
            series: flow_series,
        },
        TableData {
            id: table_meta.0.into(),
            title: table_meta.1.into(),
            headers,
            rows: table_rows,
        },
    )
}

// ---------------------------------------------------------------------
// Ablations (design-choice studies beyond the paper's figures)
// ---------------------------------------------------------------------

/// Ablation: physical capture on vs off, NewReno and Vegas on the
/// 2 Mbit/s chain. Shows that ns-2's capture threshold is load-bearing
/// for the chain results (without it, same-direction traffic destroys
/// itself and every variant collapses).
pub fn ablation_capture(scale: ExperimentScale) -> FigureData {
    let mut series = Vec::new();
    for (label, t) in [
        ("Vegas".to_string(), Transport::vegas(2)),
        ("NewReno".into(), Transport::newreno()),
    ] {
        for capture in [true, false] {
            let mut s = Series {
                label: format!("{label}{}", if capture { "" } else { " (no capture)" }),
                points: Vec::new(),
            };
            for hops in [2usize, 4, 8, 16] {
                let mut sc = Scenario::chain(
                    hops,
                    DataRate::MBPS_2,
                    t,
                    seed_for(&[100, capture as u64, hops as u64]),
                );
                if !capture {
                    sc.ranges = mwn_phy::RangeModel::without_capture();
                }
                let r = experiment::run(&sc, scale);
                s.points.push((hops as f64, r.aggregate_goodput_kbps));
            }
            series.push(s);
        }
    }
    FigureData {
        id: "Ablation A".into(),
        title: "Physical capture on/off: chain goodput at 2 Mbit/s".into(),
        x_label: "hops".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

/// Ablation: control frames at the data rate instead of 1 Mbit/s. Shows
/// the sub-linear goodput growth of Figures 4/11 is caused by the fixed
/// basic rate.
pub fn ablation_basic_rate(scale: ExperimentScale) -> FigureData {
    let mut series = Vec::new();
    for fast_control in [false, true] {
        let mut s = Series {
            label: if fast_control {
                "control at data rate".into()
            } else {
                "control at 1 Mbit/s".into()
            },
            points: Vec::new(),
        };
        for bw in PAPER_BANDWIDTHS {
            let mut sc = Scenario::chain(
                7,
                bw,
                Transport::vegas(2),
                seed_for(&[101, fast_control as u64, bw.bits_per_sec()]),
            );
            if fast_control {
                let mut params = sc.mac_params();
                params.timing.basic_rate = bw;
                sc.mac_override = Some(params);
            }
            let r = experiment::run(&sc, scale);
            s.points.push((bw_mbit(bw), r.aggregate_goodput_kbps));
        }
        series.push(s);
    }
    FigureData {
        id: "Ablation B".into(),
        title: "Basic-rate control frames vs data-rate control frames (7-hop Vegas)".into(),
        x_label: "Mbit/s".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

/// Ablation: carrier-sense range below/at/above the hidden-terminal
/// threshold. With CS range ≥ 3 hops (600 m) the chain has no hidden
/// terminals and NewReno's losses fall sharply.
pub fn ablation_cs_range(scale: ExperimentScale) -> FigureData {
    let mut series = Vec::new();
    for cs in [350.0f64, 550.0, 650.0] {
        let mut s = Series {
            label: format!("CS range {cs} m"),
            points: Vec::new(),
        };
        for hops in [4usize, 8] {
            let mut sc = Scenario::chain(
                hops,
                DataRate::MBPS_2,
                Transport::newreno(),
                seed_for(&[102, cs as u64, hops as u64]),
            );
            sc.ranges.cs_range = cs;
            sc.ranges.interference_range = cs.max(550.0);
            let r = experiment::run(&sc, scale);
            s.points.push((hops as f64, r.per_flow[0].retx_per_packet));
        }
        series.push(s);
    }
    FigureData {
        id: "Ablation C".into(),
        title: "Carrier-sense range vs NewReno retransmission rate (hidden-terminal regime)".into(),
        x_label: "hops".into(),
        y_label: "retransmissions per delivered packet".into(),
        series,
    }
}

/// Extension: the link-layer enhancements of Fu et al. (the paper's
/// reference \[5\]) — adaptive pacing and link-RED — applied under TCP
/// NewReno on the 2 Mbit/s chain. Fu et al. report 5–30 % goodput
/// improvement; the paper positions TCP Vegas as an end-to-end
/// alternative to these link-layer fixes.
pub fn extension_fu_enhancements(scale: ExperimentScale) -> FigureData {
    use mwn_mac80211::LinkRedParams;
    let configs: Vec<(&str, bool, Option<LinkRedParams>)> = vec![
        ("NewReno", false, None),
        ("NewReno +pacing", true, None),
        ("NewReno +LRED", false, Some(LinkRedParams::default())),
        ("NewReno +both", true, Some(LinkRedParams::default())),
    ];
    let mut series = Vec::new();
    for (vi, (label, pacing, lred)) in configs.into_iter().enumerate() {
        let mut s = Series {
            label: label.to_string(),
            points: Vec::new(),
        };
        for hops in [4usize, 8, 16] {
            let mut sc = Scenario::chain(
                hops,
                DataRate::MBPS_2,
                Transport::newreno(),
                seed_for(&[103, vi as u64, hops as u64]),
            );
            let mut params = sc.mac_params();
            params.adaptive_pacing = pacing;
            params.link_red = lred;
            sc.mac_override = Some(params);
            let r = experiment::run(&sc, scale);
            s.points.push((hops as f64, r.aggregate_goodput_kbps));
        }
        series.push(s);
    }
    FigureData {
        id: "Extension".into(),
        title: "Fu et al. link-layer enhancements under TCP NewReno (2 Mbit/s chain)".into(),
        x_label: "hops".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

/// Extension: the four-variant TCP comparison of Xu & Saadawi (WCMC 2002,
/// the paper's reference \[15\]) — Tahoe, Reno, NewReno and Vegas on the
/// 2 Mbit/s chain. Xu & Saadawi report 15–20 % more goodput for Vegas;
/// the paper (with α tuned to 2) finds up to 83 %.
pub fn extension_tcp_variants(scale: ExperimentScale) -> FigureData {
    let variants: Vec<(&str, Transport)> = vec![
        ("Tahoe", Transport::tahoe()),
        ("Reno", Transport::reno()),
        ("NewReno", Transport::newreno()),
        ("Vegas a=2", Transport::vegas(2)),
    ];
    let mut series = Vec::new();
    for (vi, (label, t)) in variants.into_iter().enumerate() {
        let mut s = Series {
            label: label.to_string(),
            points: Vec::new(),
        };
        for hops in [2usize, 4, 8, 16] {
            let r = chain_run(
                hops,
                DataRate::MBPS_2,
                t,
                seed_for(&[104, vi as u64, hops as u64]),
                scale,
            );
            s.points.push((hops as f64, r.aggregate_goodput_kbps));
        }
        series.push(s);
    }
    FigureData {
        id: "Extension".into(),
        title: "Four TCP variants on the 2 Mbit/s chain (cf. Xu & Saadawi)".into(),
        x_label: "hops".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

/// Extension: verifies the paper's §2 claim that "for the h-hop chain the
/// optimum TCP window size is given by h/4" by sweeping NewReno's MaxWin.
pub fn extension_optimal_window(scale: ExperimentScale) -> FigureData {
    let mut series = Vec::new();
    for hops in [4usize, 8, 16] {
        let mut s = Series {
            label: format!("{hops} hops"),
            points: Vec::new(),
        };
        for max_win in 1..=8u32 {
            let r = chain_run(
                hops,
                DataRate::MBPS_2,
                Transport::newreno_optimal_window(max_win),
                seed_for(&[105, hops as u64, u64::from(max_win)]),
                scale,
            );
            s.points
                .push((f64::from(max_win), r.aggregate_goodput_kbps));
        }
        series.push(s);
    }
    FigureData {
        id: "Extension".into(),
        title: "NewReno goodput vs window bound MaxWin (optimum expected near h/4)".into(),
        x_label: "MaxWin".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

/// Extension: the 7-hop chain pushed to IEEE 802.11g OFDM rates (24 and
/// 54 Mbit/s) — the "bandwidths higher than 2 Mbit/s" future the paper's
/// introduction motivates. The sub-linear goodput law continues: the
/// fixed preamble and basic-rate control frames dominate ever more.
pub fn extension_80211g(scale: ExperimentScale) -> FigureData {
    use mwn_mac80211::MacParams;
    let variants: Vec<(&str, Transport)> = vec![
        ("Vegas a=2", Transport::vegas(2)),
        ("NewReno", Transport::newreno()),
        ("NewReno +thin", Transport::newreno_thinning()),
    ];
    let rates = [DataRate::MBPS_11, DataRate::MBPS_24, DataRate::MBPS_54];
    let mut series = Vec::new();
    for (vi, (label, t)) in variants.into_iter().enumerate() {
        let mut s = Series {
            label: label.to_string(),
            points: Vec::new(),
        };
        for bw in rates {
            let mut sc = Scenario::chain(7, bw, t, seed_for(&[106, vi as u64, bw.bits_per_sec()]));
            sc.mac_override = Some(MacParams::ieee80211g(bw));
            let r = experiment::run(&sc, scale);
            s.points.push((bw_mbit(bw), r.aggregate_goodput_kbps));
        }
        series.push(s);
    }
    FigureData {
        id: "Extension".into(),
        title: "7-hop chain over 802.11g OFDM: goodput at 11/24/54 Mbit/s".into(),
        x_label: "Mbit/s".into(),
        y_label: "goodput [kbit/s]".into(),
        series,
    }
}

/// Extension: mobility and ELFN (Holland & Vaidya, the paper's reference
/// \[7\]). Random-waypoint movement on a 1500 × 300 m strip; x-axis is the
/// maximum node speed (0 = the paper's static case). With ELFN the TCP
/// sender freezes on an explicit route-failure notice and probes instead
/// of backing off exponentially.
pub fn extension_mobility_elfn(scale: ExperimentScale) -> FigureData {
    use crate::mobility::RandomWaypoint;
    use crate::topology;
    use mwn_pkt::NodeId;

    let variants: Vec<(&str, Transport, bool)> = vec![
        ("NewReno", Transport::newreno(), false),
        ("NewReno +ELFN", Transport::newreno(), true),
        ("Vegas", Transport::vegas(2), false),
        ("Vegas +ELFN", Transport::vegas(2), true),
    ];
    let mut series = Vec::new();
    for (vi, (label, t, elfn)) in variants.into_iter().enumerate() {
        let mut s = Series {
            label: label.to_string(),
            points: Vec::new(),
        };
        for speed in [0u64, 5, 10, 20] {
            // Mobility outcomes depend heavily on the drawn trajectories:
            // average each point over several independent layouts (the
            // layout seed is shared across variants for paired
            // comparisons).
            let mut over_seeds = mwn_sim::stats::BatchMeans::new();
            for rep in 0..3u64 {
                let seed = seed_for(&[107, speed, rep]);
                let topo = topology::random(30, 1500.0, 300.0, 250.0, seed);
                let flows = vec![
                    crate::FlowSpec {
                        src: NodeId(0),
                        dst: NodeId(15),
                        transport: t,
                    },
                    crate::FlowSpec {
                        src: NodeId(7),
                        dst: NodeId(22),
                        transport: t,
                    },
                    crate::FlowSpec {
                        src: NodeId(29),
                        dst: NodeId(3),
                        transport: t,
                    },
                ];
                // Same scenario seed across variants: node trajectories
                // derive from it, so every variant faces identical
                // movement (paired comparison).
                let mut sc =
                    Scenario::new(topo, flows, DataRate::MBPS_2, seed_for(&[107, speed, rep]));
                let _ = vi;
                sc.aodv.elfn = elfn;
                if speed > 0 {
                    sc.mobility = Some(RandomWaypoint::strip(
                        speed as f64,
                        SimDuration::from_secs(0),
                    ));
                }
                let r = experiment::run(&sc, scale);
                over_seeds.push(r.aggregate_goodput_kbps.mean);
            }
            s.points.push((speed as f64, over_seeds.estimate()));
        }
        series.push(s);
    }
    FigureData {
        id: "Extension".into(),
        title: "Mobility (random waypoint) and ELFN: aggregate goodput vs max speed".into(),
        x_label: "m/s".into(),
        y_label: "aggregate goodput [kbit/s]".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            batch_packets: 60,
            batches: 3,
            deadline: SimDuration::from_secs(600),
        }
    }

    #[test]
    fn table2_measures_plausible_delays() {
        let t = table2();
        assert_eq!(t.rows.len(), 1);
        let parse = |s: &str| s.trim_end_matches(" ms").parse::<f64>().unwrap();
        let d2 = parse(&t.rows[0][1]);
        let d55 = parse(&t.rows[0][2]);
        let d11 = parse(&t.rows[0][3]);
        // Paper: 29 / 12 / 8 ms. Accept the right ordering and ballpark.
        assert!(d2 > d55 && d55 > d11, "{d2} > {d55} > {d11} expected");
        assert!((20.0..45.0).contains(&d2), "2 Mbit/s delay {d2} ms");
        assert!((6.0..20.0).contains(&d55), "5.5 Mbit/s delay {d55} ms");
        assert!((4.0..16.0).contains(&d11), "11 Mbit/s delay {d11} ms");
    }

    #[test]
    fn figure_rendering_is_wellformed() {
        let fig = FigureData {
            id: "Fig X".into(),
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "s".into(),
                points: vec![(
                    1.0,
                    Estimate {
                        mean: 10.0,
                        half_width: 1.0,
                    },
                )],
            }],
        };
        let text = fig.render();
        assert!(text.contains("Fig X"));
        assert!(text.contains("10.00"));
        let md = fig.to_markdown();
        assert!(md.contains("| x |"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() >= 3);
        let csv = fig.to_csv();
        assert_eq!(csv.lines().next(), Some("x,s,s_ci95"));
        assert_eq!(csv.lines().nth(1), Some("1,10,1"));
    }

    #[test]
    fn table_rendering_is_wellformed() {
        let t = TableData {
            id: "Table X".into(),
            title: "test".into(),
            headers: vec!["".into(), "a".into()],
            rows: vec![vec!["r".into(), "1".into()]],
        };
        assert!(t.render().contains("Table X"));
        assert!(t.to_markdown().contains("| r | 1 |"));
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for(&[1, 2, 3]), seed_for(&[1, 2, 3]));
        assert_ne!(seed_for(&[1, 2, 3]), seed_for(&[1, 2, 4]));
        assert_ne!(seed_for(&[1, 2, 3]), seed_for(&[3, 2, 1]));
    }

    #[test]
    fn fig4_runs_at_tiny_scale() {
        let f = fig4(tiny());
        assert_eq!(f.series.len(), 3);
        for s in &f.series {
            assert_eq!(s.points.len(), 3);
            // Goodput grows with bandwidth.
            assert!(s.points[2].1.mean > s.points[0].1.mean);
        }
    }
}
