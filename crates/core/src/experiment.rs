//! Steady-state experiment runner (paper §4.1).
//!
//! The paper simulates persistent FTP flows until 110 000 packets are
//! delivered, splits the output into 11 batches of 10 000 packets, discards
//! the first batch as the initial transient, and reports batch means with
//! 95 % confidence intervals. [`run`] reproduces that procedure at a
//! configurable scale.

use mwn_obs::{MetricsRegistry, MetricsReport};
use mwn_pkt::FlowId;
use mwn_sim::stats::{jain_fairness, BatchMeans, Estimate};
use mwn_sim::{SimDuration, SimTime};

use crate::network::StepOutcome;
use crate::scenario::Scenario;

/// Bits of application payload per delivered packet (1460 bytes).
const BITS_PER_PACKET: f64 = 1460.0 * 8.0;

/// How much work one experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Packets per batch (the paper: 10 000).
    pub batch_packets: u64,
    /// Number of batches including the discarded transient (the paper: 11).
    pub batches: usize,
    /// Simulated-time budget; a run that cannot deliver its packets by
    /// this deadline is truncated (prevents hangs on starved scenarios).
    pub deadline: SimDuration,
}

impl ExperimentScale {
    /// The paper's full scale: 11 × 10 000 packets.
    pub fn paper() -> Self {
        ExperimentScale {
            batch_packets: 10_000,
            batches: 11,
            deadline: SimDuration::from_secs(40_000),
        }
    }

    /// A reduced scale for `cargo bench` runs: 11 × 400 packets.
    pub fn quick() -> Self {
        ExperimentScale {
            batch_packets: 400,
            batches: 11,
            deadline: SimDuration::from_secs(4_000),
        }
    }

    /// A tiny scale for unit/integration tests: 4 × 120 packets.
    pub fn smoke() -> Self {
        ExperimentScale {
            batch_packets: 120,
            batches: 4,
            deadline: SimDuration::from_secs(1_200),
        }
    }

    /// The quick scale multiplied by `mult` (25 = the paper's 10 000
    /// packets per batch), with a proportionally extended deadline.
    ///
    /// Saturates instead of overflowing, so absurd multipliers degrade to
    /// "as large as representable" rather than wrapping to tiny runs.
    pub fn scaled(mult: u64) -> Self {
        let mult = mult.max(1);
        let quick = Self::quick();
        // `SimDuration::from_secs` multiplies by 1e9 internally; clamp so
        // that step cannot overflow either.
        let secs = 4_000u64.saturating_mul(mult).min(u64::MAX / 1_000_000_000);
        ExperimentScale {
            batch_packets: quick.batch_packets.saturating_mul(mult),
            batches: quick.batches,
            deadline: SimDuration::from_secs(secs),
        }
    }

    /// Reads `MWN_SCALE` from the environment: a multiplier on the quick
    /// scale's batch size (`MWN_SCALE=25` reproduces the paper's 10 000).
    pub fn from_env() -> Self {
        let mult: u64 = std::env::var("MWN_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        Self::scaled(mult)
    }
}

/// What the observability layer collects during a run.
///
/// Everything defaults to off; [`run`] uses [`ObsConfig::off`], so
/// uninstrumented experiments pay nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Collect per-batch counter deltas and whole-run totals.
    pub metrics: bool,
    /// Probe-buffer capacity in samples (0 disables time-series probes).
    pub probe_capacity: usize,
    /// Profile the event loop (events processed, histogram, peak queue).
    pub profile: bool,
    /// Run the packet-custody conservation audit alongside the drop
    /// ledger; the verdict lands in [`RunResults::conservation`].
    pub audit: bool,
    /// Engine worker threads for the sharded parallel engine. `0`
    /// inherits `MWN_SHARDS` from the environment (default 1); `1` is
    /// the sequential oracle. The sharded engine is byte-identical to
    /// the oracle, so this never changes results — only wall time.
    pub shards: usize,
}

impl ObsConfig {
    /// Nothing collected ([`RunResults::metrics`] stays `None`).
    pub fn off() -> Self {
        Self::default()
    }

    /// Everything on, retaining up to `probe_capacity` probe samples.
    pub fn full(probe_capacity: usize) -> Self {
        ObsConfig {
            metrics: true,
            probe_capacity,
            profile: true,
            audit: true,
            shards: 0,
        }
    }

    /// `self` with the engine worker count pinned (overrides
    /// `MWN_SHARDS`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The worker count a run should use: the explicit setting, else
    /// `MWN_SHARDS` from the environment, else the sequential oracle.
    /// The env fallback lets `mwn repro` parallelize without threading a
    /// knob through every experiment's signature.
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::env::var("MWN_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    }

    fn enabled(&self) -> bool {
        self.metrics || self.probe_capacity > 0 || self.profile || self.audit
    }
}

/// Steady-state measures for one flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The flow.
    pub flow: FlowId,
    /// Goodput in kbit/s (batch means ± 95 % CI).
    pub goodput_kbps: Estimate,
    /// Transport-layer retransmissions per delivered packet.
    pub retx_per_packet: Estimate,
    /// Time-weighted average congestion window (packets).
    pub avg_window: Estimate,
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All batches completed.
    Completed,
    /// The deadline expired; results cover the completed batches only.
    Truncated {
        /// Batches that did complete (excluding the transient).
        completed_batches: usize,
    },
}

/// Results of one steady-state experiment.
#[derive(Debug, Clone)]
pub struct RunResults {
    /// Per-flow measures.
    pub per_flow: Vec<FlowResult>,
    /// Sum of all flows' goodput, kbit/s.
    pub aggregate_goodput_kbps: Estimate,
    /// Jain's fairness index over per-flow goodputs.
    pub fairness: Estimate,
    /// Link-layer dropping probability (contention drops per packet that
    /// entered MAC service), network-wide.
    pub drop_probability: Estimate,
    /// False route failures observed during the measured batches.
    pub false_route_failures: u64,
    /// False route failures normalized to the paper's 110 000-packet run
    /// length, to make scaled-down runs comparable with Figure 9.
    pub false_route_failures_paper_scale: f64,
    /// Total packets delivered during the measured batches.
    pub packets_measured: u64,
    /// Simulated duration of the measured batches.
    pub measured_time: SimDuration,
    /// Total radio energy over all nodes for the whole run, joules.
    pub total_energy_joules: f64,
    /// Energy per delivered packet, joules.
    pub energy_per_packet: f64,
    /// Whether the run completed or was truncated at the deadline.
    pub outcome: RunOutcome,
    /// Unified observability report (`None` unless requested via
    /// [`run_instrumented`]).
    pub metrics: Option<MetricsReport>,
    /// Packet-custody conservation verdict (`None` unless
    /// [`ObsConfig::audit`] was set).
    pub conservation: Option<mwn_obs::ConservationReport>,
}

/// Per-slot counters snapshot at a batch boundary. `tenant` keys the
/// baseline to the flow that produced it: open-loop churn can vacate and
/// re-let a slot mid-batch, and a baseline from the previous tenant must
/// not be subtracted from the new one's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct FlowSnapshot {
    tenant: Option<FlowId>,
    delivered: u64,
    retransmissions: u64,
}

/// Runs `scenario` at `scale` and reports batch-means estimates.
///
/// # Example
///
/// ```
/// use mwn::{experiment, ExperimentScale, Scenario, Transport};
/// use mwn_phy::DataRate;
///
/// let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 7);
/// let r = experiment::run(&s, ExperimentScale::smoke());
/// assert!(r.aggregate_goodput_kbps.mean > 0.0);
/// ```
pub fn run(scenario: &Scenario, scale: ExperimentScale) -> RunResults {
    run_instrumented(scenario, scale, ObsConfig::off())
}

/// Like [`run`], with the observability layer collecting what `obs` asks
/// for; the report lands in [`RunResults::metrics`].
pub fn run_instrumented(scenario: &Scenario, scale: ExperimentScale, obs: ObsConfig) -> RunResults {
    let mut net = scenario.build();
    net.set_shards(obs.effective_shards());
    if obs.probe_capacity > 0 {
        net.enable_probes(obs.probe_capacity);
    }
    if obs.profile {
        net.enable_profiling();
    }
    if obs.audit {
        net.enable_audit();
    }
    let mut registry = obs.metrics.then(MetricsRegistry::new);
    if let Some(reg) = &mut registry {
        reg.begin(net.collect_metrics());
    }
    let flows = net.flow_count();
    let deadline = SimTime::ZERO + scale.deadline;

    let mut goodput = vec![BatchMeans::new(); flows];
    let mut retx = vec![BatchMeans::new(); flows];
    let mut window = vec![BatchMeans::new(); flows];
    let mut aggregate = BatchMeans::new();
    let mut fairness = BatchMeans::new();
    let mut drop_prob = BatchMeans::new();

    let mut snapshots: Vec<FlowSnapshot> = vec![FlowSnapshot::default(); flows];
    let mut batch_start = net.now();
    let mut mac_accepted_prev = 0u64;
    let mut mac_drops_prev = 0u64;
    let mut frf_at_transient_end = 0u64;
    let mut packets_measured = 0u64;
    let mut measured_time = SimDuration::ZERO;
    let mut completed_batches = 0usize;
    let mut outcome = RunOutcome::Completed;

    for batch in 0..scale.batches {
        let target = scale.batch_packets * (batch as u64 + 1);
        let res = net.run_until_delivered(target, deadline);
        let now = net.now();
        let elapsed = now.duration_since(batch_start);

        if res != StepOutcome::TargetReached {
            outcome = RunOutcome::Truncated {
                completed_batches: completed_batches.saturating_sub(0),
            };
            break;
        }

        // Per-flow batch measures. Open-loop churn can grow the slot
        // table between boundaries; extend the trackers to match (the
        // persistent prefix keeps its full batch history).
        let flows = net.flow_count();
        if flows > snapshots.len() {
            snapshots.resize(flows, FlowSnapshot::default());
            goodput.resize(flows, BatchMeans::new());
            retx.resize(flows, BatchMeans::new());
            window.resize(flows, BatchMeans::new());
        }
        let mut flow_goodputs = Vec::with_capacity(flows);
        for i in 0..flows {
            let tenant = net.flow_at(i);
            let (delivered, retx_total) = match tenant {
                Some(flow) => (
                    net.flow_delivered(flow),
                    net.flow_sender_stats(flow).map_or(0, |s| s.retransmissions),
                ),
                None => (0, 0),
            };
            // A tenant change invalidates the baseline: the new flow's
            // counters started from zero after the snapshot was taken.
            let stale = tenant != snapshots[i].tenant;
            let d_delta = delivered.saturating_sub(if stale { 0 } else { snapshots[i].delivered });
            let r_delta = retx_total.saturating_sub(if stale {
                0
            } else {
                snapshots[i].retransmissions
            });
            let gp = if elapsed.is_zero() {
                0.0
            } else {
                d_delta as f64 * BITS_PER_PACKET / elapsed.as_secs_f64() / 1000.0
            };
            let rpp = if d_delta == 0 {
                0.0
            } else {
                r_delta as f64 / d_delta as f64
            };
            let win = tenant.map_or(1.0, |f| net.flow_avg_window(f));
            snapshots[i] = FlowSnapshot {
                tenant,
                delivered,
                retransmissions: retx_total,
            };
            flow_goodputs.push(gp);
            if batch > 0 {
                goodput[i].push(gp);
                retx[i].push(rpp);
                window[i].push(win);
            }
        }
        let totals = net.totals();
        let accepted_delta = totals.mac.unicast_accepted - mac_accepted_prev;
        let drops_delta = totals.mac.contention_drops() - mac_drops_prev;
        mac_accepted_prev = totals.mac.unicast_accepted;
        mac_drops_prev = totals.mac.contention_drops();

        if batch > 0 {
            aggregate.push(flow_goodputs.iter().sum());
            fairness.push(jain_fairness(&flow_goodputs));
            drop_prob.push(if accepted_delta == 0 {
                0.0
            } else {
                drops_delta as f64 / accepted_delta as f64
            });
            packets_measured += scale.batch_packets;
            measured_time += elapsed;
            completed_batches += 1;
        } else {
            // End of the transient batch: snapshot route-failure count.
            frf_at_transient_end = totals.aodv.false_route_failures;
        }
        if let Some(reg) = &mut registry {
            reg.end_batch(net.collect_metrics());
        }
        net.reset_window_averages();
        batch_start = now;
    }

    if let RunOutcome::Truncated {
        completed_batches: ref mut cb,
    } = outcome
    {
        *cb = completed_batches;
    }

    let frf = net
        .totals()
        .aodv
        .false_route_failures
        .saturating_sub(frf_at_transient_end);
    let frf_paper_scale = if packets_measured == 0 {
        0.0
    } else {
        frf as f64 * 110_000.0 / packets_measured as f64
    };
    let energy = net.total_energy_joules();
    let delivered_total = net.total_delivered().max(1);
    let end = net.now();
    let metrics = obs.enabled().then(|| MetricsReport {
        batches: registry
            .map(MetricsRegistry::into_batches)
            .unwrap_or_default(),
        totals: net.collect_metrics(),
        probes: net
            .probes()
            .map(|p| p.samples().copied().collect())
            .unwrap_or_default(),
        profile: net.profile().cloned().unwrap_or_default(),
        drops: Some(net.drop_report()),
        fct: net.traffic_summary().map(|s| s.to_json(end)),
    });
    let conservation = net.conservation_report();

    RunResults {
        per_flow: (0..goodput.len())
            .map(|i| FlowResult {
                flow: FlowId(i as u32),
                goodput_kbps: goodput[i].estimate(),
                retx_per_packet: retx[i].estimate(),
                avg_window: window[i].estimate(),
            })
            .collect(),
        aggregate_goodput_kbps: aggregate.estimate(),
        fairness: fairness.estimate(),
        drop_probability: drop_prob.estimate(),
        false_route_failures: frf,
        false_route_failures_paper_scale: frf_paper_scale,
        packets_measured,
        measured_time,
        total_energy_joules: energy,
        energy_per_packet: energy / delivered_total as f64,
        outcome,
        metrics,
        conservation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Transport;
    use mwn_phy::DataRate;

    #[test]
    fn smoke_run_produces_estimates() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
        let r = run(&s, ExperimentScale::smoke());
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.per_flow.len(), 1);
        assert!(r.aggregate_goodput_kbps.mean > 0.0);
        assert!(r.per_flow[0].avg_window.mean >= 1.0);
        assert_eq!(r.packets_measured, 120 * 3);
        // Single flow: fairness is 1 by definition.
        assert!((r.fairness.mean - 1.0).abs() < 1e-9);
        assert!(r.total_energy_joules > 0.0);
    }

    #[test]
    fn instrumented_run_collects_metrics_and_matches_uninstrumented() {
        let s = Scenario::chain(2, DataRate::MBPS_2, Transport::vegas(2), 1);
        let scale = ExperimentScale::smoke();
        let plain = run(&s, scale);
        let inst = run_instrumented(&s, scale, ObsConfig::full(1 << 16));

        // Observation must not perturb the simulation.
        assert_eq!(
            plain.aggregate_goodput_kbps.mean,
            inst.aggregate_goodput_kbps.mean
        );
        assert!(plain.metrics.is_none());

        let m = inst.metrics.expect("instrumented run reports metrics");
        // One BatchMetrics per completed batch, transient included.
        assert_eq!(m.batches.len(), scale.batches);
        let totals = m.totals.node_totals();
        assert!(totals.mac.data_sent > 0);
        assert!(totals.mac.unicast_accepted > 0);
        // Whole-run totals equal the sum of the per-batch deltas plus
        // whatever preceded the first boundary (nothing here).
        let batch_sum: u64 = m
            .batches
            .iter()
            .map(|b| b.node_totals().mac.data_sent)
            .sum();
        assert_eq!(batch_sum, totals.mac.data_sent);
        // Probes captured a cwnd series for the flow, and Vegas exposes
        // its diff signal once RTT estimates exist.
        assert!(m
            .probes
            .iter()
            .any(|p| p.kind == mwn_obs::ProbeKind::Cwnd && p.id == 0));
        assert!(m
            .probes
            .iter()
            .any(|p| p.kind == mwn_obs::ProbeKind::VegasDiff));
        // The profile saw every event the run processed.
        assert!(m.profile.events_processed() > 0);
        assert!(m.profile.peak_queue_depth() > 0);
        assert!(m.profile.by_kind().iter().any(|&(k, _)| k == "mac_timer"));
        // The drop ledger rode along in the report; a persistent-flow
        // run has no traffic classes, so no FCT section.
        let ledger = m.drops.as_ref().expect("ledger collected");
        assert_eq!(ledger.class_names(), ["persistent", "unattributed"]);
        assert!(m.fct.is_none());
        // The custody audit balanced on a clean run.
        let cons = inst.conservation.expect("audit ran");
        assert!(cons.is_balanced(), "{cons}");
        assert!(cons.flows_checked >= 1);
    }

    #[test]
    fn conservation_balances_under_open_loop_churn() {
        // Finite flows open, complete and recycle slots; every custody
        // path (originate, deliver, consume, teardown, terminal drops)
        // must still balance per node and per flow.
        use mwn_traffic::TrafficModel;
        let s = Scenario::open_loop(
            10,
            TrafficModel::web(600),
            Transport::newreno(),
            DataRate::MBPS_2,
            9,
        );
        let obs = ObsConfig {
            audit: true,
            ..ObsConfig::off()
        };
        let r = run_instrumented(&s, ExperimentScale::smoke(), obs);
        let cons = r.conservation.expect("audit ran");
        assert!(cons.is_balanced(), "{cons}");
        assert!(cons.flows_checked > 0);
        // The FCT section rides along for open-loop runs.
        let m = r.metrics.expect("instrumented");
        assert!(m.fct.as_deref().is_some_and(|f| f.contains("\"classes\"")));
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // (Does not set the variable; checks the default path.)
        let s = ExperimentScale::from_env();
        assert_eq!(s.batch_packets % ExperimentScale::quick().batch_packets, 0);
        assert_eq!(s.batches, 11);
    }

    #[test]
    fn scaled_saturates_instead_of_overflowing() {
        assert_eq!(ExperimentScale::scaled(0), ExperimentScale::scaled(1));
        assert_eq!(ExperimentScale::scaled(25).batch_packets, 10_000);
        let huge = ExperimentScale::scaled(u64::MAX);
        assert_eq!(huge.batch_packets, u64::MAX);
        // Deadline clamps below the nanosecond-representable maximum
        // rather than wrapping to a tiny value.
        assert!(huge.deadline > ExperimentScale::scaled(1_000_000).deadline);
    }

    #[test]
    fn truncated_run_reports_partial_batches() {
        // A 2 Mbit/s 4-hop chain cannot deliver 10k packets in 5 s.
        let s = Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), 1);
        let scale = ExperimentScale {
            batch_packets: 10_000,
            batches: 11,
            deadline: SimDuration::from_secs(5),
        };
        let r = run(&s, scale);
        assert!(matches!(r.outcome, RunOutcome::Truncated { .. }));
    }

    #[test]
    fn open_loop_scenario_survives_batch_collection() {
        // Churn: slots vacate, recycle and multiply between batch
        // boundaries; the collector must never underflow a delta or
        // index a stale generation.
        use mwn_traffic::TrafficModel;
        let s = Scenario::open_loop(
            10,
            TrafficModel::web(600),
            Transport::newreno(),
            DataRate::MBPS_2,
            9,
        );
        let r = run(&s, ExperimentScale::smoke());
        assert!(!r.per_flow.is_empty());
        assert!(r.packets_measured > 0 || matches!(r.outcome, RunOutcome::Truncated { .. }));
    }

    #[test]
    fn goodput_is_plausible_for_one_hop() {
        // 1 hop at 2 Mbit/s: TCP goodput should land in the hundreds of
        // kbit/s, below the 2 Mbit/s line rate (MAC + ACK overhead).
        let s = Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 3);
        let r = run(&s, ExperimentScale::smoke());
        let gp = r.aggregate_goodput_kbps.mean;
        assert!(gp > 200.0, "goodput {gp} kbit/s too low");
        assert!(gp < 2000.0, "goodput {gp} kbit/s above line rate");
    }

    mod scaled_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `scaled` never panics and respects its saturation contract
            /// for arbitrary multipliers, including the overflow region.
            #[test]
            fn scaled_never_panics(mult: u64) {
                let s = ExperimentScale::scaled(mult);
                prop_assert!(s.batch_packets >= ExperimentScale::quick().batch_packets);
                prop_assert_eq!(s.batches, ExperimentScale::quick().batches);
                // Constructing the deadline exercised `from_secs` (×1e9
                // internally) without overflow; it can only have grown.
                prop_assert!(s.deadline >= ExperimentScale::quick().deadline);
            }

            /// Monotonicity: a larger multiplier never yields a smaller
            /// scale in any field (saturation makes it non-strict).
            #[test]
            fn scaled_is_monotone(a: u64, b: u64) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let sl = ExperimentScale::scaled(lo);
                let sh = ExperimentScale::scaled(hi);
                prop_assert!(sl.batch_packets <= sh.batch_packets);
                prop_assert!(sl.deadline <= sh.deadline);
                prop_assert_eq!(sl.batches, sh.batches);
            }
        }
    }
}
