//! Node placements: the paper's chain, grid and random topologies.

use mwn_phy::{Position, SpatialGrid};
use mwn_pkt::NodeId;
use mwn_sim::Pcg32;

/// The paper's node spacing for chain and grid topologies (meters).
pub const PAPER_SPACING: f64 = 200.0;

/// A set of node positions.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    positions: Vec<Position>,
}

impl Topology {
    /// Wraps explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn from_positions(positions: Vec<Position>) -> Self {
        assert!(!positions.is_empty(), "topology needs at least one node");
        Topology { positions }
    }

    /// The node positions, indexed by [`NodeId`].
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the topology has no nodes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// `true` if the graph induced by `range`-limited links is connected.
    ///
    /// Backed by a [`SpatialGrid`] with cell size `range`, so each BFS
    /// expansion scans only the 3×3 cell neighborhood instead of every
    /// node — O(n·k) overall, which keeps the resample loop of
    /// [`random`] cheap even for the 500-node [`random_large`] preset.
    pub fn is_connected(&self, range: f64) -> bool {
        let n = self.positions.len();
        let grid = SpatialGrid::build(range, &self.positions);
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        let mut candidates = Vec::new();
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            candidates.clear();
            grid.candidates_near(self.positions[i], &mut candidates);
            for &j in &candidates {
                let j = j as usize;
                if !seen[j] && self.positions[i].distance_to(self.positions[j]) <= range {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == n
    }

    /// Fraction of nodes in the largest connected component of the
    /// `range`-limited link graph (1.0 iff the graph is connected).
    ///
    /// Same grid-backed sweep as [`is_connected`](Self::is_connected),
    /// extended over every component — O(n·k) for the whole topology, so
    /// it stays cheap even on 50 000-node city fields.
    pub fn largest_component_fraction(&self, range: f64) -> f64 {
        let n = self.positions.len();
        let grid = SpatialGrid::build(range, &self.positions);
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        let mut candidates = Vec::new();
        let mut best = 0usize;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            stack.push(start);
            let mut count = 1usize;
            while let Some(i) = stack.pop() {
                candidates.clear();
                grid.candidates_near(self.positions[i], &mut candidates);
                for &j in &candidates {
                    let j = j as usize;
                    if !seen[j] && self.positions[i].distance_to(self.positions[j]) <= range {
                        seen[j] = true;
                        count += 1;
                        stack.push(j);
                    }
                }
            }
            best = best.max(count);
        }
        best as f64 / n as f64
    }

    /// Minimum hop count between two nodes over `range`-limited links, or
    /// `None` if unreachable.
    pub fn hop_distance(&self, a: NodeId, b: NodeId, range: f64) -> Option<usize> {
        let n = self.positions.len();
        let (a, b) = (a.index(), b.index());
        let mut dist = vec![usize::MAX; n];
        dist[a] = 0;
        let mut frontier = std::collections::VecDeque::from([a]);
        while let Some(i) = frontier.pop_front() {
            if i == b {
                return Some(dist[i]);
            }
            for j in 0..n {
                if dist[j] == usize::MAX
                    && self.positions[i].distance_to(self.positions[j]) <= range
                {
                    dist[j] = dist[i] + 1;
                    frontier.push_back(j);
                }
            }
        }
        None
    }
}

/// An equally spaced h-hop chain (`hops + 1` nodes, 200 m apart): the
/// paper's Figure 1. Node 0 is the left end (the TCP sender), node `hops`
/// the right end (the receiver).
///
/// # Panics
///
/// Panics if `hops` is zero.
///
/// # Example
///
/// ```
/// use mwn::topology;
///
/// let chain = topology::chain(7);
/// assert_eq!(chain.len(), 8);
/// assert!(chain.is_connected(250.0));
/// ```
pub fn chain(hops: usize) -> Topology {
    chain_spaced(hops, PAPER_SPACING)
}

/// An h-hop chain with custom spacing.
///
/// # Panics
///
/// Panics if `hops` is zero or spacing is not positive and finite.
pub fn chain_spaced(hops: usize, spacing: f64) -> Topology {
    assert!(hops > 0, "chain needs at least one hop");
    assert!(spacing.is_finite() && spacing > 0.0, "invalid spacing");
    Topology::from_positions(
        (0..=hops)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect(),
    )
}

/// A `cols × rows` grid, 200 m spacing, row-major node numbering (node
/// `r*cols + c` sits at column `c`, row `r`).
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(cols: usize, rows: usize) -> Topology {
    assert!(cols > 0 && rows > 0, "grid needs positive dimensions");
    let mut positions = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            positions.push(Position::new(
                c as f64 * PAPER_SPACING,
                r as f64 * PAPER_SPACING,
            ));
        }
    }
    Topology::from_positions(positions)
}

/// The paper's 21-node grid (Figure 15): 7 columns × 3 rows.
pub fn grid21() -> Topology {
    grid(7, 3)
}

/// The node id at `(col, row)` of a [`grid`] with `cols` columns.
pub fn grid_node(cols: usize, col: usize, row: usize) -> NodeId {
    NodeId((row * cols + col) as u32)
}

/// `n` nodes placed uniformly at random on a `width × height` m² area,
/// resampled until the 250 m-link graph is connected (the paper's random
/// topology is connected with P = 99.9 % per Bettstetter; we resample the
/// rare disconnected draws, which preserves the conditional distribution).
///
/// # Panics
///
/// Panics if `n` is zero or the area is degenerate.
pub fn random(n: usize, width: f64, height: f64, tx_range: f64, seed: u64) -> Topology {
    random_accepting(n, width, height, seed, "connected", |t| {
        t.is_connected(tx_range)
    })
}

/// Uniform draws on `width × height` m², resampled until `accept` holds.
fn random_accepting(
    n: usize,
    width: f64,
    height: f64,
    seed: u64,
    what: &str,
    accept: impl Fn(&Topology) -> bool,
) -> Topology {
    assert!(n > 0, "need at least one node");
    assert!(width > 0.0 && height > 0.0, "area must be positive");
    let mut rng = Pcg32::with_stream(seed, 0x7090_17E0);
    for _attempt in 0..10_000 {
        let positions: Vec<Position> = (0..n)
            .map(|_| {
                Position::new(
                    rng.gen_range_f64(0.0, width),
                    rng.gen_range_f64(0.0, height),
                )
            })
            .collect();
        let t = Topology::from_positions(positions);
        if accept(&t) {
            return t;
        }
    }
    panic!("could not draw a {what} {n}-node topology on {width}x{height} m²");
}

/// The paper's random scenario: 120 nodes on 2500 × 1000 m².
pub fn random_paper(seed: u64) -> Topology {
    random(120, 2500.0, 1000.0, 250.0, seed)
}

/// Field dimensions of the [`random_large`] preset with `n` nodes: the
/// area scales with `n` to keep the paper's node density (120 nodes on
/// 2500 × 1000 m² ≈ one node per 20 800 m²) at the paper's 2.5:1 aspect
/// ratio, so connectivity and contention stay comparable across sizes.
/// Dimensions are rounded to the nearest 100 m (width) / 50 m (height);
/// the historical 200- and 500-node presets (3200 × 1300, 5100 × 2050)
/// fall out of the formula bit-identically.
///
/// # Panics
///
/// Panics if `n < 2` (a field needs at least one flow's two endpoints).
pub fn random_large_dims(n: usize) -> (f64, f64) {
    assert!(n >= 2, "random_large needs at least two nodes, not {n}");
    let area = n as f64 * 20_800.0;
    let width = ((area * 2.5).sqrt() / 100.0).round() * 100.0;
    let height = ((area / width) / 50.0).round() * 50.0;
    (width, height)
}

/// A large random topology at the paper's node density: any `n ≥ 2`
/// nodes on the [`random_large_dims`] field, resampled until the
/// 250 m-link graph is connected (like [`random`], with the grid-backed
/// connectivity check keeping the resampling cheap). Drives the
/// `random200-mobility` / `random500-mobility` bench scenarios, the
/// `metro` preset and large random-waypoint studies.
///
/// Beware the connectivity threshold: at the paper's density the mean
/// 250 m-link degree is ≈ 9.4, and a random geometric graph needs mean
/// degree ≈ ln n to be connected — so past roughly 10 000 nodes a fully
/// connected draw becomes astronomically rare and this function will
/// panic after exhausting its resample budget. City-scale work should
/// use [`random_large_giant`] instead.
///
/// # Panics
///
/// Panics if `n < 2`, or if no connected draw is found (see above).
pub fn random_large(n: usize, seed: u64) -> Topology {
    let (width, height) = random_large_dims(n);
    random(n, width, height, 250.0, seed)
}

/// Like [`random_large`], but requires only that the largest connected
/// component span ≥ 99 % of the nodes instead of full connectivity.
///
/// Above the connectivity threshold (see [`random_large`]) virtually
/// every draw is a giant component plus a sprinkling of tiny isolated
/// pockets; insisting on zero pockets is hopeless at 50 000 nodes, while
/// the ≥ 99 % giant component is what city-scale scenarios with local
/// flows actually need. Drives the `random5k-mobility` / `random20k` /
/// `random50k` bench scenarios.
///
/// # Panics
///
/// Panics if `n < 2` or no acceptable draw is found.
pub fn random_large_giant(n: usize, seed: u64) -> Topology {
    let (width, height) = random_large_dims(n);
    random_accepting(n, width, height, seed, "99%-giant-component", |t| {
        t.largest_component_fraction(250.0) >= 0.99
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_geometry() {
        let t = chain(7);
        assert_eq!(t.len(), 8);
        assert_eq!(t.positions()[7], Position::new(1400.0, 0.0));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(7), 250.0), Some(7));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hop_chain_rejected() {
        chain(0);
    }

    #[test]
    fn grid21_matches_paper() {
        let t = grid21();
        assert_eq!(t.len(), 21);
        // Horizontal extent 6 hops, vertical 2 hops.
        assert_eq!(
            t.hop_distance(grid_node(7, 0, 0), grid_node(7, 6, 0), 250.0),
            Some(6)
        );
        assert_eq!(
            t.hop_distance(grid_node(7, 1, 0), grid_node(7, 1, 2), 250.0),
            Some(2)
        );
        assert!(t.is_connected(250.0));
    }

    #[test]
    fn grid_node_numbering_is_row_major() {
        assert_eq!(grid_node(7, 0, 0), NodeId(0));
        assert_eq!(grid_node(7, 6, 0), NodeId(6));
        assert_eq!(grid_node(7, 0, 1), NodeId(7));
        assert_eq!(grid_node(7, 3, 2), NodeId(17));
    }

    #[test]
    fn random_topology_is_connected_and_deterministic() {
        let a = random(40, 1200.0, 800.0, 250.0, 7);
        let b = random(40, 1200.0, 800.0, 250.0, 7);
        assert_eq!(a, b, "same seed, same layout");
        assert!(a.is_connected(250.0));
        let c = random(40, 1200.0, 800.0, 250.0, 8);
        assert_ne!(a, c, "different seed, different layout");
    }

    #[test]
    fn random_nodes_stay_in_bounds() {
        let t = random(60, 2500.0, 1000.0, 250.0, 3);
        for p in t.positions() {
            assert!((0.0..=2500.0).contains(&p.x));
            assert!((0.0..=1000.0).contains(&p.y));
        }
    }

    #[test]
    fn random_large_presets_connected_at_paper_density() {
        for n in [200, 500] {
            let (w, h) = random_large_dims(n);
            let density = w * h / n as f64;
            assert!(
                (density - 2500.0 * 1000.0 / 120.0).abs() < 1500.0,
                "{n}-node preset density {density} m²/node strays from the paper's"
            );
            let t = random_large(n, 11);
            assert_eq!(t.len(), n);
            assert!(t.is_connected(250.0));
            assert_eq!(t, random_large(n, 11), "same seed, same layout");
            for p in t.positions() {
                assert!((0.0..=w).contains(&p.x) && (0.0..=h).contains(&p.y));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn random_large_rejects_tiny_sizes() {
        random_large_dims(1);
    }

    #[test]
    fn random_large_dims_formula_keeps_presets_bit_identical() {
        // The density formula must reproduce the historical presets
        // exactly — these dimensions are baked into committed bench
        // baselines and golden digests.
        assert_eq!(random_large_dims(200), (3200.0, 1300.0));
        assert_eq!(random_large_dims(500), (5100.0, 2050.0));
        // And hold the paper's density for arbitrary n, including the
        // city scales (rounding error shrinks relative to area as n
        // grows).
        for n in [2, 37, 300, 1_000, 5_000, 20_000, 50_000] {
            let (w, h) = random_large_dims(n);
            assert!(w > 0.0 && h > 0.0);
            assert!(w % 100.0 == 0.0 && h % 50.0 == 0.0, "{n}: ({w}, {h})");
            let density = w * h / n as f64;
            let paper = 20_800.0;
            assert!(
                (density - paper).abs() / paper < 0.25,
                "{n}-node field ({w} x {h}) density {density} m²/node \
                 strays from the paper's {paper}"
            );
        }
    }

    #[test]
    fn disconnected_detection() {
        let t =
            Topology::from_positions(vec![Position::new(0.0, 0.0), Position::new(10_000.0, 0.0)]);
        assert!(!t.is_connected(250.0));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(1), 250.0), None);
        assert_eq!(t.largest_component_fraction(250.0), 0.5);
    }

    #[test]
    fn giant_component_variant_covers_the_field() {
        // A connected topology is trivially a 100% giant component.
        let t = chain(4);
        assert_eq!(t.largest_component_fraction(250.0), 1.0);
        // The giant-component draw is deterministic and near-spanning at
        // a size where full connectivity is still checkable.
        let g = random_large_giant(1_000, 9);
        assert_eq!(g.len(), 1_000);
        assert!(g.largest_component_fraction(250.0) >= 0.99);
        assert_eq!(g, random_large_giant(1_000, 9), "same seed, same layout");
    }
}
