//! City-scale expanding-ring behavior on the 5000-node field.
//!
//! The headline claim of the expanding-ring search: on a city-scale
//! topology where traffic is local (a few hops), TTL-staged discovery
//! spares almost the whole network from every RREQ flood. This test pins
//! the claim with the router counters — same topology, same local flows,
//! naive flooding vs [`AodvConfig::city`] — and asserts at least a 5×
//! reduction in RREQ rebroadcasts.

use mwn::{
    topology, AodvConfig, DataRate, FlowSpec, NodeId, Scenario, SimDuration, SimTime, Transport,
};

/// Picks `count` flows with endpoints exactly 3 hops apart, sources
/// spread across the node-id space. Expanding rings help when routes are
/// near — the city-locality case.
fn local_flows(t: &topology::Topology, count: usize) -> Vec<FlowSpec> {
    let n = t.len();
    let positions = t.positions();
    let mut flows = Vec::new();
    'src: for s in 0..count {
        let src = (s * n / count) as u32;
        for d in 0..n as u32 {
            // Geometric prefilter: 2.2–2.8 radio ranges away is almost
            // always 3 hops; confirm with BFS before accepting.
            let dist = positions[src as usize].distance_to(positions[d as usize]);
            if (550.0..700.0).contains(&dist)
                && t.hop_distance(NodeId(src), NodeId(d), 250.0) == Some(3)
            {
                flows.push(FlowSpec {
                    src: NodeId(src),
                    dst: NodeId(d),
                    transport: Transport::newreno(),
                });
                continue 'src;
            }
        }
    }
    assert_eq!(flows.len(), count, "every source found a 3-hop partner");
    flows
}

#[test]
fn expanding_ring_cuts_rreq_rebroadcasts_5x_on_random5k() {
    let topology = topology::random_large(5000, 42);
    let flows = local_flows(&topology, 3);
    let target = 30; // a few delivered packets per flow: discovery-dominated
    let deadline = SimTime::ZERO + SimDuration::from_secs(20);

    let run = |aodv: AodvConfig| {
        let mut scenario = Scenario::new(topology.clone(), flows.clone(), DataRate::MBPS_11, 42);
        scenario.aodv = aodv;
        let mut net = scenario.build();
        net.run_until_delivered(target, deadline);
        assert!(
            net.total_delivered() >= target,
            "only {} of {target} packets delivered",
            net.total_delivered()
        );
        net.totals().aodv
    };

    let flood = run(AodvConfig::default());
    let ring = run(AodvConfig::city());

    // Flooding forwards each RREQ through essentially all 5000 nodes;
    // ring searches stop at TTL 3 for these 3-hop destinations.
    assert!(
        flood.rreqs_forwarded >= 5 * ring.rreqs_forwarded.max(1),
        "expected ≥5× reduction: flood forwarded {}, ring forwarded {}",
        flood.rreqs_forwarded,
        ring.rreqs_forwarded
    );
    // The ring search is what suppressed the rebroadcasts (the flood
    // also clips a little: this field's diameter is comparable to the
    // 64-hop default TTL), and a flood really did sweep the city.
    assert!(
        ring.rreq_rebroadcasts_suppressed > flood.rreq_rebroadcasts_suppressed,
        "ring boundaries fired less than the flood's TTL clipping ({} vs {})",
        ring.rreq_rebroadcasts_suppressed,
        flood.rreq_rebroadcasts_suppressed
    );
    assert!(
        flood.rreqs_forwarded > 1000,
        "flood only forwarded {} RREQs — not city scale",
        flood.rreqs_forwarded
    );
}
