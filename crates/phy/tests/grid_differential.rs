//! Differential test: the spatial-grid medium against the dense oracle.
//!
//! [`Medium`] derives effect lists from a spatial hash grid and, since
//! the lazy epoch-stamped refactor, defers rebuilding them from
//! [`Medium::move_nodes`] to the first [`Medium::refresh`] that touches a
//! stale 3×3 neighborhood; [`ReferenceMedium`] is the dense all-pairs
//! implementation it replaced. For ANY initial placement and ANY
//! sequence of move batches — including co-located nodes, nodes exactly
//! on cell boundaries, and distances exactly at the inclusive
//! 250 m / 550 m classification boundaries — both media must agree on
//! every refreshed effect list bit for bit: same receivers in the same
//! (node-id) order, same signal class, same power, same delay.

use mwn_phy::{Medium, Position, RangeModel, ReferenceMedium};
use mwn_pkt::NodeId;
use proptest::prelude::*;

/// Snap some coordinates onto multiples of interesting distances so the
/// inclusive boundaries (250 m decode, 550 m sense = the grid cell size)
/// and exact cell edges are actually hit, not just approached.
fn snap(v: f64, lattice: u32) -> f64 {
    match lattice % 4 {
        0 => v,
        1 => (v / 250.0).round() * 250.0,
        2 => (v / 550.0).round() * 550.0,
        _ => (v / 137.5).round() * 137.5,
    }
}

fn arb_point() -> impl Strategy<Value = (f64, f64, u32)> {
    (0.0f64..2200.0, 0.0f64..1100.0, 0u32..8)
}

fn positions_of(raw: &[(f64, f64, u32)]) -> Vec<Position> {
    raw.iter()
        .map(|&(x, y, lat)| Position::new(snap(x, lat), snap(y, lat / 4 + lat % 4)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grid_medium_matches_dense_reference(
        initial in proptest::collection::vec(arb_point(), 1..32),
        batches in proptest::collection::vec(
            proptest::collection::vec((0usize..32, arb_point()), 1..8),
            0..6,
        ),
    ) {
        let initial = positions_of(&initial);
        let n = initial.len();
        let mut grid = Medium::new(initial.clone(), RangeModel::paper());
        let mut dense = ReferenceMedium::new(initial, RangeModel::paper());

        let assert_equal = |grid: &mut Medium, dense: &ReferenceMedium, when: &str| {
            for tx in 0..n {
                let id = NodeId(tx as u32);
                prop_assert_eq!(
                    grid.refresh(id),
                    dense.effects_of(id),
                    "effect lists diverged for tx {tx} {when}"
                );
            }
            prop_assert_eq!(grid.positions(), dense.positions());
        };
        assert_equal(&mut grid, &dense, "after construction");

        for (b, batch) in batches.iter().enumerate() {
            let moves: Vec<(NodeId, Position)> = positions_of(
                &batch.iter().map(|&(_, p)| p).collect::<Vec<_>>(),
            )
            .into_iter()
            .zip(batch.iter().map(|&(i, _)| NodeId((i % n) as u32)))
            .map(|(p, id)| (id, p))
            .collect();
            grid.move_nodes(&moves);
            dense.move_nodes(&moves);
            assert_equal(&mut grid, &dense, &format!("after move batch {b}"));
        }
    }

    /// `set_positions` (full reposition, still grid-backed) against the
    /// dense oracle.
    #[test]
    fn set_positions_matches_dense_reference(
        initial in proptest::collection::vec(arb_point(), 1..24),
        next in proptest::collection::vec(arb_point(), 1..24),
    ) {
        let initial = positions_of(&initial);
        let n = initial.len();
        // Reuse the initial draw to pad/trim `next` to the same length.
        let mut next = positions_of(&next);
        next.resize(n, initial[0]);
        let mut grid = Medium::new(initial.clone(), RangeModel::paper());
        let mut dense = ReferenceMedium::new(initial, RangeModel::paper());
        grid.set_positions(&next);
        dense.set_positions(&next);
        for tx in 0..n {
            let id = NodeId(tx as u32);
            prop_assert_eq!(grid.effects_of(id), dense.effects_of(id));
        }
    }
}
