//! Radio-level statistics counters.

/// Per-node PHY statistics: what the capture/collision machinery decided.
///
/// These expose the reception-model internals the paper's analysis leans
/// on — physical capture is what lets same-direction chain traffic
/// survive its own hidden terminals (§4.2), and EIFS deferral after
/// undecodable energy is what keeps two-hop neighbours off the
/// SIFS-spaced control frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhyCounters {
    /// Decodable receptions that survived overlapping interference
    /// because the locked frame was ≥ CPThresh stronger (ns-2 capture).
    pub captures: u64,
    /// Decodable receptions corrupted by overlapping interference.
    pub collisions: u64,
    /// Sense-only signals that ended while locked (PHY-RXEND with error):
    /// each one makes the MAC defer EIFS instead of DIFS.
    pub undecoded: u64,
}
