//! Radio-level statistics counters.

/// Per-node PHY statistics: what the capture/collision machinery decided.
///
/// These expose the reception-model internals the paper's analysis leans
/// on — physical capture is what lets same-direction chain traffic
/// survive its own hidden terminals (§4.2), and EIFS deferral after
/// undecodable energy is what keeps two-hop neighbours off the
/// SIFS-spaced control frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhyCounters {
    /// Decodable receptions that survived overlapping interference
    /// because the locked frame was ≥ CPThresh stronger (ns-2 capture).
    pub captures: u64,
    /// Decodable receptions corrupted by overlapping interference.
    pub collisions: u64,
    /// Sense-only signals that ended while locked (PHY-RXEND with error):
    /// each one makes the MAC defer EIFS instead of DIFS.
    pub undecoded: u64,
}

/// Cumulative statistics of the lazy epoch-stamped medium (see
/// `Medium`): how often transmission-time queries found their effect
/// list already exact, provably unchanged, or actually stale.
///
/// `queries = fast-path hits + revalidations + rebuilds` — the fast-path
/// count is the difference. A mobile workload where `rebuilds` stays far
/// below `epoch × nodes` is exactly the regime the lazy medium exists
/// for: most nodes move every tick but transmit rarely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediumCounters {
    /// Global move epoch (one bump per non-empty move batch).
    pub epoch: u64,
    /// `Medium::refresh` calls.
    pub queries: u64,
    /// Queries that paid an O(k) effect-list rebuild.
    pub rebuilds: u64,
    /// Queries whose 3×3 neighborhood carried no newer stamp: marked
    /// current without rebuilding.
    pub revalidations: u64,
}
