//! Wireless physical layer for the multihop 802.11 simulator.
//!
//! Models the paper's radio configuration: a transmission range of 250 m and
//! a carrier-sensing / interference range of 550 m (ns-2's two-ray-ground
//! setup degenerates to exactly these three radii), data rates of 2, 5.5 and
//! 11 Mbit/s with PLCP preamble and all control frames at the 1 Mbit/s basic
//! rate, and a per-node transceiver state machine that decides which
//! overlapping transmissions collide.
//!
//! The crate is *sans-IO*: [`Medium`] answers the static question "who hears
//! a transmission from node X, and how", and [`Transceiver`] consumes
//! signal-start/-end notifications in time order and emits radio events
//! (carrier busy/idle, reception start/end). The event scheduling itself
//! lives in the `mwn` composition crate.

mod counters;
mod energy;
mod grid;
mod medium;
mod position;
mod rate;
mod transceiver;

pub use counters::{MediumCounters, PhyCounters};
pub use energy::{EnergyMeter, EnergyParams};
pub use grid::SpatialGrid;
pub use medium::{Effect, Medium, RangeModel, ReferenceMedium, SignalClass};
pub use position::Position;
pub use rate::{DataRate, PhyTiming};
pub use transceiver::{RadioEvent, Transceiver, TxId};
