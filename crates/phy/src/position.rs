//! Node placement geometry.

use std::fmt;

/// A node position on the plane, in meters.
///
/// # Example
///
/// ```
/// use mwn_phy::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(300.0, 400.0);
/// assert_eq!(a.distance_to(b), 500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position from coordinates in meters.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn new(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "position must be finite");
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Position {
    fn from((x, y): (f64, f64)) -> Self {
        Position::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_zero_to_self() {
        let p = Position::new(12.0, -7.0);
        assert_eq!(p.distance_to(p), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_position_rejected() {
        Position::new(f64::NAN, 0.0);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in -1e4f64..1e4, ay in -1e4f64..1e4,
                                 bx in -1e4f64..1e4, by in -1e4f64..1e4) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(ax in -1e4f64..1e4, ay in -1e4f64..1e4,
                               bx in -1e4f64..1e4, by in -1e4f64..1e4,
                               cx in -1e4f64..1e4, cy in -1e4f64..1e4) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            let c = Position::new(cx, cy);
            prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6);
        }
    }
}
