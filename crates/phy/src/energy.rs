//! Per-node radio energy accounting.
//!
//! The paper argues that TCP Vegas' reduced retransmission count "directly
//! translates in a reduction of power consumption". This module quantifies
//! that claim: the composition layer reports transmit/receive airtime here
//! and the meter integrates power over time.

use mwn_sim::{SimDuration, SimTime};

/// Radio power draw in each state, in watts.
///
/// Defaults are typical IEEE 802.11b WaveLAN card figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Power while transmitting.
    pub tx_watts: f64,
    /// Power while receiving or overhearing.
    pub rx_watts: f64,
    /// Power while idle.
    pub idle_watts: f64,
}

impl EnergyParams {
    /// Typical 802.11b card: 1.4 W transmit, 0.9 W receive, 0.74 W idle.
    pub fn wavelan() -> Self {
        EnergyParams {
            tx_watts: 1.4,
            rx_watts: 0.9,
            idle_watts: 0.74,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::wavelan()
    }
}

/// Accumulates radio airtime for one node and converts it to joules.
///
/// # Example
///
/// ```
/// use mwn_phy::{EnergyMeter, EnergyParams};
/// use mwn_sim::{SimDuration, SimTime};
///
/// let mut m = EnergyMeter::new(EnergyParams::wavelan());
/// m.add_tx(SimDuration::from_secs(1));
/// m.add_rx(SimDuration::from_secs(2));
/// let joules = m.consumed(SimTime::ZERO + SimDuration::from_secs(10));
/// // 1s tx + 2s rx + 7s idle
/// assert!((joules - (1.4 + 2.0 * 0.9 + 7.0 * 0.74)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    params: EnergyParams,
    tx_time: SimDuration,
    rx_time: SimDuration,
}

impl EnergyMeter {
    /// Creates a meter with the given power parameters.
    pub fn new(params: EnergyParams) -> Self {
        EnergyMeter {
            params,
            tx_time: SimDuration::ZERO,
            rx_time: SimDuration::ZERO,
        }
    }

    /// Records transmit airtime.
    pub fn add_tx(&mut self, d: SimDuration) {
        self.tx_time += d;
    }

    /// Records receive/overhear airtime.
    pub fn add_rx(&mut self, d: SimDuration) {
        self.rx_time += d;
    }

    /// Total transmit airtime so far.
    pub fn tx_time(&self) -> SimDuration {
        self.tx_time
    }

    /// Total receive airtime so far.
    pub fn rx_time(&self) -> SimDuration {
        self.rx_time
    }

    /// Total energy consumed (joules) by time `now`, counting all
    /// non-tx/rx time as idle.
    ///
    /// If recorded airtime exceeds `now` (overlapping receive intervals),
    /// idle time is clamped to zero rather than going negative.
    pub fn consumed(&self, now: SimTime) -> f64 {
        let total = now.saturating_duration_since(SimTime::ZERO);
        let busy = self.tx_time + self.rx_time;
        let idle = total.saturating_sub(busy);
        self.tx_time.as_secs_f64() * self.params.tx_watts
            + self.rx_time.as_secs_f64() * self.params.rx_watts
            + idle.as_secs_f64() * self.params.idle_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_only_node_draws_idle_power() {
        let m = EnergyMeter::new(EnergyParams::wavelan());
        let j = m.consumed(SimTime::ZERO + SimDuration::from_secs(100));
        assert!((j - 74.0).abs() < 1e-9);
    }

    #[test]
    fn idle_clamped_when_airtime_overlaps() {
        let mut m = EnergyMeter::new(EnergyParams::wavelan());
        m.add_rx(SimDuration::from_secs(10)); // more than elapsed
        let j = m.consumed(SimTime::ZERO + SimDuration::from_secs(5));
        assert!((j - 9.0).abs() < 1e-9); // 10s rx, no negative idle
    }

    #[test]
    fn accumulates() {
        let mut m = EnergyMeter::new(EnergyParams::wavelan());
        m.add_tx(SimDuration::from_millis(500));
        m.add_tx(SimDuration::from_millis(500));
        assert_eq!(m.tx_time(), SimDuration::from_secs(1));
        assert_eq!(m.rx_time(), SimDuration::ZERO);
    }
}
