//! The shared wireless medium: who hears whom, and how.

use mwn_pkt::NodeId;
use mwn_sim::SimDuration;

use crate::position::Position;

/// Speed of light, m/s, for propagation delays.
const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// The three-radius propagation model of the paper.
///
/// ns-2's two-ray-ground configuration with the paper's parameters yields
/// exactly three fixed radii: frames decode within `tx_range`, raise carrier
/// sense within `cs_range`, and corrupt concurrent receptions within
/// `interference_range`.
///
/// # Example
///
/// ```
/// use mwn_phy::RangeModel;
///
/// let m = RangeModel::paper();
/// assert_eq!(m.tx_range, 250.0);
/// assert_eq!(m.cs_range, 550.0);
/// assert_eq!(m.interference_range, 550.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeModel {
    /// Distance within which frames are decodable (m).
    pub tx_range: f64,
    /// Distance within which energy is sensed (physical carrier sense) (m).
    pub cs_range: f64,
    /// Distance within which a transmission corrupts a concurrent
    /// reception (m).
    pub interference_range: f64,
    /// Friis → two-ray-ground crossover distance (m); received power falls
    /// as d⁻² below it and d⁻⁴ beyond, matching ns-2's default antennas.
    pub crossover: f64,
    /// Capture threshold (ns-2's `CPThresh_`, a linear power ratio): a
    /// locked reception survives interference at least this much weaker.
    /// `None` disables capture — any overlap corrupts.
    pub capture_threshold: Option<f64>,
}

impl RangeModel {
    /// The paper's configuration: 250 m transmission range, 550 m carrier
    /// sensing and interference range, two-ray-ground propagation with a
    /// 226 m crossover and 10× capture (ns-2 defaults).
    pub fn paper() -> Self {
        RangeModel {
            tx_range: 250.0,
            cs_range: 550.0,
            interference_range: 550.0,
            crossover: 226.0,
            capture_threshold: Some(10.0),
        }
    }

    /// The same ranges with capture disabled (every overlapping
    /// transmission within interference range corrupts) — the
    /// conservative model, used by the capture ablation bench.
    pub fn without_capture() -> Self {
        RangeModel {
            capture_threshold: None,
            ..Self::paper()
        }
    }

    /// Relative received power at distance `d` (arbitrary linear units):
    /// Friis `d⁻²` up to the crossover, two-ray-ground `d⁻⁴` beyond,
    /// continuous at the crossover.
    pub fn rel_power(&self, d: f64) -> f64 {
        let d = d.max(1.0); // clamp: co-located nodes saturate
        if d <= self.crossover {
            d.powi(-2)
        } else {
            self.crossover.powi(2) * d.powi(-4)
        }
    }

    /// Classifies a signal crossing distance `d`, or `None` if the signal
    /// is too weak to matter at all.
    pub fn classify(&self, d: f64) -> Option<SignalClass> {
        let decodable = d <= self.tx_range;
        let senses = d <= self.cs_range || decodable;
        let interferes = d <= self.interference_range || decodable;
        if decodable || senses || interferes {
            Some(SignalClass {
                decodable,
                senses,
                interferes,
                power: self.rel_power(d),
            })
        } else {
            None
        }
    }
}

impl Default for RangeModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// How a signal from a particular transmitter appears at a particular
/// receiver. Fixed per node pair in a static network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalClass {
    /// The receiver can decode the frame (absent collisions).
    pub decodable: bool,
    /// The receiver's physical carrier sense reports the medium busy.
    pub senses: bool,
    /// The signal may corrupt a concurrent reception at this receiver
    /// (subject to the capture threshold).
    pub interferes: bool,
    /// Relative received power (see [`RangeModel::rel_power`]).
    pub power: f64,
}

/// The static wireless medium: node positions plus the range model, with
/// precomputed per-transmitter effect lists.
///
/// # Example
///
/// ```
/// use mwn_phy::{Medium, Position, RangeModel};
/// use mwn_pkt::NodeId;
///
/// // 3-node chain, 200 m spacing: node 0 decodes at node 1, senses at 2.
/// let positions = vec![
///     Position::new(0.0, 0.0),
///     Position::new(200.0, 0.0),
///     Position::new(400.0, 0.0),
/// ];
/// let medium = Medium::new(positions, RangeModel::paper());
/// let fx = medium.effects_of(NodeId(0));
/// assert_eq!(fx.len(), 2);
/// assert!(fx[0].class.decodable);   // node 1
/// assert!(!fx[1].class.decodable);  // node 2: senses only
/// assert!(fx[1].class.senses);
/// ```
#[derive(Debug, Clone)]
pub struct Medium {
    positions: Vec<Position>,
    ranges: RangeModel,
    /// `effects[tx]` lists every node affected by a transmission from `tx`,
    /// ordered by node id.
    effects: Vec<Vec<Effect>>,
}

/// One receiver affected by a given transmitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Effect {
    /// The affected node.
    pub node: NodeId,
    /// How the signal appears there.
    pub class: SignalClass,
    /// Propagation delay from transmitter to this node.
    pub delay: SimDuration,
}

impl Medium {
    /// Builds the medium and precomputes all pairwise effects.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn new(positions: Vec<Position>, ranges: RangeModel) -> Self {
        assert!(!positions.is_empty(), "medium needs at least one node");
        let mut medium = Medium {
            positions,
            ranges,
            effects: Vec::new(),
        };
        medium.recompute();
        medium
    }

    /// Moves the nodes to new positions and recomputes all pairwise
    /// effects (used by mobility models). Signals already in flight keep
    /// the classification they were launched with — an accepted
    /// approximation for node speeds far below frame airtimes.
    ///
    /// # Panics
    ///
    /// Panics if the number of positions changes.
    pub fn set_positions(&mut self, positions: &[Position]) {
        assert_eq!(
            positions.len(),
            self.positions.len(),
            "node count is fixed for the lifetime of the medium"
        );
        self.positions.copy_from_slice(positions);
        self.recompute();
    }

    /// Rebuilds every per-transmitter effect list in place. The outer vector
    /// and each inner buffer are reused, so a mobility tick costs no
    /// allocations once the buffers have grown to their working size.
    fn recompute(&mut self) {
        let n = self.positions.len();
        self.effects.resize_with(n, Vec::new);
        for tx in 0..n {
            let bucket = &mut self.effects[tx];
            bucket.clear();
            for rx in 0..n {
                if rx == tx {
                    continue;
                }
                let d = self.positions[tx].distance_to(self.positions[rx]);
                if let Some(class) = self.ranges.classify(d) {
                    bucket.push(Effect {
                        node: NodeId(rx as u32),
                        class,
                        delay: SimDuration::from_secs_f64(d / SPEED_OF_LIGHT),
                    });
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the medium has no nodes (never: `new` requires one).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Node positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// The configured range model.
    pub fn ranges(&self) -> RangeModel {
        self.ranges
    }

    /// Every node affected by a transmission from `tx`, with classification
    /// and propagation delay.
    pub fn effects_of(&self, tx: NodeId) -> &[Effect] {
        &self.effects[tx.index()]
    }

    /// `true` if `a` can decode frames transmitted by `b` (symmetric in
    /// this model).
    pub fn in_tx_range(&self, a: NodeId, b: NodeId) -> bool {
        self.positions[a.index()].distance_to(self.positions[b.index()]) <= self.ranges.tx_range
    }

    /// Ids of nodes within transmission range of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.effects[node.index()]
            .iter()
            .filter(|e| e.class.decodable)
            .map(|e| e.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, spacing: f64) -> Medium {
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect();
        Medium::new(positions, RangeModel::paper())
    }

    #[test]
    fn classify_ranges() {
        let m = RangeModel::paper();
        let c = m.classify(100.0).unwrap();
        assert!(c.decodable && c.senses && c.interferes);
        let c = m.classify(400.0).unwrap();
        assert!(!c.decodable && c.senses && c.interferes);
        assert!(m.classify(600.0).is_none());
        // Boundary cases are inclusive.
        assert!(m.classify(250.0).unwrap().decodable);
        assert!(!m.classify(250.1).unwrap().decodable);
        assert!(m.classify(550.0).unwrap().senses);
    }

    #[test]
    fn paper_chain_hidden_terminal_geometry() {
        // 8 nodes, 200 m apart: the canonical chain of Fig 1.
        let m = chain(8, 200.0);
        // Node 3 (600 m from node 0) cannot sense node 0's transmission...
        assert!(!m.effects_of(NodeId(0)).iter().any(|e| e.node == NodeId(3)));
        // ...but interferes at node 1 (400 m away): the hidden terminal.
        let e = m
            .effects_of(NodeId(3))
            .iter()
            .find(|e| e.node == NodeId(1))
            .expect("node 3 reaches node 1");
        assert!(e.class.interferes && !e.class.decodable);
        // Adjacent nodes decode each other.
        assert!(m.in_tx_range(NodeId(0), NodeId(1)));
        // Two-hop nodes (400 m) sense but cannot decode.
        assert!(!m.in_tx_range(NodeId(0), NodeId(2)));
    }

    #[test]
    fn neighbors_in_chain() {
        let m = chain(5, 200.0);
        let n: Vec<NodeId> = m.neighbors(NodeId(2)).collect();
        assert_eq!(n, vec![NodeId(1), NodeId(3)]);
        let n: Vec<NodeId> = m.neighbors(NodeId(0)).collect();
        assert_eq!(n, vec![NodeId(1)]);
    }

    #[test]
    fn propagation_delay_is_positive_and_small() {
        let m = chain(2, 200.0);
        let e = &m.effects_of(NodeId(0))[0];
        // 200 m at light speed ≈ 667 ns.
        assert!(e.delay.as_nanos() > 600 && e.delay.as_nanos() < 700);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_medium_rejected() {
        Medium::new(vec![], RangeModel::paper());
    }

    #[test]
    fn effects_exclude_self() {
        let m = chain(3, 200.0);
        for i in 0..3u32 {
            assert!(m.effects_of(NodeId(i)).iter().all(|e| e.node != NodeId(i)));
        }
    }
}

#[cfg(test)]
mod mobility_tests {
    use super::*;

    #[test]
    fn set_positions_recomputes_effects() {
        let mut m = Medium::new(
            vec![Position::new(0.0, 0.0), Position::new(200.0, 0.0)],
            RangeModel::paper(),
        );
        assert!(m.in_tx_range(NodeId(0), NodeId(1)));
        // Node 1 walks out of decode range but stays sensed.
        m.set_positions(&[Position::new(0.0, 0.0), Position::new(400.0, 0.0)]);
        assert!(!m.in_tx_range(NodeId(0), NodeId(1)));
        assert!(m.effects_of(NodeId(0)).iter().any(|e| e.class.senses));
        // And fully out of range.
        m.set_positions(&[Position::new(0.0, 0.0), Position::new(900.0, 0.0)]);
        assert!(m.effects_of(NodeId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "node count is fixed")]
    fn node_count_change_rejected() {
        let mut m = Medium::new(vec![Position::new(0.0, 0.0)], RangeModel::paper());
        m.set_positions(&[Position::new(0.0, 0.0), Position::new(1.0, 0.0)]);
    }
}
