//! The shared wireless medium: who hears whom, and how.

use mwn_pkt::NodeId;
use mwn_sim::{FxHashMap, SimDuration};

use crate::counters::MediumCounters;
use crate::grid::SpatialGrid;
use crate::position::Position;

/// Speed of light, m/s, for propagation delays.
const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// The three-radius propagation model of the paper.
///
/// ns-2's two-ray-ground configuration with the paper's parameters yields
/// exactly three fixed radii: frames decode within `tx_range`, raise carrier
/// sense within `cs_range`, and corrupt concurrent receptions within
/// `interference_range`.
///
/// # Example
///
/// ```
/// use mwn_phy::RangeModel;
///
/// let m = RangeModel::paper();
/// assert_eq!(m.tx_range, 250.0);
/// assert_eq!(m.cs_range, 550.0);
/// assert_eq!(m.interference_range, 550.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeModel {
    /// Distance within which frames are decodable (m).
    pub tx_range: f64,
    /// Distance within which energy is sensed (physical carrier sense) (m).
    pub cs_range: f64,
    /// Distance within which a transmission corrupts a concurrent
    /// reception (m).
    pub interference_range: f64,
    /// Friis → two-ray-ground crossover distance (m); received power falls
    /// as d⁻² below it and d⁻⁴ beyond, matching ns-2's default antennas.
    pub crossover: f64,
    /// Capture threshold (ns-2's `CPThresh_`, a linear power ratio): a
    /// locked reception survives interference at least this much weaker.
    /// `None` disables capture — any overlap corrupts.
    pub capture_threshold: Option<f64>,
}

impl RangeModel {
    /// The paper's configuration: 250 m transmission range, 550 m carrier
    /// sensing and interference range, two-ray-ground propagation with a
    /// 226 m crossover and 10× capture (ns-2 defaults).
    pub fn paper() -> Self {
        RangeModel {
            tx_range: 250.0,
            cs_range: 550.0,
            interference_range: 550.0,
            crossover: 226.0,
            capture_threshold: Some(10.0),
        }
    }

    /// The same ranges with capture disabled (every overlapping
    /// transmission within interference range corrupts) — the
    /// conservative model, used by the capture ablation bench.
    pub fn without_capture() -> Self {
        RangeModel {
            capture_threshold: None,
            ..Self::paper()
        }
    }

    /// Checks the geometric invariants every consumer of the model relies
    /// on. [`Medium::new`] calls this, so a custom model that would
    /// silently produce inconsistent [`RangeModel::classify`] results
    /// (e.g. frames decodable beyond carrier sense, so a transmission is
    /// received where it was never sensed) is rejected up front.
    ///
    /// # Panics
    ///
    /// Panics unless all ranges are positive and finite,
    /// `tx_range ≤ min(cs_range, interference_range)`, `crossover > 0`,
    /// and `capture_threshold > 1` when set (a ratio ≤ 1 would let a
    /// signal capture over interference at least as strong as itself).
    pub fn validate(&self) {
        assert!(
            self.tx_range.is_finite() && self.tx_range > 0.0,
            "tx_range must be positive and finite"
        );
        assert!(
            self.cs_range.is_finite() && self.interference_range.is_finite(),
            "cs/interference ranges must be finite"
        );
        assert!(
            self.tx_range <= self.cs_range && self.tx_range <= self.interference_range,
            "tx_range ({}) must not exceed cs_range ({}) or interference_range ({}): \
             frames would decode where they are neither sensed nor interfering",
            self.tx_range,
            self.cs_range,
            self.interference_range
        );
        assert!(
            self.crossover.is_finite() && self.crossover > 0.0,
            "crossover must be positive and finite"
        );
        if let Some(c) = self.capture_threshold {
            assert!(
                c.is_finite() && c > 1.0,
                "capture_threshold must be a ratio > 1 (got {c})"
            );
        }
    }

    /// The largest distance at which a transmission has any effect — the
    /// cell size of the medium's spatial grid.
    pub fn max_range(&self) -> f64 {
        self.tx_range
            .max(self.cs_range)
            .max(self.interference_range)
    }

    /// Relative received power at distance `d` (arbitrary linear units):
    /// Friis `d⁻²` up to the crossover, two-ray-ground `d⁻⁴` beyond,
    /// continuous at the crossover.
    pub fn rel_power(&self, d: f64) -> f64 {
        let d = d.max(1.0); // clamp: co-located nodes saturate
        if d <= self.crossover {
            d.powi(-2)
        } else {
            self.crossover.powi(2) * d.powi(-4)
        }
    }

    /// Classifies a signal crossing distance `d`, or `None` if the signal
    /// is too weak to matter at all.
    pub fn classify(&self, d: f64) -> Option<SignalClass> {
        let decodable = d <= self.tx_range;
        let senses = d <= self.cs_range || decodable;
        let interferes = d <= self.interference_range || decodable;
        if decodable || senses || interferes {
            Some(SignalClass {
                decodable,
                senses,
                interferes,
                power: self.rel_power(d),
            })
        } else {
            None
        }
    }
}

impl Default for RangeModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// How a signal from a particular transmitter appears at a particular
/// receiver. Fixed per node pair in a static network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalClass {
    /// The receiver can decode the frame (absent collisions).
    pub decodable: bool,
    /// The receiver's physical carrier sense reports the medium busy.
    pub senses: bool,
    /// The signal may corrupt a concurrent reception at this receiver
    /// (subject to the capture threshold).
    pub interferes: bool,
    /// Relative received power (see [`RangeModel::rel_power`]).
    pub power: f64,
}

/// The shared wireless medium: node positions plus the range model, with
/// per-transmitter effect lists rebuilt *lazily*.
///
/// Effect lists are derived through a uniform [`SpatialGrid`] with cell
/// size [`RangeModel::max_range`], so construction costs O(n·k) for k =
/// nodes per 3×3 cell neighborhood (instead of the dense O(n²)).
///
/// # Epoch-stamped laziness
///
/// [`Medium::move_nodes`] is O(moved): it only updates positions,
/// relocates grid occupants, bumps a global **epoch** and stamps the
/// touched cells with it. Effect lists are *not* recomputed at move
/// time. Instead each node carries the epoch its list was last valid at
/// ([`Medium::refresh`] recomputes on demand): a list built at epoch *e*
/// is still exact iff no cell in the node's current 3×3 neighborhood
/// carries a stamp `> e` — every node that moved into, out of, or within
/// the neighborhood (including the node itself) stamped a neighborhood
/// cell, because the cell side equals `max_range` and effect lists only
/// ever contain nodes within `max_range`. At city scale most nodes move
/// every tick but transmit rarely, so almost all recompute work
/// vanishes; correctness is unchanged because link sets depend only on
/// *current* positions at query time (pinned by the lazy-vs-eager
/// differentials against [`ReferenceMedium`]).
///
/// The grid is a pure acceleration structure: candidate receivers still
/// pass the exact [`RangeModel::classify`] distance tests and each
/// effect list stays sorted by node id, so results are bit-identical to
/// the dense scan (checked against [`ReferenceMedium`] by a differential
/// proptest).
///
/// # Example
///
/// ```
/// use mwn_phy::{Medium, Position, RangeModel};
/// use mwn_pkt::NodeId;
///
/// // 3-node chain, 200 m spacing: node 0 decodes at node 1, senses at 2.
/// let positions = vec![
///     Position::new(0.0, 0.0),
///     Position::new(200.0, 0.0),
///     Position::new(400.0, 0.0),
/// ];
/// let medium = Medium::new(positions, RangeModel::paper());
/// let fx = medium.effects_of(NodeId(0));
/// assert_eq!(fx.len(), 2);
/// assert!(fx[0].class.decodable);   // node 1
/// assert!(!fx[1].class.decodable);  // node 2: senses only
/// assert!(fx[1].class.senses);
/// ```
#[derive(Debug, Clone)]
pub struct Medium {
    positions: Vec<Position>,
    ranges: RangeModel,
    /// `effects[tx]` lists every node affected by a transmission from `tx`,
    /// ordered by node id. Exact as of epoch `node_epoch[tx]`.
    effects: Vec<Vec<Effect>>,
    /// Node index per cell; cell size = `ranges.max_range()`.
    grid: SpatialGrid,
    /// Reusable candidate-id buffer (steady state allocates nothing).
    scratch: Vec<u32>,
    /// Global move epoch: bumped once per non-empty [`Medium::move_nodes`]
    /// batch.
    epoch: u64,
    /// Epoch at which each node's effect list was last known exact.
    node_epoch: Vec<u64>,
    /// Last epoch any occupant of a cell moved into, out of, or within
    /// it. Entries persist after a cell empties — a stale reader must
    /// still see that its neighborhood changed. Bounded by the number of
    /// cells ever occupied.
    stamps: FxHashMap<(i64, i64), u64>,
    /// Cumulative lazy-path statistics (see [`MediumCounters`]).
    counters: MediumCounters,
    /// Rebuilds and wall seconds accrued since the last
    /// [`Medium::take_lazy_profile`] drain.
    pending_rebuilds: u64,
    pending_secs: f64,
}

/// One receiver affected by a given transmitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Effect {
    /// The affected node.
    pub node: NodeId,
    /// How the signal appears there.
    pub class: SignalClass,
    /// Propagation delay from transmitter to this node.
    pub delay: SimDuration,
}

impl Medium {
    /// Builds the medium and precomputes all effect lists through the
    /// spatial grid.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `ranges` is geometrically
    /// inconsistent (see [`RangeModel::validate`]).
    pub fn new(positions: Vec<Position>, ranges: RangeModel) -> Self {
        assert!(!positions.is_empty(), "medium needs at least one node");
        ranges.validate();
        let grid = SpatialGrid::build(ranges.max_range(), &positions);
        let n = positions.len();
        let mut medium = Medium {
            positions,
            ranges,
            effects: Vec::new(),
            grid,
            scratch: Vec::new(),
            epoch: 0,
            node_epoch: vec![0; n],
            stamps: FxHashMap::default(),
            counters: MediumCounters::default(),
            pending_rebuilds: 0,
            pending_secs: 0.0,
        };
        medium.recompute_all();
        medium
    }

    /// Moves the nodes to new positions and recomputes every effect list
    /// (used when a caller does not track which nodes moved; mobility
    /// ticks use the incremental [`Medium::move_nodes`]). Signals already
    /// in flight keep the classification they were launched with — an
    /// accepted approximation for node speeds far below frame airtimes.
    ///
    /// # Panics
    ///
    /// Panics if the number of positions changes.
    pub fn set_positions(&mut self, positions: &[Position]) {
        assert_eq!(
            positions.len(),
            self.positions.len(),
            "node count is fixed for the lifetime of the medium"
        );
        self.positions.copy_from_slice(positions);
        self.grid = SpatialGrid::build(self.ranges.max_range(), &self.positions);
        self.recompute_all();
    }

    /// Applies a batch of position updates lazily, in O(moved): each
    /// mover is relocated in the grid, its old and new cells are stamped
    /// with a freshly bumped epoch, and *no* effect list is recomputed —
    /// stale lists are rebuilt on demand by [`Medium::refresh`] when a
    /// transmission (or carrier-sense fan-out) actually reads them.
    ///
    /// Duplicate ids in `moves` are applied in order (last position
    /// wins). Signals already in flight keep the classification they
    /// were launched with, exactly as [`Medium::set_positions`].
    ///
    /// # Panics
    ///
    /// Panics if a move references a node outside the medium.
    pub fn move_nodes(&mut self, moves: &[(NodeId, Position)]) {
        if moves.is_empty() {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        for &(id, new) in moves {
            assert!(
                id.index() < self.positions.len(),
                "move references node {id:?} outside the medium"
            );
            let old = self.positions[id.index()];
            let old_cell = self.grid.cell_of(old);
            let new_cell = self.grid.cell_of(new);
            self.grid.relocate(id.raw(), old, new);
            self.positions[id.index()] = new;
            // Stamp the old cell even for a within-cell move: the
            // distances to every neighbor changed.
            self.stamps.insert(old_cell, epoch);
            if new_cell != old_cell {
                self.stamps.insert(new_cell, epoch);
            }
        }
    }

    /// Brings `tx`'s effect list up to date and returns it — the hot-path
    /// accessor for transmission-time fan-out. Three tiers, cheapest
    /// first: a node already at the current epoch returns immediately; a
    /// node whose current 3×3 cell neighborhood carries no stamp newer
    /// than its list is *revalidated* (marked current without a rebuild,
    /// at most one 9-cell stamp scan per node per epoch); only a node
    /// whose neighborhood actually changed pays the O(k) rebuild.
    pub fn refresh(&mut self, tx: NodeId) -> &[Effect] {
        let i = tx.index();
        self.counters.queries += 1;
        if self.node_epoch[i] != self.epoch {
            if self.max_stamp_near(self.positions[i]) <= self.node_epoch[i] {
                self.counters.revalidations += 1;
            } else {
                let started = std::time::Instant::now();
                let (bucket, scratch) = self.take_buffers(i);
                let (bucket, scratch) = self.fill_effects(i, bucket, scratch);
                self.put_buffers(i, bucket, scratch);
                self.counters.rebuilds += 1;
                self.pending_rebuilds += 1;
                self.pending_secs += started.elapsed().as_secs_f64();
            }
            self.node_epoch[i] = self.epoch;
        }
        &self.effects[i]
    }

    /// Brings every effect list up to date (the eager mode of the
    /// lazy-vs-eager differential, and the escape hatch for callers that
    /// want to iterate lists through `&self` after moves).
    pub fn refresh_all(&mut self) {
        for i in 0..self.positions.len() {
            self.refresh(NodeId(i as u32));
        }
    }

    /// `true` if `tx`'s effect list is exact for the current positions —
    /// i.e. [`Medium::effects_of`] may be read without a
    /// [`Medium::refresh`].
    pub fn is_fresh(&self, tx: NodeId) -> bool {
        let i = tx.index();
        self.node_epoch[i] == self.epoch
            || self.max_stamp_near(self.positions[i]) <= self.node_epoch[i]
    }

    /// The largest stamp over the 3×3 cell neighborhood of `p` (0 if no
    /// occupant of those cells ever moved).
    fn max_stamp_near(&self, p: Position) -> u64 {
        let (cx, cy) = self.grid.cell_of(p);
        let mut max = 0;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(&s) = self.stamps.get(&(cx + dx, cy + dy)) {
                    max = max.max(s);
                }
            }
        }
        max
    }

    /// The current move epoch (0 until the first [`Medium::move_nodes`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative lazy-path statistics since construction.
    pub fn counters(&self) -> MediumCounters {
        MediumCounters {
            epoch: self.epoch,
            ..self.counters
        }
    }

    /// Drains the `(rebuilds, wall seconds)` accrued by lazy rebuilds
    /// since the last drain — the host feeds these into its engine
    /// profile's `medium_lazy` bucket.
    pub fn take_lazy_profile(&mut self) -> (u64, f64) {
        let drained = (self.pending_rebuilds, self.pending_secs);
        self.pending_rebuilds = 0;
        self.pending_secs = 0.0;
        drained
    }

    /// Rebuilds every per-transmitter effect list in place via the grid,
    /// visiting each unordered pair once: distance, class and delay are
    /// symmetric (squaring the coordinate deltas erases their sign), so
    /// one exact test feeds both directions' effect lists — bit-identical
    /// to two independent per-transmitter scans at half the distance
    /// work. Buffers are reused, so a rebuild costs no allocations once
    /// they have grown to their working size.
    fn recompute_all(&mut self) {
        let n = self.positions.len();
        self.effects.resize_with(n, Vec::new);
        for bucket in &mut self.effects {
            bucket.clear();
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let limit = self.ranges.max_range() + 1e-6;
        let limit2 = limit * limit;
        for a in 0..n {
            let pa = self.positions[a];
            scratch.clear();
            self.grid.candidates_near(pa, &mut scratch);
            for &rx in &scratch {
                let b = rx as usize;
                if b <= a {
                    continue; // each unordered pair exactly once
                }
                let pb = self.positions[b];
                let d2 = (pa.x - pb.x).powi(2) + (pa.y - pb.y).powi(2);
                if d2 > limit2 {
                    continue;
                }
                let d = d2.sqrt();
                if let Some(class) = self.ranges.classify(d) {
                    let delay = SimDuration::from_secs_f64(d / SPEED_OF_LIGHT);
                    self.effects[a].push(Effect {
                        node: NodeId(rx),
                        class,
                        delay,
                    });
                    self.effects[b].push(Effect {
                        node: NodeId(a as u32),
                        class,
                        delay,
                    });
                }
            }
        }
        for bucket in &mut self.effects {
            bucket.sort_unstable_by_key(|e| e.node.raw());
        }
        self.scratch = scratch;
        // A full rebuild reflects every position: all lists are exact at
        // the current epoch. (Stamps never exceed the epoch, so the
        // validity check holds without clearing them.)
        self.node_epoch.fill(self.epoch);
    }

    fn take_buffers(&mut self, tx: usize) -> (Vec<Effect>, Vec<u32>) {
        (
            std::mem::take(&mut self.effects[tx]),
            std::mem::take(&mut self.scratch),
        )
    }

    fn put_buffers(&mut self, tx: usize, bucket: Vec<Effect>, scratch: Vec<u32>) {
        self.effects[tx] = bucket;
        self.scratch = scratch;
    }

    /// Recomputes `tx`'s effect list from its grid neighborhood into
    /// `bucket`. Candidates beyond `max_range` (plus a 1 µm guard for the
    /// inclusive boundary) are rejected on the squared distance, skipping
    /// the sqrt for the ~⅔ of each 3×3 neighborhood that lies outside the
    /// range circle; survivors pass the exact [`RangeModel::classify`]
    /// test on `sqrt(d²)` — bit-identical to [`Position::distance_to`],
    /// which evaluates the same expression. The finished list is sorted
    /// by node id, so ordering matches a dense 0..n scan.
    fn fill_effects(
        &self,
        tx: usize,
        mut bucket: Vec<Effect>,
        mut scratch: Vec<u32>,
    ) -> (Vec<Effect>, Vec<u32>) {
        bucket.clear();
        scratch.clear();
        let pos = self.positions[tx];
        self.grid.candidates_near(pos, &mut scratch);
        let limit = self.ranges.max_range() + 1e-6;
        let limit2 = limit * limit;
        for &rx in &scratch {
            if rx as usize == tx {
                continue;
            }
            let other = self.positions[rx as usize];
            let d2 = (pos.x - other.x).powi(2) + (pos.y - other.y).powi(2);
            if d2 > limit2 {
                continue;
            }
            let d = d2.sqrt();
            if let Some(class) = self.ranges.classify(d) {
                bucket.push(Effect {
                    node: NodeId(rx),
                    class,
                    delay: SimDuration::from_secs_f64(d / SPEED_OF_LIGHT),
                });
            }
        }
        bucket.sort_unstable_by_key(|e| e.node.raw());
        (bucket, scratch)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the medium has no nodes (never: `new` requires one).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Node positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// The configured range model.
    pub fn ranges(&self) -> RangeModel {
        self.ranges
    }

    /// Every node affected by a transmission from `tx`, with classification
    /// and propagation delay.
    ///
    /// Reads the stored list without refreshing it: exact for a static
    /// medium (no moves ever), or after [`Medium::refresh`] /
    /// [`Medium::refresh_all`]. Hosts driving mobility use
    /// [`Medium::refresh`] instead; a stale read trips a debug
    /// assertion.
    pub fn effects_of(&self, tx: NodeId) -> &[Effect] {
        debug_assert!(
            self.is_fresh(tx),
            "effects_of({tx:?}) on a stale list; call refresh() after move_nodes()"
        );
        &self.effects[tx.index()]
    }

    /// `true` if `a` can decode frames transmitted by `b` (symmetric in
    /// this model).
    pub fn in_tx_range(&self, a: NodeId, b: NodeId) -> bool {
        self.positions[a.index()].distance_to(self.positions[b.index()]) <= self.ranges.tx_range
    }

    /// Ids of nodes within transmission range of `node`. Reads the stored
    /// effect list, with the same freshness contract as
    /// [`Medium::effects_of`].
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        debug_assert!(
            self.is_fresh(node),
            "neighbors({node:?}) on a stale list; call refresh() after move_nodes()"
        );
        self.effects[node.index()]
            .iter()
            .filter(|e| e.class.decodable)
            .map(|e| e.node)
    }
}

/// The dense all-pairs medium the spatial grid replaced, kept as the
/// oracle for differential tests (mirroring `ReferenceEventQueue` in
/// `mwn-sim`): every [`Medium`] query must return bit-identical results
/// to this O(n²) implementation for any position set and move sequence.
///
/// Not used on any hot path — construction and every update cost O(n²).
#[derive(Debug, Clone)]
pub struct ReferenceMedium {
    positions: Vec<Position>,
    ranges: RangeModel,
    effects: Vec<Vec<Effect>>,
}

impl ReferenceMedium {
    /// Builds the reference medium with a dense all-pairs scan.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `ranges` is invalid, exactly as
    /// [`Medium::new`].
    pub fn new(positions: Vec<Position>, ranges: RangeModel) -> Self {
        assert!(!positions.is_empty(), "medium needs at least one node");
        ranges.validate();
        let mut medium = ReferenceMedium {
            positions,
            ranges,
            effects: Vec::new(),
        };
        medium.recompute();
        medium
    }

    /// Moves nodes and recomputes all pairwise effects densely; the
    /// oracle counterpart of [`Medium::move_nodes`].
    ///
    /// # Panics
    ///
    /// Panics if a move references a node outside the medium.
    pub fn move_nodes(&mut self, moves: &[(NodeId, Position)]) {
        for &(id, new) in moves {
            assert!(
                id.index() < self.positions.len(),
                "move references node {id:?} outside the medium"
            );
            self.positions[id.index()] = new;
        }
        self.recompute();
    }

    /// Replaces every position and recomputes densely; the oracle
    /// counterpart of [`Medium::set_positions`].
    ///
    /// # Panics
    ///
    /// Panics if the number of positions changes.
    pub fn set_positions(&mut self, positions: &[Position]) {
        assert_eq!(
            positions.len(),
            self.positions.len(),
            "node count is fixed for the lifetime of the medium"
        );
        self.positions.copy_from_slice(positions);
        self.recompute();
    }

    /// Dense single-transmitter scan over arbitrary positions — the
    /// per-node oracle for large-field lazy differentials, where a full
    /// O(n²) recompute after every move batch would dominate the test.
    /// Produces exactly what [`ReferenceMedium::effects_of`] would hold
    /// for `tx` if the medium were rebuilt at these positions.
    pub fn effects_from(positions: &[Position], ranges: RangeModel, tx: NodeId) -> Vec<Effect> {
        let mut bucket = Vec::new();
        for rx in 0..positions.len() {
            if rx == tx.index() {
                continue;
            }
            let d = positions[tx.index()].distance_to(positions[rx]);
            if let Some(class) = ranges.classify(d) {
                bucket.push(Effect {
                    node: NodeId(rx as u32),
                    class,
                    delay: SimDuration::from_secs_f64(d / SPEED_OF_LIGHT),
                });
            }
        }
        bucket
    }

    fn recompute(&mut self) {
        let n = self.positions.len();
        self.effects.resize_with(n, Vec::new);
        for tx in 0..n {
            self.effects[tx] = Self::effects_from(&self.positions, self.ranges, NodeId(tx as u32));
        }
    }

    /// Every node affected by a transmission from `tx`, ordered by id.
    pub fn effects_of(&self, tx: NodeId) -> &[Effect] {
        &self.effects[tx.index()]
    }

    /// Node positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, spacing: f64) -> Medium {
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect();
        Medium::new(positions, RangeModel::paper())
    }

    #[test]
    fn classify_ranges() {
        let m = RangeModel::paper();
        let c = m.classify(100.0).unwrap();
        assert!(c.decodable && c.senses && c.interferes);
        let c = m.classify(400.0).unwrap();
        assert!(!c.decodable && c.senses && c.interferes);
        assert!(m.classify(600.0).is_none());
        // Boundary cases are inclusive.
        assert!(m.classify(250.0).unwrap().decodable);
        assert!(!m.classify(250.1).unwrap().decodable);
        assert!(m.classify(550.0).unwrap().senses);
    }

    #[test]
    fn paper_chain_hidden_terminal_geometry() {
        // 8 nodes, 200 m apart: the canonical chain of Fig 1.
        let m = chain(8, 200.0);
        // Node 3 (600 m from node 0) cannot sense node 0's transmission...
        assert!(!m.effects_of(NodeId(0)).iter().any(|e| e.node == NodeId(3)));
        // ...but interferes at node 1 (400 m away): the hidden terminal.
        let e = m
            .effects_of(NodeId(3))
            .iter()
            .find(|e| e.node == NodeId(1))
            .expect("node 3 reaches node 1");
        assert!(e.class.interferes && !e.class.decodable);
        // Adjacent nodes decode each other.
        assert!(m.in_tx_range(NodeId(0), NodeId(1)));
        // Two-hop nodes (400 m) sense but cannot decode.
        assert!(!m.in_tx_range(NodeId(0), NodeId(2)));
    }

    #[test]
    fn neighbors_in_chain() {
        let m = chain(5, 200.0);
        let n: Vec<NodeId> = m.neighbors(NodeId(2)).collect();
        assert_eq!(n, vec![NodeId(1), NodeId(3)]);
        let n: Vec<NodeId> = m.neighbors(NodeId(0)).collect();
        assert_eq!(n, vec![NodeId(1)]);
    }

    #[test]
    fn propagation_delay_is_positive_and_small() {
        let m = chain(2, 200.0);
        let e = &m.effects_of(NodeId(0))[0];
        // 200 m at light speed ≈ 667 ns.
        assert!(e.delay.as_nanos() > 600 && e.delay.as_nanos() < 700);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_medium_rejected() {
        Medium::new(vec![], RangeModel::paper());
    }

    #[test]
    fn effects_exclude_self() {
        let m = chain(3, 200.0);
        for i in 0..3u32 {
            assert!(m.effects_of(NodeId(i)).iter().all(|e| e.node != NodeId(i)));
        }
    }
}

#[cfg(test)]
mod mobility_tests {
    use super::*;

    #[test]
    fn set_positions_recomputes_effects() {
        let mut m = Medium::new(
            vec![Position::new(0.0, 0.0), Position::new(200.0, 0.0)],
            RangeModel::paper(),
        );
        assert!(m.in_tx_range(NodeId(0), NodeId(1)));
        // Node 1 walks out of decode range but stays sensed.
        m.set_positions(&[Position::new(0.0, 0.0), Position::new(400.0, 0.0)]);
        assert!(!m.in_tx_range(NodeId(0), NodeId(1)));
        assert!(m.effects_of(NodeId(0)).iter().any(|e| e.class.senses));
        // And fully out of range.
        m.set_positions(&[Position::new(0.0, 0.0), Position::new(900.0, 0.0)]);
        assert!(m.effects_of(NodeId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "node count is fixed")]
    fn node_count_change_rejected() {
        let mut m = Medium::new(vec![Position::new(0.0, 0.0)], RangeModel::paper());
        m.set_positions(&[Position::new(0.0, 0.0), Position::new(1.0, 0.0)]);
    }

    #[test]
    fn move_nodes_matches_set_positions() {
        let initial = vec![
            Position::new(0.0, 0.0),
            Position::new(200.0, 0.0),
            Position::new(400.0, 0.0),
            Position::new(600.0, 0.0),
        ];
        let mut incremental = Medium::new(initial.clone(), RangeModel::paper());
        let mut rebuilt = Medium::new(initial, RangeModel::paper());
        // Node 1 leaves decode range of 0; node 3 walks next to 0.
        let moves = [
            (NodeId(1), Position::new(200.0, 500.0)),
            (NodeId(3), Position::new(100.0, 0.0)),
        ];
        incremental.move_nodes(&moves);
        let mut positions = rebuilt.positions().to_vec();
        for &(id, p) in &moves {
            positions[id.index()] = p;
        }
        rebuilt.set_positions(&positions);
        for tx in 0..4u32 {
            assert_eq!(
                incremental.refresh(NodeId(tx)).to_vec(),
                rebuilt.effects_of(NodeId(tx)),
                "effect lists diverged for tx {tx}"
            );
        }
    }

    #[test]
    fn move_nodes_applies_duplicate_ids_in_order() {
        let mut m = Medium::new(
            vec![Position::new(0.0, 0.0), Position::new(200.0, 0.0)],
            RangeModel::paper(),
        );
        m.move_nodes(&[
            (NodeId(1), Position::new(5000.0, 0.0)),
            (NodeId(1), Position::new(100.0, 0.0)),
        ]);
        assert_eq!(m.positions()[1], Position::new(100.0, 0.0));
        assert!(m.in_tx_range(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "outside the medium")]
    fn move_of_unknown_node_rejected() {
        let mut m = Medium::new(vec![Position::new(0.0, 0.0)], RangeModel::paper());
        m.move_nodes(&[(NodeId(3), Position::new(1.0, 1.0))]);
    }

    #[test]
    fn co_located_nodes_have_full_mutual_effects() {
        let p = Position::new(123.0, 456.0);
        let m = Medium::new(vec![p, p, p], RangeModel::paper());
        for tx in 0..3u32 {
            let fx = m.effects_of(NodeId(tx));
            assert_eq!(fx.len(), 2);
            for e in fx {
                assert!(e.class.decodable);
                // Distance clamps to 1 m for power, so capture math stays
                // finite even for co-located nodes.
                assert!(e.class.power.is_finite() && e.class.power > 0.0);
                assert_eq!(e.delay, SimDuration::from_secs_f64(0.0));
            }
        }
    }

    #[test]
    fn inclusive_range_boundaries_match_classify() {
        // Receivers exactly at the 250 m and 550 m boundaries: both
        // inclusive, and both must survive the grid's candidate pass.
        let m = Medium::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(250.0, 0.0),
                Position::new(550.0, 0.0),
                Position::new(550.0000001, 100000.0), // far out: no effect
            ],
            RangeModel::paper(),
        );
        let fx = m.effects_of(NodeId(0));
        assert_eq!(fx.len(), 2);
        assert!(fx[0].class.decodable);
        assert!(!fx[1].class.decodable && fx[1].class.senses);
    }

    #[test]
    fn nodes_exactly_on_cell_boundaries_are_not_lost() {
        // Cell size is 550 m: place nodes exactly on multiples of the
        // cell size, where floor() assigns them to the higher cell.
        let m = Medium::new(
            vec![
                Position::new(550.0, 550.0),
                Position::new(1100.0, 550.0),
                Position::new(1100.0, 1100.0),
                Position::new(825.0, 825.0),
            ],
            RangeModel::paper(),
        );
        // Every pairwise distance ≤ 550√2; check against a dense oracle.
        let r = ReferenceMedium::new(m.positions().to_vec(), m.ranges());
        for tx in 0..4u32 {
            assert_eq!(m.effects_of(NodeId(tx)), r.effects_of(NodeId(tx)));
        }
        assert!(m.effects_of(NodeId(3)).iter().all(|e| e.class.senses));
    }
}

#[cfg(test)]
mod lazy_tests {
    use super::*;

    /// Two nodes 200 m apart at the origin plus one node 5 km away:
    /// the far node's 3×3 neighborhood is disjoint from the cluster's.
    fn cluster_and_far() -> Medium {
        Medium::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(200.0, 0.0),
                Position::new(5000.0, 0.0),
            ],
            RangeModel::paper(),
        )
    }

    #[test]
    fn epoch_bumps_once_per_batch() {
        let mut m = cluster_and_far();
        assert_eq!(m.epoch(), 0);
        m.move_nodes(&[
            (NodeId(0), Position::new(0.0, 100.0)),
            (NodeId(1), Position::new(200.0, 100.0)),
        ]);
        assert_eq!(m.epoch(), 1);
        m.move_nodes(&[]);
        assert_eq!(m.epoch(), 1, "empty batch must not invalidate anything");
        m.move_nodes(&[(NodeId(0), Position::new(0.0, 0.0))]);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn refresh_tiers_and_counters() {
        let mut m = cluster_and_far();
        m.move_nodes(&[(NodeId(0), Position::new(0.0, 100.0))]);
        // The mover and its (non-moving) neighbor are both stale; the far
        // node's neighborhood saw no movement.
        assert!(!m.is_fresh(NodeId(0)));
        assert!(!m.is_fresh(NodeId(1)));
        assert!(m.is_fresh(NodeId(2)));
        // Tier 3: stale neighborhoods pay a rebuild.
        let fx = m.refresh(NodeId(0));
        assert_eq!(fx.len(), 1, "node 1 is ~224 m away");
        assert!(fx[0].class.decodable);
        m.refresh(NodeId(1));
        // Tier 2: the far node is revalidated without a rebuild.
        m.refresh(NodeId(2));
        // Tier 1: a second query at the same epoch is a no-op.
        m.refresh(NodeId(2));
        let c = m.counters();
        assert_eq!(c.epoch, 1);
        assert_eq!(c.queries, 4);
        assert_eq!(c.rebuilds, 2);
        assert_eq!(c.revalidations, 1);
    }

    #[test]
    fn take_lazy_profile_drains_rebuild_costs() {
        let mut m = cluster_and_far();
        m.move_nodes(&[(NodeId(0), Position::new(0.0, 100.0))]);
        m.refresh(NodeId(0));
        m.refresh(NodeId(2)); // revalidation: not profiled as a rebuild
        let (rebuilds, secs) = m.take_lazy_profile();
        assert_eq!(rebuilds, 1);
        assert!(secs >= 0.0);
        assert_eq!(m.take_lazy_profile(), (0, 0.0), "drain must reset");
    }

    #[test]
    fn set_positions_marks_everything_fresh() {
        let mut m = cluster_and_far();
        m.move_nodes(&[(NodeId(0), Position::new(0.0, 100.0))]);
        assert!(!m.is_fresh(NodeId(0)));
        let positions = m.positions().to_vec();
        m.set_positions(&positions);
        for i in 0..3u32 {
            assert!(m.is_fresh(NodeId(i)));
            m.effects_of(NodeId(i)); // must not trip the freshness assert
        }
    }

    #[test]
    fn stale_accumulation_refreshes_to_reference() {
        // Many epochs of movement with no intervening refresh: lists must
        // still come back exact against the dense oracle.
        let mut positions: Vec<Position> = (0..25)
            .map(|i| Position::new((i % 5) as f64 * 260.0, (i / 5) as f64 * 260.0))
            .collect();
        let mut m = Medium::new(positions.clone(), RangeModel::paper());
        // Deterministic pseudo-random walk (LCG), 8 ticks.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..8 {
            let moves: Vec<(NodeId, Position)> = (0..25u32)
                .step_by(3)
                .map(|i| {
                    let p = positions[i as usize];
                    let np = Position::new(p.x + rng() * 300.0, p.y + rng() * 300.0);
                    positions[i as usize] = np;
                    (NodeId(i), np)
                })
                .collect();
            m.move_nodes(&moves);
        }
        let r = ReferenceMedium::new(positions, m.ranges());
        for tx in 0..25u32 {
            assert_eq!(
                m.refresh(NodeId(tx)).to_vec(),
                r.effects_of(NodeId(tx)),
                "lazy refresh diverged from dense oracle for tx {tx}"
            );
        }
    }

    #[test]
    fn refresh_all_matches_per_node_refresh() {
        let mut a = cluster_and_far();
        let mut b = a.clone();
        let moves = [
            (NodeId(0), Position::new(100.0, 100.0)),
            (NodeId(2), Position::new(300.0, 0.0)),
        ];
        a.move_nodes(&moves);
        b.move_nodes(&moves);
        a.refresh_all();
        for tx in 0..3u32 {
            assert_eq!(a.effects_of(NodeId(tx)), b.refresh(NodeId(tx)));
        }
    }
}

#[cfg(test)]
mod range_model_validation_tests {
    use super::*;

    #[test]
    fn builtin_models_validate() {
        RangeModel::paper().validate();
        RangeModel::without_capture().validate();
    }

    #[test]
    #[should_panic(expected = "must not exceed cs_range")]
    fn decode_beyond_carrier_sense_rejected() {
        let m = RangeModel {
            tx_range: 600.0,
            ..RangeModel::paper()
        };
        Medium::new(vec![Position::new(0.0, 0.0)], m);
    }

    #[test]
    #[should_panic(expected = "must not exceed cs_range")]
    fn decode_beyond_interference_rejected() {
        RangeModel {
            interference_range: 200.0,
            ..RangeModel::paper()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "crossover must be positive")]
    fn non_positive_crossover_rejected() {
        RangeModel {
            crossover: 0.0,
            ..RangeModel::paper()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "capture_threshold must be a ratio > 1")]
    fn capture_threshold_at_or_below_one_rejected() {
        RangeModel {
            capture_threshold: Some(1.0),
            ..RangeModel::paper()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "tx_range must be positive")]
    fn non_finite_tx_range_rejected() {
        RangeModel {
            tx_range: f64::NAN,
            ..RangeModel::paper()
        }
        .validate();
    }

    #[test]
    fn max_range_is_the_largest_radius() {
        assert_eq!(RangeModel::paper().max_range(), 550.0);
        let m = RangeModel {
            interference_range: 700.0,
            ..RangeModel::paper()
        };
        assert_eq!(m.max_range(), 700.0);
    }
}
