//! Data rates and frame airtime computation.

use std::fmt;

use mwn_sim::SimDuration;

/// A PHY data rate in bits per second.
///
/// # Example
///
/// ```
/// use mwn_phy::DataRate;
///
/// assert_eq!(DataRate::MBPS_2.bits_per_sec(), 2_000_000);
/// assert_eq!(format!("{}", DataRate::MBPS_5_5), "5.5Mbit/s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataRate(u64);

impl DataRate {
    /// 1 Mbit/s — the 802.11 basic rate used for PLCP and control frames.
    pub const MBPS_1: DataRate = DataRate(1_000_000);
    /// 2 Mbit/s (paper's baseline bandwidth).
    pub const MBPS_2: DataRate = DataRate(2_000_000);
    /// 5.5 Mbit/s (802.11b).
    pub const MBPS_5_5: DataRate = DataRate(5_500_000);
    /// 11 Mbit/s (802.11b).
    pub const MBPS_11: DataRate = DataRate(11_000_000);
    /// 24 Mbit/s (802.11g OFDM — the paper's intro motivates bandwidths
    /// beyond 802.11b).
    pub const MBPS_24: DataRate = DataRate(24_000_000);
    /// 54 Mbit/s (802.11g OFDM).
    pub const MBPS_54: DataRate = DataRate(54_000_000);

    /// Creates a rate from raw bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn from_bits_per_sec(bps: u64) -> Self {
        assert!(bps > 0, "data rate must be positive");
        DataRate(bps)
    }

    /// The rate in bits per second.
    pub fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` at this rate (no PLCP overhead).
    pub fn serialize(self, bytes: u32) -> SimDuration {
        SimDuration::for_bits(u64::from(bytes) * 8, self.0)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mbps = self.0 as f64 / 1e6;
        if (mbps - mbps.round()).abs() < 1e-9 {
            write!(f, "{}Mbit/s", mbps.round() as u64)
        } else {
            write!(f, "{mbps}Mbit/s")
        }
    }
}

/// PHY timing parameters shared by every frame.
///
/// Per IEEE 802.11b with long preamble: the PLCP preamble and header take
/// 192 µs at 1 Mbit/s and precede every frame regardless of the payload
/// rate. This fixed overhead (plus control frames pinned at the basic rate)
/// is what makes goodput grow sub-linearly with bandwidth in the paper's
/// Figures 4 and 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyTiming {
    /// PLCP preamble + header duration (sent at 1 Mbit/s).
    pub plcp_overhead: SimDuration,
    /// Rate for control frames (RTS/CTS/ACK): always 1 Mbit/s for
    /// compatibility across 802.11 versions (paper §4.3). Exposed so the
    /// `ablation_basic_rate` bench can override it.
    pub basic_rate: DataRate,
}

impl PhyTiming {
    /// IEEE 802.11b long-preamble timing.
    pub fn ieee80211b() -> Self {
        PhyTiming {
            plcp_overhead: SimDuration::from_micros(192),
            basic_rate: DataRate::MBPS_1,
        }
    }

    /// IEEE 802.11g OFDM timing: 20 µs preamble + signal field, control
    /// frames at the 6 Mbit/s OFDM basic rate.
    pub fn ieee80211g() -> Self {
        PhyTiming {
            plcp_overhead: SimDuration::from_micros(20),
            basic_rate: DataRate::from_bits_per_sec(6_000_000),
        }
    }

    /// Airtime of a `bytes`-long frame whose body is sent at `rate`.
    pub fn frame_airtime(&self, bytes: u32, rate: DataRate) -> SimDuration {
        self.plcp_overhead + rate.serialize(bytes)
    }

    /// Airtime of a control frame (sent at the basic rate).
    pub fn control_airtime(&self, bytes: u32) -> SimDuration {
        self.frame_airtime(bytes, self.basic_rate)
    }
}

impl Default for PhyTiming {
    fn default() -> Self {
        Self::ieee80211b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_times() {
        // 1528 bytes at 2 Mbit/s = 6112 us
        assert_eq!(
            DataRate::MBPS_2.serialize(1528),
            SimDuration::from_micros(6112)
        );
        // at 11 Mbit/s = 12224/11 us, rounded up
        assert_eq!(DataRate::MBPS_11.serialize(1528).as_nanos(), 1_111_273);
    }

    #[test]
    fn control_frames_use_basic_rate() {
        let t = PhyTiming::ieee80211b();
        // RTS: 192us PLCP + 160 bits at 1 Mbit/s = 352 us.
        assert_eq!(t.control_airtime(20), SimDuration::from_micros(352));
        // CTS/ACK: 192 + 112 = 304 us.
        assert_eq!(t.control_airtime(14), SimDuration::from_micros(304));
    }

    #[test]
    fn data_frame_airtime_at_2mbps() {
        let t = PhyTiming::ieee80211b();
        // 192us PLCP + 6112us body = 6304us.
        assert_eq!(
            t.frame_airtime(1528, DataRate::MBPS_2),
            SimDuration::from_micros(6304)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", DataRate::MBPS_2), "2Mbit/s");
        assert_eq!(format!("{}", DataRate::MBPS_5_5), "5.5Mbit/s");
        assert_eq!(format!("{}", DataRate::MBPS_11), "11Mbit/s");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        DataRate::from_bits_per_sec(0);
    }
}
