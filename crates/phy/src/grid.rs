//! Uniform spatial hash grid over node positions.
//!
//! [`Medium`](crate::Medium) and the topology generators need one query,
//! millions of times: "which nodes lie within distance *r* of this
//! point?". A [`SpatialGrid`] with cell size ≥ *r* answers it by scanning
//! only the 3×3 cell neighborhood of the query point — every node within
//! *r* of a point in cell (cx, cy) lies in cells (cx±1, cy±1), because a
//! single cell already spans *r* in each axis. That turns the dense
//! all-pairs effect computation into O(n·k) for k = nodes per
//! neighborhood, and an incremental position update into O(k).
//!
//! The grid is purely an *acceleration structure*: it returns candidate
//! supersets, never answers distance predicates itself, so callers apply
//! the exact same distance tests they would against a dense scan and
//! results stay bit-identical.

use mwn_sim::FxHashMap;

use crate::position::Position;

/// A uniform hash grid of node indices, keyed by cell coordinate.
///
/// Cells are square with side [`SpatialGrid::cell_size`]; a node at
/// position `p` lives in cell `(floor(p.x / cell), floor(p.y / cell))`.
/// Coordinates may be negative; cells exist only while occupied.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    cells: FxHashMap<(i64, i64), Vec<u32>>,
}

impl SpatialGrid {
    /// An empty grid with the given cell side length (meters).
    ///
    /// # Panics
    ///
    /// Panics unless `cell_size` is finite and positive.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "grid cell size must be positive and finite"
        );
        SpatialGrid {
            cell: cell_size,
            cells: FxHashMap::default(),
        }
    }

    /// Builds a grid containing `positions`, node `i` at `positions[i]`.
    pub fn build(cell_size: f64, positions: &[Position]) -> Self {
        let mut grid = Self::new(cell_size);
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i as u32, p);
        }
        grid
    }

    /// The configured cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The cell coordinate containing `p`.
    pub fn cell_of(&self, p: Position) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Inserts node `id` at position `p`.
    pub fn insert(&mut self, id: u32, p: Position) {
        self.cells.entry(self.cell_of(p)).or_default().push(id);
    }

    /// Removes node `id`, which must currently be registered at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `p`'s cell — that means the caller's
    /// position bookkeeping and the grid have diverged.
    pub fn remove(&mut self, id: u32, p: Position) {
        let key = self.cell_of(p);
        let bucket = self
            .cells
            .get_mut(&key)
            .unwrap_or_else(|| panic!("node {id} not in grid cell {key:?}"));
        let at = bucket
            .iter()
            .position(|&x| x == id)
            .unwrap_or_else(|| panic!("node {id} not in grid cell {key:?}"));
        bucket.swap_remove(at);
        if bucket.is_empty() {
            self.cells.remove(&key);
        }
    }

    /// Moves node `id` from `old` to `new`, touching the grid only when
    /// the cell actually changes.
    pub fn relocate(&mut self, id: u32, old: Position, new: Position) {
        if self.cell_of(old) != self.cell_of(new) {
            self.remove(id, old);
            self.insert(id, new);
        }
    }

    /// Appends to `out` every node id in the 3×3 cell neighborhood of
    /// `p` — a superset of all nodes within `cell_size` of `p` (including
    /// any node registered at `p` itself). Order is unspecified; callers
    /// needing determinism sort the result.
    pub fn candidates_near(&self, p: Position, out: &mut Vec<u32>) {
        let (cx, cy) = self.cell_of(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
    }

    /// The node ids registered in exactly `cell` (empty if unoccupied).
    /// Order is unspecified, but every node lives in exactly one cell, so
    /// occupant lists of distinct cells never overlap.
    pub fn occupants(&self, cell: (i64, i64)) -> &[u32] {
        self.cells.get(&cell).map_or(&[], Vec::as_slice)
    }

    /// Number of nodes currently registered.
    pub fn len(&self) -> usize {
        self.cells.values().map(Vec::len).sum()
    }

    /// `true` if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_candidates(g: &SpatialGrid, p: Position) -> Vec<u32> {
        let mut v = Vec::new();
        g.candidates_near(p, &mut v);
        v.sort_unstable();
        v
    }

    #[test]
    fn neighborhood_covers_everything_within_cell_size() {
        // 100 deterministic pseudo-random points; every pair within the
        // cell size must appear in each other's candidate set.
        let mut rng = mwn_sim::Pcg32::new(99);
        let positions: Vec<Position> = (0..100)
            .map(|_| {
                Position::new(
                    rng.gen_range_f64(-2000.0, 2000.0),
                    rng.gen_range_f64(-2000.0, 2000.0),
                )
            })
            .collect();
        let grid = SpatialGrid::build(550.0, &positions);
        assert_eq!(grid.len(), 100);
        for (i, &a) in positions.iter().enumerate() {
            let cands = sorted_candidates(&grid, a);
            for (j, &b) in positions.iter().enumerate() {
                if a.distance_to(b) <= 550.0 {
                    assert!(
                        cands.binary_search(&(j as u32)).is_ok(),
                        "node {j} within range of node {i} but not a candidate"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_cell_boundary_stays_covered() {
        // A node exactly `cell` away sits in the adjacent cell, which the
        // 3×3 scan includes; a node just past 2*cell does not matter
        // (distance > cell), but one *at* the far corner of the adjacent
        // cell is still returned as a candidate.
        let grid = SpatialGrid::build(
            550.0,
            &[
                Position::new(0.0, 0.0),
                Position::new(550.0, 0.0),
                Position::new(1099.9, 0.0),
                Position::new(1650.0, 0.0),
            ],
        );
        let c = sorted_candidates(&grid, Position::new(0.0, 0.0));
        // Node 3 is two cells over: excluded. Node 2 is a candidate
        // (adjacent cell) even though it is out of range — the caller's
        // distance test rejects it.
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn negative_coordinates_hash_to_distinct_cells() {
        let grid = SpatialGrid::build(
            100.0,
            &[Position::new(-50.0, -50.0), Position::new(50.0, 50.0)],
        );
        assert_eq!(grid.cell_of(Position::new(-50.0, -50.0)), (-1, -1));
        assert_eq!(grid.cell_of(Position::new(50.0, 50.0)), (0, 0));
        // Still mutual candidates: adjacent cells.
        assert_eq!(
            sorted_candidates(&grid, Position::new(-50.0, -50.0)),
            vec![0, 1]
        );
    }

    #[test]
    fn relocate_moves_between_cells_only_when_needed() {
        let mut grid = SpatialGrid::build(100.0, &[Position::new(10.0, 10.0)]);
        // Same cell: candidates unchanged.
        grid.relocate(0, Position::new(10.0, 10.0), Position::new(90.0, 90.0));
        assert_eq!(sorted_candidates(&grid, Position::new(50.0, 50.0)), vec![0]);
        // New cell far away: no longer a candidate near the origin.
        grid.relocate(0, Position::new(90.0, 90.0), Position::new(1000.0, 1000.0));
        assert!(sorted_candidates(&grid, Position::new(50.0, 50.0)).is_empty());
        assert_eq!(
            sorted_candidates(&grid, Position::new(1000.0, 1000.0)),
            vec![0]
        );
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn co_located_nodes_share_a_cell() {
        let p = Position::new(7.0, 7.0);
        let grid = SpatialGrid::build(550.0, &[p, p, p]);
        assert_eq!(sorted_candidates(&grid, p), vec![0, 1, 2]);
    }

    #[test]
    fn occupants_partition_the_nodes() {
        let grid = SpatialGrid::build(
            100.0,
            &[
                Position::new(10.0, 10.0),
                Position::new(20.0, 20.0),
                Position::new(150.0, 10.0),
            ],
        );
        let mut cell0 = grid.occupants((0, 0)).to_vec();
        cell0.sort_unstable();
        assert_eq!(cell0, vec![0, 1]);
        assert_eq!(grid.occupants((1, 0)), &[2]);
        assert!(grid.occupants((5, 5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "not in grid cell")]
    fn remove_at_wrong_position_panics() {
        let mut grid = SpatialGrid::build(100.0, &[Position::new(10.0, 10.0)]);
        grid.remove(0, Position::new(500.0, 500.0));
    }

    #[test]
    fn repeated_relocations_of_one_node_in_a_batch_chain_correctly() {
        // A mobility tick may move the same node more than once when the
        // caller coalesces sub-steps; each relocate hands the grid the
        // node's *previous* position, so the chain must stay consistent
        // even when intermediate hops land in fresh cells.
        let a = Position::new(10.0, 10.0);
        let b = Position::new(250.0, 10.0); // cell (2, 0)
        let c = Position::new(910.0, 10.0); // cell (9, 0)
        let mut grid = SpatialGrid::build(100.0, &[a, a]);
        // Node 0 moves twice within one batch; node 1 stays put.
        grid.relocate(0, a, b);
        grid.relocate(0, b, c);
        assert_eq!(grid.len(), 2, "no duplicate registrations");
        assert_eq!(grid.occupants(grid.cell_of(a)), &[1]);
        assert!(grid.occupants(grid.cell_of(b)).is_empty());
        assert_eq!(grid.occupants(grid.cell_of(c)), &[0]);
    }

    #[test]
    fn relocate_onto_exact_cell_boundary_lands_in_the_upper_cell() {
        // floor() semantics: a coordinate exactly on a cell edge belongs
        // to the higher-indexed cell, and relocating onto the edge must
        // agree with where a fresh insert would put the node.
        let mut grid = SpatialGrid::build(100.0, &[Position::new(50.0, 50.0)]);
        let edge = Position::new(100.0, 100.0);
        assert_eq!(grid.cell_of(edge), (1, 1));
        grid.relocate(0, Position::new(50.0, 50.0), edge);
        assert_eq!(grid.occupants((1, 1)), &[0]);
        assert!(grid.occupants((0, 0)).is_empty(), "old cell vacated");
        // The negative edge mirrors it: exactly -100.0 is cell -1, and a
        // move from -100.0 to -99.9 (cell -1 both) is a no-op relocate.
        grid.relocate(0, edge, Position::new(-100.0, -100.0));
        assert_eq!(grid.cell_of(Position::new(-100.0, -100.0)), (-1, -1));
        grid.relocate(
            0,
            Position::new(-100.0, -100.0),
            Position::new(-99.9, -99.9),
        );
        assert_eq!(grid.occupants((-1, -1)), &[0]);
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn node_returning_to_its_original_cell_within_a_tick_round_trips() {
        // Leave and re-enter the starting cell inside one batch: the net
        // grid state must equal never having moved, including the case
        // where the swap_remove in `remove` reordered the bucket.
        let home = Position::new(10.0, 10.0);
        let away = Position::new(510.0, 10.0);
        let mut grid = SpatialGrid::build(100.0, &[home, home, home]);
        grid.relocate(1, home, away);
        grid.relocate(1, away, Position::new(20.0, 30.0)); // back home, new offset
        assert_eq!(sorted_candidates(&grid, home), vec![0, 1, 2]);
        assert!(grid.occupants(grid.cell_of(away)).is_empty());
        assert_eq!(grid.len(), 3);
    }
}
