//! Per-node radio state machine: reception locking, collision marking and
//! carrier-sense transitions.
//!
//! The transceiver is fed signal-start/-end notifications (already
//! classified by [`crate::Medium`]) in timestamp order and reports
//! [`RadioEvent`]s. It implements the standard simulator reception model,
//! matching ns-2:
//!
//! * a receiver locks onto the first decodable signal that starts while it
//!   is neither transmitting nor already locked;
//! * any other signal that `interferes` and overlaps a locked reception
//!   corrupts it, unless the locked frame is at least `CPThresh` (10×)
//!   stronger — ns-2's physical capture, which is what lets same-direction
//!   chain traffic survive its own hidden terminals;
//! * a half-duplex radio cannot receive while transmitting, and starting a
//!   transmission abandons any reception in progress;
//! * physical carrier sense reports busy whenever the node transmits or any
//!   `senses`-class signal is on the air.
//!
//! All event-producing methods append to a caller-supplied buffer instead
//! of returning a fresh `Vec`: the transceiver sits on the event loop's hot
//! path and must not allocate per event.

use crate::counters::PhyCounters;
use crate::medium::SignalClass;

/// Identifies one transmission on the medium (assigned by the caller;
/// unique per simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u64);

/// Radio-level events produced by the transceiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioEvent {
    /// Physical carrier sense went busy.
    CarrierBusy,
    /// Physical carrier sense went idle.
    CarrierIdle,
    /// The radio locked onto an incoming frame.
    RxStart(TxId),
    /// A locked frame finished arriving; `ok` is `false` if it was
    /// corrupted by interference.
    RxEnd {
        /// The transmission that ended.
        tx: TxId,
        /// Whether the frame arrived intact.
        ok: bool,
    },
    /// A signal the radio could sense but never decode (carrier-sense-only
    /// energy, or a frame it failed to lock onto) stopped. The MAC treats
    /// this like a corrupted reception and defers EIFS instead of DIFS —
    /// exactly ns-2's behaviour for frames below the receive threshold.
    /// Without this, stations two hops from a transmitter would wait only
    /// DIFS (50 µs) and stomp on the SIFS-spaced CTS/ACK responses
    /// (≈314 µs) of the exchange they partially overheard.
    UndecodedEnd,
}

/// Per-node radio reception/carrier-sense state machine.
///
/// # Example
///
/// ```
/// use mwn_phy::{RadioEvent, RangeModel, Transceiver, TxId};
///
/// let decodable = RangeModel::paper().classify(200.0).unwrap();
/// let mut radio = Transceiver::new();
/// let mut ev = Vec::new();
/// radio.signal_start(TxId(1), decodable, &mut ev);
/// assert_eq!(ev, vec![RadioEvent::CarrierBusy, RadioEvent::RxStart(TxId(1))]);
/// ev.clear();
/// radio.signal_end(TxId(1), &mut ev);
/// assert_eq!(ev, vec![RadioEvent::RxEnd { tx: TxId(1), ok: true }, RadioEvent::CarrierIdle]);
/// ```
#[derive(Debug, Clone)]
pub struct Transceiver {
    /// All signals currently on the air at this node. A handful at most, so
    /// a flat list beats a hash map on every lookup the hot path makes.
    active: Vec<(TxId, SignalClass)>,
    /// Count of active signals with `senses == true`.
    sensing: usize,
    /// The reception we are locked onto, if any.
    rx: Option<RxState>,
    transmitting: bool,
    /// Physical-capture threshold (linear power ratio; ns-2 `CPThresh_`).
    /// A locked frame survives interference weaker than
    /// `locked_power / threshold`; `None` means any overlap corrupts.
    capture_threshold: Option<f64>,
    /// Capture/collision/EIFS decision counts.
    counters: PhyCounters,
}

#[derive(Debug, Clone, Copy)]
struct RxState {
    tx: TxId,
    power: f64,
    /// `true` if the locked signal is a frame we could decode (in
    /// transmission range); `false` for carrier-sense-only noise.
    decodable: bool,
    corrupted: bool,
}

impl Default for Transceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Transceiver {
    /// Creates an idle transceiver with ns-2's default 10× capture
    /// threshold.
    pub fn new() -> Self {
        Self::with_capture(Some(10.0))
    }

    /// Creates a transceiver with an explicit capture threshold (`None`
    /// disables capture: any overlapping interference corrupts).
    pub fn with_capture(capture_threshold: Option<f64>) -> Self {
        Transceiver {
            active: Vec::new(),
            sensing: 0,
            rx: None,
            transmitting: false,
            capture_threshold,
            counters: PhyCounters::default(),
        }
    }

    /// Capture/collision/EIFS statistics accumulated so far.
    pub fn counters(&self) -> &PhyCounters {
        &self.counters
    }

    /// `true` if interference at `interferer_power` corrupts a locked
    /// frame received at `locked_power`.
    fn corrupts(&self, locked_power: f64, interferer_power: f64) -> bool {
        match self.capture_threshold {
            None => true,
            Some(thr) => locked_power < interferer_power * thr,
        }
    }

    /// Physical carrier sense: busy while transmitting or while any
    /// sensed signal is on the air.
    pub fn carrier_busy(&self) -> bool {
        self.transmitting || self.sensing > 0
    }

    /// `true` while the radio is locked onto a decodable incoming frame
    /// (not mere noise).
    pub fn receiving(&self) -> bool {
        self.rx.is_some_and(|r| r.decodable)
    }

    /// `true` while the radio transmits.
    pub fn transmitting(&self) -> bool {
        self.transmitting
    }

    /// A classified signal starts arriving; resulting events are appended
    /// to `out`.
    ///
    /// Callers must assign unique ids; a duplicate active `tx` panics in
    /// debug builds (the check is an O(active) scan, skipped in release).
    pub fn signal_start(&mut self, tx: TxId, class: SignalClass, out: &mut Vec<RadioEvent>) {
        let was_busy = self.carrier_busy();
        debug_assert!(
            !self.active.iter().any(|&(id, _)| id == tx),
            "duplicate signal id {tx:?}"
        );
        self.active.push((tx, class));
        if class.senses {
            self.sensing += 1;
        }

        if !was_busy && self.carrier_busy() {
            out.push(RadioEvent::CarrierBusy);
        }

        if self.rx.is_none() && !self.transmitting {
            // The radio locks onto the FIRST signal it hears, even
            // undecodable noise — as in ns-2, where a later (even much
            // stronger) frame is then discarded. This is the dominant
            // hidden-terminal loss mechanism: the interferer fires first,
            // occupies the receiver, and the real frame is lost.
            let mut contested = false;
            let mut interfered = false;
            for &(id, c) in &self.active {
                if id == tx || !c.interferes {
                    continue;
                }
                contested = true;
                if self.corrupts(class.power, c.power) {
                    interfered = true;
                    break;
                }
            }
            if class.decodable {
                if interfered {
                    self.counters.collisions += 1;
                } else if contested {
                    self.counters.captures += 1;
                }
            }
            self.rx = Some(RxState {
                tx,
                power: class.power,
                decodable: class.decodable,
                corrupted: !class.decodable || interfered,
            });
            if class.decodable {
                out.push(RadioEvent::RxStart(tx));
            }
        } else if class.interferes {
            // Interference corrupts the reception in progress, unless the
            // locked frame is strong enough to be captured over it.
            let corrupts = self
                .rx
                .is_some_and(|rx| self.corrupts(rx.power, class.power));
            if corrupts {
                if let Some(rx) = &mut self.rx {
                    if rx.decodable && !rx.corrupted {
                        self.counters.collisions += 1;
                    }
                    rx.corrupted = true;
                }
            } else if self.rx.is_some_and(|rx| rx.decodable && !rx.corrupted) {
                self.counters.captures += 1;
            }
        }
    }

    /// A previously started signal ends; resulting events are appended to
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `tx` was never started.
    pub fn signal_end(&mut self, tx: TxId, out: &mut Vec<RadioEvent>) {
        let was_busy = self.carrier_busy();
        let pos = self
            .active
            .iter()
            .position(|&(id, _)| id == tx)
            .expect("signal_end without start");
        let (_, class) = self.active.swap_remove(pos);
        if class.senses {
            self.sensing -= 1;
        }

        if let Some(rx) = self.rx {
            if rx.tx == tx {
                self.rx = None;
                if rx.decodable {
                    out.push(RadioEvent::RxEnd {
                        tx,
                        ok: !rx.corrupted,
                    });
                } else {
                    // Locked noise ended: PHY-RXEND with error → EIFS.
                    self.counters.undecoded += 1;
                    out.push(RadioEvent::UndecodedEnd);
                }
            }
            // Signals that never locked the radio were discarded at
            // arrival (ns-2 frees them silently): no event at their end.
        }
        if was_busy && !self.carrier_busy() {
            out.push(RadioEvent::CarrierIdle);
        }
    }

    /// The node starts transmitting. Any reception in progress is
    /// abandoned (no `RxEnd` will be reported for it). Resulting events
    /// are appended to `out`.
    pub fn tx_start(&mut self, out: &mut Vec<RadioEvent>) {
        let was_busy = self.carrier_busy();
        self.transmitting = true;
        self.rx = None;
        if !was_busy {
            out.push(RadioEvent::CarrierBusy);
        }
    }

    /// The node's transmission ends; resulting events are appended to
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if the node was not transmitting.
    pub fn tx_end(&mut self, out: &mut Vec<RadioEvent>) {
        assert!(self.transmitting, "tx_end without tx_start");
        self.transmitting = false;
        if !self.carrier_busy() {
            out.push(RadioEvent::CarrierIdle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::RangeModel;

    /// Signal from an adjacent chain node (200 m): decodable, strong.
    fn decodable() -> SignalClass {
        RangeModel::paper().classify(200.0).unwrap()
    }

    /// Signal from a hidden terminal two hops away (400 m): sense-only,
    /// 12.5× weaker than [`decodable`] — capturable.
    fn interference() -> SignalClass {
        RangeModel::paper().classify(400.0).unwrap()
    }

    /// Sense-only interference at 300 m: too strong to capture over.
    fn strong_interference() -> SignalClass {
        RangeModel::paper().classify(300.0).unwrap()
    }

    fn start(r: &mut Transceiver, tx: TxId, class: SignalClass) -> Vec<RadioEvent> {
        let mut out = Vec::new();
        r.signal_start(tx, class, &mut out);
        out
    }

    fn end(r: &mut Transceiver, tx: TxId) -> Vec<RadioEvent> {
        let mut out = Vec::new();
        r.signal_end(tx, &mut out);
        out
    }

    fn tx_start(r: &mut Transceiver) -> Vec<RadioEvent> {
        let mut out = Vec::new();
        r.tx_start(&mut out);
        out
    }

    fn tx_end(r: &mut Transceiver) -> Vec<RadioEvent> {
        let mut out = Vec::new();
        r.tx_end(&mut out);
        out
    }

    #[test]
    fn clean_reception() {
        let mut r = Transceiver::new();
        assert!(!r.carrier_busy());
        let ev = start(&mut r, TxId(1), decodable());
        assert_eq!(
            ev,
            vec![RadioEvent::CarrierBusy, RadioEvent::RxStart(TxId(1))]
        );
        assert!(r.receiving());
        let ev = end(&mut r, TxId(1));
        assert_eq!(
            ev,
            vec![
                RadioEvent::RxEnd {
                    tx: TxId(1),
                    ok: true
                },
                RadioEvent::CarrierIdle
            ]
        );
        assert!(!r.carrier_busy());
    }

    #[test]
    fn weak_hidden_terminal_is_captured_over() {
        // Paper chain geometry: sender 200 m away, interferer 400 m away.
        // Power ratio (two-ray ground) = 12.5 ≥ CPThresh 10: survive.
        let mut r = Transceiver::new();
        start(&mut r, TxId(1), decodable());
        let ev = start(&mut r, TxId(2), interference());
        assert!(ev.is_empty());
        let ev = end(&mut r, TxId(1));
        assert_eq!(
            ev,
            vec![RadioEvent::RxEnd {
                tx: TxId(1),
                ok: true
            }]
        );
        end(&mut r, TxId(2));
    }

    #[test]
    fn strong_hidden_terminal_corrupts_reception() {
        let mut r = Transceiver::new();
        start(&mut r, TxId(1), decodable());
        // 300 m interferer: ratio ≈ 4 < 10, reception is doomed.
        let ev = start(&mut r, TxId(2), strong_interference());
        assert!(ev.is_empty()); // carrier already busy, no new lock
        let ev = end(&mut r, TxId(1));
        assert_eq!(
            ev,
            vec![RadioEvent::RxEnd {
                tx: TxId(1),
                ok: false
            }]
        );
        // Medium still busy until the interferer ends; the never-locked
        // interferer ends silently.
        assert!(r.carrier_busy());
        let ev = end(&mut r, TxId(2));
        assert_eq!(ev, vec![RadioEvent::CarrierIdle]);
    }

    #[test]
    fn without_capture_any_interference_corrupts() {
        let mut r = Transceiver::with_capture(None);
        start(&mut r, TxId(1), decodable());
        start(&mut r, TxId(2), interference()); // weak, but no capture
        let ev = end(&mut r, TxId(1));
        assert_eq!(
            ev,
            vec![RadioEvent::RxEnd {
                tx: TxId(1),
                ok: false
            }]
        );
        end(&mut r, TxId(2));
    }

    #[test]
    fn two_equal_decodable_frames_collide() {
        // Equal power: no capture in either direction.
        let mut r = Transceiver::new();
        start(&mut r, TxId(1), decodable());
        let ev = start(&mut r, TxId(2), decodable());
        assert!(ev.is_empty()); // no second lock
        let ev = end(&mut r, TxId(1));
        assert_eq!(
            ev,
            vec![RadioEvent::RxEnd {
                tx: TxId(1),
                ok: false
            }]
        );
        // Frame 2 was never locked: discarded at arrival, silent end.
        let ev = end(&mut r, TxId(2));
        assert_eq!(ev, vec![RadioEvent::CarrierIdle]);
    }

    #[test]
    fn half_duplex_no_rx_while_transmitting() {
        let mut r = Transceiver::new();
        let ev = tx_start(&mut r);
        assert_eq!(ev, vec![RadioEvent::CarrierBusy]);
        let ev = start(&mut r, TxId(1), decodable());
        assert!(ev.is_empty()); // no lock, carrier already busy
        assert!(!r.receiving());
        end(&mut r, TxId(1));
        let ev = tx_end(&mut r);
        assert_eq!(ev, vec![RadioEvent::CarrierIdle]);
    }

    #[test]
    fn tx_start_abandons_reception() {
        let mut r = Transceiver::new();
        start(&mut r, TxId(1), decodable());
        assert!(r.receiving());
        tx_start(&mut r);
        assert!(!r.receiving());
        // Signal 1 ends with no RxEnd: the radio moved on.
        let ev = end(&mut r, TxId(1));
        assert!(ev.is_empty());
        assert!(r.carrier_busy()); // still transmitting
    }

    #[test]
    fn sense_only_signal_locks_as_noise_and_eifs_at_end() {
        let mut r = Transceiver::new();
        let ev = start(&mut r, TxId(1), interference());
        assert_eq!(ev, vec![RadioEvent::CarrierBusy]);
        assert!(!r.receiving(), "noise is not a frame reception");
        assert!(r.carrier_busy());
        let ev = end(&mut r, TxId(1));
        assert_eq!(ev, vec![RadioEvent::UndecodedEnd, RadioEvent::CarrierIdle]);
    }

    #[test]
    fn carrier_transitions_count_overlaps() {
        let mut r = Transceiver::new();
        assert_eq!(
            start(&mut r, TxId(1), interference()),
            vec![RadioEvent::CarrierBusy]
        );
        assert_eq!(start(&mut r, TxId(2), interference()), vec![]);
        // First noise was locked; second was discarded at arrival.
        assert_eq!(end(&mut r, TxId(1)), vec![RadioEvent::UndecodedEnd]);
        assert_eq!(end(&mut r, TxId(2)), vec![RadioEvent::CarrierIdle]);
    }

    #[test]
    fn undecoded_end_suppressed_while_transmitting() {
        let mut r = Transceiver::new();
        tx_start(&mut r);
        start(&mut r, TxId(1), interference());
        assert!(end(&mut r, TxId(1)).is_empty());
        tx_end(&mut r);
    }

    #[test]
    fn events_append_without_clearing() {
        // The out-parameter contract: callers own clearing.
        let mut r = Transceiver::new();
        let mut out = Vec::new();
        r.signal_start(TxId(1), decodable(), &mut out);
        r.signal_end(TxId(1), &mut out);
        assert_eq!(
            out,
            vec![
                RadioEvent::CarrierBusy,
                RadioEvent::RxStart(TxId(1)),
                RadioEvent::RxEnd {
                    tx: TxId(1),
                    ok: true
                },
                RadioEvent::CarrierIdle
            ]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate signal id")]
    fn duplicate_signal_panics() {
        let mut r = Transceiver::new();
        start(&mut r, TxId(1), decodable());
        start(&mut r, TxId(1), decodable());
    }

    #[test]
    #[should_panic(expected = "signal_end without start")]
    fn unmatched_end_panics() {
        end(&mut Transceiver::new(), TxId(9));
    }

    #[test]
    fn back_to_back_receptions_after_collision_recover() {
        let mut r = Transceiver::new();
        start(&mut r, TxId(1), decodable());
        start(&mut r, TxId(2), interference());
        end(&mut r, TxId(1));
        end(&mut r, TxId(2));
        // Radio recovered: next frame is received cleanly.
        let ev = start(&mut r, TxId(3), decodable());
        assert_eq!(
            ev,
            vec![RadioEvent::CarrierBusy, RadioEvent::RxStart(TxId(3))]
        );
        let ev = end(&mut r, TxId(3));
        assert_eq!(
            ev,
            vec![
                RadioEvent::RxEnd {
                    tx: TxId(3),
                    ok: true
                },
                RadioEvent::CarrierIdle
            ]
        );
    }
}
