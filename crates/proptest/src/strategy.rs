//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// Something that can draw values of one type from a [`TestRng`].
///
/// The real proptest separates strategies from value trees to support
/// shrinking; this fallback generates final values directly.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    lo + (rng.below(span + 1) as $t)
                }
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.f64_unit() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! impl_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// The strategy behind [`collection::vec`](crate::collection::vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Types with a canonical whole-domain strategy (the `name: Type`
/// parameter form of [`proptest!`](crate::proptest)).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64_unit()
    }
}

/// The whole-domain strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn int_range_bounds_hold() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (1u64..=u64::MAX).generate(&mut r);
            assert!(w >= 1);
        }
    }

    #[test]
    fn f64_range_excludes_end() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-2.0f64..3.0).generate(&mut r);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let mut r = rng();
        let s = VecStrategy {
            element: 0u8..10,
            size: 2..5,
        };
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = Just(21u64).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut r), 42);
    }

    #[test]
    fn union_draws_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            Box::new(Just(0u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(1u8)),
        ]);
        let draws: Vec<u8> = (0..100).map(|_| u.generate(&mut r)).collect();
        assert!(draws.contains(&0) && draws.contains(&1));
    }
}
