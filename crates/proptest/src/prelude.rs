//! The glob-import surface (`use proptest::prelude::*`).

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary, Just,
    ProptestConfig, Strategy, TestRng, Union,
};
