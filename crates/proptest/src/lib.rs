//! A vendored, dependency-free stand-in for the [`proptest`] crate.
//!
//! The workspace's property tests were written against the real proptest,
//! but this repository must build and test with **no registry access**, so
//! the workspace dependency points here instead. This crate reimplements
//! exactly the subset those tests use:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameters, doc comments, `#[test]` attributes and an optional
//!   `#![proptest_config(...)]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_oneof!`],
//! * strategies for integer/float ranges, tuples, [`Just`], `prop_map`,
//!   [`collection::vec`] and [`any`],
//! * a deterministic case runner (`TestRunner` semantics collapse to a
//!   seeded loop — no shrinking; on failure the case index is printed so
//!   the run can be reproduced).
//!
//! Cases are generated from a seed derived only from the test name and the
//! case index, so every run of the suite exercises the identical inputs —
//! a deliberate trade of coverage-over-time for bit-for-bit reproducible
//! CI, in keeping with the simulator's determinism policy.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod collection;
pub mod prelude;
mod rng;
mod strategy;

pub use rng::TestRng;
pub use strategy::{any, Any, Arbitrary, Just, Map, Strategy, Union, VecStrategy};

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Expands a block of property tests into plain `#[test]` functions.
///
/// Each property runs [`ProptestConfig::cases`] times with values drawn
/// from its parameter strategies; a failing case reports its index before
/// propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let mut __rng =
                            $crate::TestRng::for_case(stringify!($name), __case);
                        $crate::__proptest_bind!(__rng, $body, $($params)*);
                    }),
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest (vendored): {} failed at case {}/{}",
                        stringify!($name),
                        __case,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block $(,)?) => { $body };
    ($rng:ident, $body:block, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $body $(, $($rest)*)?);
    }};
    ($rng:ident, $body:block, $name:ident: $ty:ty $(, $($rest:tt)*)?) => {{
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng, $body $(, $($rest)*)?);
    }};
}

/// Asserts a property; identical to `assert!` in this implementation.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality; identical to `assert_eq!` in this implementation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality; identical to `assert_ne!` in this implementation.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Chooses uniformly among the given strategies (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let __boxed: ::std::boxed::Box<dyn $crate::Strategy<Value = _>> =
                    ::std::boxed::Box::new($strat);
                __boxed
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let mut c = TestRng::for_case("t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range, inclusive-range, tuple, typed and vec parameters all bind.
        #[test]
        fn full_parameter_surface(
            x in 0u64..10,
            y in 1u32..=u32::MAX,
            pair in (0u8..4, -1.0f64..1.0),
            flag: bool,
            seed: u64,
            xs in crate::collection::vec(0usize..5, 1..9),
        ) {
            prop_assert!(x < 10);
            prop_assert!(y >= 1);
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
            let bit = u8::from(flag);
            prop_assert!(bit <= 1);
            let _ = seed;
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn oneof_and_map_cover_all_arms(picks in crate::collection::vec(
            prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|v| v)],
            200..201,
        )) {
            prop_assert!(picks.iter().all(|&p| p < 4));
            // 200 draws over 3 uniform arms: every arm must appear.
            for arm in [0u8, 1] {
                prop_assert!(picks.contains(&arm), "arm {arm} never drawn");
            }
            prop_assert!(picks.iter().any(|&p| p >= 2), "map arm never drawn");
        }
    }
}
