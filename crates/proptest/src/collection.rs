//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, VecStrategy};

/// A strategy for `Vec`s of `element` values with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}
