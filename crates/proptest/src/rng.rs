//! The deterministic case generator.

/// A splitmix64 generator seeded from the test name and case index.
///
/// Splitmix64 passes the statistical tests that matter for drawing test
/// inputs, needs no warm-up, and is a handful of lines — ideal for a
/// vendored fallback that must never change behavior between runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, then fold in the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// A value in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = TestRng::for_case("unit", 0);
        for _ in 0..1000 {
            let x = r.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_names_decorrelate() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("alpha", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("beta", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
