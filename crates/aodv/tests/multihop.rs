//! Multi-router integration tests over ideal links.
//!
//! Wires several [`Router`]s together with an instantaneous, lossless
//! link layer so the protocol logic — discovery across several hops, RREP
//! forwarding, RERR cascades, rediscovery after failures — can be tested
//! without the 802.11 stack.

use std::collections::VecDeque;

use mwn_aodv::{AodvAction, AodvConfig, Router};
use mwn_pkt::{Body, FlowId, NodeId, Packet, TcpSegment};
use mwn_sim::{Pcg32, SimDuration, SimTime};

/// A little world of routers on a line: node i hears nodes i−1 and i+1.
struct Line {
    routers: Vec<Router>,
    now: SimTime,
    /// Packets delivered to each node's transport layer.
    delivered: Vec<Vec<Packet>>,
    /// Work queue of (receiving node, transmitting neighbor, packet).
    in_flight: VecDeque<(usize, usize, Packet)>,
    /// Pending discovery timers (node, dst, fire time).
    timers: Vec<(usize, NodeId, SimTime)>,
}

impl Line {
    fn new(n: usize) -> Self {
        let routers = (0..n)
            .map(|i| {
                Router::new(
                    NodeId(i as u32),
                    AodvConfig::default(),
                    Pcg32::new(i as u64),
                    (i as u64) << 32,
                )
            })
            .collect();
        Line {
            routers,
            now: SimTime::ZERO,
            delivered: vec![Vec::new(); n],
            in_flight: VecDeque::new(),
            timers: Vec::new(),
        }
    }

    fn neighbors(&self, i: usize) -> Vec<usize> {
        let mut v = Vec::new();
        if i > 0 {
            v.push(i - 1);
        }
        if i + 1 < self.routers.len() {
            v.push(i + 1);
        }
        v
    }

    fn apply(&mut self, node: usize, actions: Vec<AodvAction>) {
        for a in actions {
            match a {
                AodvAction::Send {
                    packet, next_hop, ..
                } => {
                    if next_hop.is_broadcast() {
                        for n in self.neighbors(node) {
                            self.in_flight.push_back((n, node, packet.clone()));
                        }
                    } else {
                        let hop = next_hop.index();
                        assert!(
                            self.neighbors(node).contains(&hop),
                            "n{node} routed to non-neighbor {next_hop}"
                        );
                        self.in_flight.push_back((hop, node, packet));
                    }
                }
                AodvAction::Deliver(p) => self.delivered[node].push(p),
                AodvAction::SetDiscoveryTimer { dst, delay } => {
                    self.timers.retain(|(n, d, _)| !(*n == node && *d == dst));
                    self.timers.push((node, dst, self.now + delay));
                }
                AodvAction::CancelDiscoveryTimer { dst } => {
                    self.timers.retain(|(n, d, _)| !(*n == node && *d == dst));
                }
                AodvAction::Drop { .. }
                | AodvAction::NotifyRouteFailure { .. }
                | AodvAction::RouteInstalled { .. }
                | AodvAction::RouteLost { .. } => {}
            }
        }
    }

    /// Processes all in-flight packets until the network settles.
    fn settle(&mut self) {
        let mut budget = 100_000;
        while let Some((to, from, packet)) = self.in_flight.pop_front() {
            budget -= 1;
            assert!(budget > 0, "message storm never settled");
            let mut actions = Vec::new();
            self.routers[to].on_received(self.now, NodeId(from as u32), packet, &mut actions);
            self.apply(to, actions);
        }
    }

    /// Fires the earliest pending discovery timer, if any.
    fn fire_next_timer(&mut self) -> bool {
        self.timers.sort_by_key(|&(_, _, t)| t);
        if self.timers.is_empty() {
            return false;
        }
        let (node, dst, at) = self.timers.remove(0);
        self.now = self.now.max(at);
        let mut actions = Vec::new();
        self.routers[node].on_discovery_timeout(self.now, dst, &mut actions);
        self.apply(node, actions);
        self.settle();
        true
    }

    fn send_data(&mut self, from: usize, to: usize, uid: u64) {
        let p = Packet::new(
            uid,
            NodeId(from as u32),
            NodeId(to as u32),
            Body::Tcp(TcpSegment::data(FlowId(0), uid)),
        );
        let mut actions = Vec::new();
        self.routers[from].send(self.now, p, &mut actions);
        self.apply(from, actions);
        self.settle();
    }
}

#[test]
fn five_hop_discovery_and_delivery() {
    let mut line = Line::new(6);
    line.send_data(0, 5, 1);
    assert_eq!(
        line.delivered[5].len(),
        1,
        "packet must reach node 5 after discovery"
    );
    // Forward route installed everywhere along the path.
    for i in 0..5 {
        let r = line.routers[i]
            .table()
            .active(NodeId(5), line.now)
            .expect("route to 5");
        assert_eq!(r.next_hop, NodeId(i as u32 + 1));
    }
    // Reverse routes to the originator exist too (from the RREQ flood).
    for i in 1..6 {
        let r = line.routers[i]
            .table()
            .active(NodeId(0), line.now)
            .expect("route to 0");
        assert_eq!(r.next_hop, NodeId(i as u32 - 1));
    }
}

#[test]
fn second_packet_needs_no_flood() {
    let mut line = Line::new(5);
    line.send_data(0, 4, 1);
    let floods_after_first = line.routers[0].counters().rreqs_originated;
    line.send_data(0, 4, 2);
    assert_eq!(line.delivered[4].len(), 2);
    assert_eq!(
        line.routers[0].counters().rreqs_originated,
        floods_after_first,
        "an established route must be reused"
    );
}

#[test]
fn reply_path_works_immediately() {
    let mut line = Line::new(6);
    line.send_data(0, 5, 1);
    // Node 5 answers without any discovery: the reverse route from the
    // RREQ flood carries it.
    let floods_before = line.routers[5].counters().rreqs_originated;
    line.send_data(5, 0, 2);
    assert_eq!(line.delivered[0].len(), 1);
    assert_eq!(line.routers[5].counters().rreqs_originated, floods_before);
}

#[test]
fn link_failure_invalidates_and_rediscovers() {
    let mut line = Line::new(5);
    line.send_data(0, 4, 1);
    // The MAC reports node 1 unreachable from node 0.
    let victim = Packet::new(
        9,
        NodeId(0),
        NodeId(4),
        Body::Tcp(TcpSegment::data(FlowId(0), 9)),
    );
    let mut actions = Vec::new();
    line.routers[0].on_tx_confirm(line.now, NodeId(1), victim, false, &mut actions);
    line.apply(0, actions);
    line.settle();
    assert_eq!(line.routers[0].counters().false_route_failures, 1);
    assert!(
        line.routers[0]
            .table()
            .active(NodeId(4), line.now)
            .is_none(),
        "route through the failed hop must be invalidated"
    );
    // The next send triggers a fresh discovery and succeeds (the static
    // line is intact; the failure was false).
    line.send_data(0, 4, 2);
    while line.delivered[4].len() < 2 && line.fire_next_timer() {}
    assert_eq!(
        line.delivered[4].len(),
        2,
        "rediscovery must repair the path"
    );
}

#[test]
fn rerr_from_midpath_reaches_the_source() {
    let mut line = Line::new(6);
    line.send_data(0, 5, 1);
    // Node 3 loses its link towards node 4.
    let victim = Packet::new(
        9,
        NodeId(0),
        NodeId(5),
        Body::Tcp(TcpSegment::data(FlowId(0), 9)),
    );
    let mut actions = Vec::new();
    line.routers[3].on_tx_confirm(line.now, NodeId(4), victim, false, &mut actions);
    line.apply(3, actions);
    line.settle();
    // The RERR cascade must invalidate the stale route at the source.
    assert!(
        line.routers[0]
            .table()
            .active(NodeId(5), line.now)
            .is_none(),
        "source must learn about the broken path"
    );
}

#[test]
fn unreachable_destination_gives_up_after_retries() {
    // Node 9 does not exist: discovery must exhaust its retries and stop.
    let mut line = Line::new(3);
    let p = Packet::new(
        1,
        NodeId(0),
        NodeId(9),
        Body::Tcp(TcpSegment::data(FlowId(0), 0)),
    );
    let mut actions = Vec::new();
    line.routers[0].send(line.now, p, &mut actions);
    line.apply(0, actions);
    line.settle();
    let mut fired = 0;
    while line.fire_next_timer() {
        fired += 1;
        assert!(fired < 10, "discovery retries must terminate");
    }
    assert_eq!(line.routers[0].counters().no_route_drops, 1);
    assert_eq!(
        line.routers[0].counters().rreqs_originated,
        3,
        "initial flood plus two retries"
    );
}

#[test]
fn concurrent_discoveries_do_not_interfere() {
    let mut line = Line::new(7);
    line.send_data(0, 6, 1);
    line.send_data(6, 0, 2);
    line.send_data(3, 0, 3);
    line.send_data(3, 6, 4);
    assert_eq!(line.delivered[6].len(), 2);
    assert_eq!(line.delivered[0].len(), 2);
}

#[test]
fn ttl_limits_flood_depth() {
    // With the default TTL of 64 and only 6 nodes, floods always reach;
    // this checks the forwarded RREQ count stays linear in nodes (each
    // node rebroadcasts a given RREQ at most once).
    let mut line = Line::new(6);
    line.send_data(0, 5, 1);
    let total_forwards: u64 = line
        .routers
        .iter()
        .map(|r| r.counters().rreqs_forwarded)
        .sum();
    assert!(
        total_forwards <= 5,
        "each intermediate node forwards the flood at most once, got {total_forwards}"
    );
}

#[test]
fn routes_expire_without_traffic() {
    let mut line = Line::new(4);
    line.send_data(0, 3, 1);
    assert!(line.routers[0]
        .table()
        .active(NodeId(3), line.now)
        .is_some());
    // Idle past the active-route lifetime.
    line.now += SimDuration::from_secs(11);
    assert!(
        line.routers[0]
            .table()
            .active(NodeId(3), line.now)
            .is_none(),
        "route must expire after 10 s idle"
    );
    // A new send rediscovers.
    line.send_data(0, 3, 2);
    assert_eq!(line.delivered[3].len(), 2);
}
