//! A flat, sorted per-destination map keyed by [`NodeId`].
//!
//! The router's destination-keyed tables (routes, RREQ duplicate
//! suppression, pending discoveries) used to be hash maps. At city scale
//! (50 000 routers) the per-map overhead — heap-sparse buckets, hasher
//! state, worst-case iteration order — dominates the entries themselves,
//! and hash iteration order is a determinism hazard. `NodeMap` stores
//! entries in one dense `Vec` sorted by key: lookups are binary searches
//! over cache-contiguous memory, iteration is ordered by `NodeId` (so
//! anything derived from it is deterministic for free), and the memory
//! footprint is exactly `len × (key + value)` plus one allocation.
//!
//! Typical tables hold a handful of destinations (a router only learns
//! routes its traffic touches), where a sorted vec also beats a hash map
//! on constants.

use mwn_pkt::NodeId;

/// A sorted-`Vec` map from [`NodeId`] to `V`.
#[derive(Debug, Clone)]
pub struct NodeMap<V> {
    entries: Vec<(NodeId, V)>,
}

impl<V> Default for NodeMap<V> {
    fn default() -> Self {
        NodeMap {
            entries: Vec::new(),
        }
    }
}

impl<V> NodeMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn position(&self, key: NodeId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&key, |(k, _)| *k)
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: NodeId) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: NodeId) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// `true` if `key` has a value.
    pub fn contains_key(&self, key: NodeId) -> bool {
        self.position(key).is_ok()
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    pub fn insert(&mut self, key: NodeId, value: V) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// The value for `key`, inserting `default()` first if absent.
    pub fn or_insert_with(&mut self, key: NodeId, default: impl FnOnce() -> V) -> &mut V {
        let i = match self.position(key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Removes and returns the value for `key`, if present.
    pub fn remove(&mut self, key: NodeId) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &V)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Mutable entries in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (*k, v))
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Heap bytes held by the entry storage (capacity, not just length —
    /// what the allocator actually charged us), for the engine's
    /// `bytes_per_node` accounting.
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(NodeId, V)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn basic_operations() {
        let mut m = NodeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(5), "five"), None);
        assert_eq!(m.insert(NodeId(2), "two"), None);
        assert_eq!(m.insert(NodeId(5), "FIVE"), Some("five"));
        assert_eq!(m.get(NodeId(5)), Some(&"FIVE"));
        assert_eq!(m.get(NodeId(3)), None);
        assert!(m.contains_key(NodeId(2)));
        assert_eq!(m.len(), 2);
        *m.or_insert_with(NodeId(9), || "nine") = "NINE";
        assert_eq!(m.remove(NodeId(9)), Some("NINE"));
        assert_eq!(m.remove(NodeId(9)), None);
        // Iteration is ordered by key.
        let keys: Vec<NodeId> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![NodeId(2), NodeId(5)]);
        assert!(m.memory_bytes() >= 2 * std::mem::size_of::<(NodeId, &str)>());
    }

    /// One step of the map-differential op language.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32, u64),
        Remove(u32),
        OrInsert(u32, u64),
        GetMutAdd(u32, u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Keys drawn from a small range so operations collide like a
        // router's tables do (few destinations, many touches).
        prop_oneof![
            (0u32..24, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u32..24).prop_map(Op::Remove),
            (0u32..24, any::<u64>()).prop_map(|(k, v)| Op::OrInsert(k, v)),
            (0u32..24, 0u64..1000).prop_map(|(k, v)| Op::GetMutAdd(k, v)),
        ]
    }

    proptest! {
        /// Differential: the flat sorted map must behave exactly like the
        /// hash map it replaced, under random router-shaped op sequences.
        #[test]
        fn matches_hashmap_reference(ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut flat: NodeMap<u64> = NodeMap::new();
            let mut reference: HashMap<NodeId, u64> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(flat.insert(NodeId(k), v), reference.insert(NodeId(k), v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(flat.remove(NodeId(k)), reference.remove(&NodeId(k)));
                    }
                    Op::OrInsert(k, v) => {
                        let a = *flat.or_insert_with(NodeId(k), || v);
                        let b = *reference.entry(NodeId(k)).or_insert(v);
                        prop_assert_eq!(a, b);
                    }
                    Op::GetMutAdd(k, v) => {
                        if let Some(x) = flat.get_mut(NodeId(k)) { *x += v; }
                        if let Some(x) = reference.get_mut(&NodeId(k)) { *x += v; }
                    }
                }
                prop_assert_eq!(flat.len(), reference.len());
            }
            // Full-content equality, and sorted iteration.
            let mut expect: Vec<(NodeId, u64)> = reference.into_iter().collect();
            expect.sort_by_key(|(k, _)| *k);
            let got: Vec<(NodeId, u64)> = flat.iter().map(|(k, v)| (k, *v)).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
